//! The attraction memory (AM): a node's local memory organised as a cache
//! of the shared address space.
//!
//! Paper configuration: 8 MB per node, 16-way set-associative, allocated in
//! 16 KB pages; each page holds 128 items of 128 bytes. "When a processor
//! references an address not found in its AM, a *page* is allocated. The
//! contents of the newly created page are filled as needed, one *item* at a
//! time." Coherence state is kept per item ([`ItemSlot`]).
//!
//! The AM has no backing store — replacement of copies that may be the last
//! (masters) or that are recovery data (CK states) must go through the
//! *injection* mechanism implemented in the protocol engine; this module
//! only exposes the acceptance test ([`AttractionMemory::injection_acceptance`]).

use crate::addr::{ItemId, NodeId, PageId, ITEMS_PER_PAGE, PAGE_BYTES};
use crate::state::ItemState;

/// Geometry of an attraction memory.
///
/// # Example
///
/// ```
/// use ftcoma_mem::AmGeometry;
///
/// let g = AmGeometry::ksr1();
/// assert_eq!(g.frames(), 512);
/// assert_eq!(g.sets(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmGeometry {
    /// Total AM capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity in page frames per set.
    pub ways: usize,
}

impl AmGeometry {
    /// The paper's configuration: 8 MB, 16-way, 16 KB pages.
    pub fn ksr1() -> Self {
        Self {
            capacity_bytes: 8 * 1024 * 1024,
            ways: 16,
        }
    }

    /// Total number of page frames.
    pub fn frames(&self) -> usize {
        (self.capacity_bytes / PAGE_BYTES) as usize
    }

    /// Number of associative sets.
    pub fn sets(&self) -> usize {
        self.frames() / self.ways
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an integral number of sets of pages.
    pub fn validate(&self) {
        assert!(self.ways > 0, "AM must have at least one way");
        assert!(
            self.capacity_bytes.is_multiple_of(PAGE_BYTES),
            "AM capacity not a multiple of the page size"
        );
        assert!(
            self.frames().is_multiple_of(self.ways),
            "frame count not divisible by associativity"
        );
    }
}

impl Default for AmGeometry {
    fn default() -> Self {
        Self::ksr1()
    }
}

/// One item slot within an allocated AM page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ItemSlot {
    /// Coherence state of the copy held here.
    pub state: ItemState,
    /// Modelled payload: the item's version value (see crate docs).
    pub value: u64,
    /// For CK-state copies: the node holding the sibling recovery replica.
    pub partner: Option<NodeId>,
    /// Recovery-point generation this CK copy belongs to (diagnostics and
    /// invariant checks).
    pub ckpt_gen: u64,
}

#[derive(Debug, Clone)]
struct PageFrame {
    page: PageId,
    slots: Box<[ItemSlot]>,
    lru: u64,
}

impl PageFrame {
    fn new(page: PageId, lru: u64) -> Self {
        Self {
            page,
            slots: vec![ItemSlot::default(); ITEMS_PER_PAGE as usize].into(),
            lru,
        }
    }
}

/// Why an AM accepts — or refuses — an injected item copy.
///
/// Per the paper: "to accept an injection, an AM can only replace one of its
/// *Invalid* or *Shared* lines"; otherwise the injection is forwarded along
/// the logical ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionAccept {
    /// The item's page is allocated here and its slot is free.
    ReplaceInvalid,
    /// The item's page is allocated here and its slot holds a plain shared
    /// copy, which may be dropped (the incoming copy replaces it).
    ReplaceShared,
    /// The page is not allocated here but a free frame exists in its set;
    /// accepting requires allocating the page first.
    NewPage,
    /// The page is not allocated and the set is full, but the given
    /// resident page holds only Invalid/Shared copies and can be dropped
    /// to make room ("an AM can only replace one of its Invalid or Shared
    /// lines").
    ReplacePage(PageId),
    /// This AM cannot accept the injection (slot holds an unreplaceable
    /// copy, or the set is full of unreplaceable pages).
    Reject,
}

impl InjectionAccept {
    /// Does this outcome accept the injection?
    pub fn is_accept(self) -> bool {
        self != InjectionAccept::Reject
    }
}

/// Error returned when a page cannot be allocated without evicting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetFull {
    /// The page whose allocation failed.
    pub page: PageId,
    /// The least-recently-used page in the target set — the natural
    /// eviction victim.
    pub victim: PageId,
}

impl std::fmt::Display for SetFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AM set full allocating {}; LRU victim {}",
            self.page, self.victim
        )
    }
}

impl std::error::Error for SetFull {}

/// An attraction memory.
///
/// # Example
///
/// ```
/// use ftcoma_mem::{AttractionMemory, ItemState};
/// use ftcoma_mem::addr::ItemId;
///
/// let mut am = AttractionMemory::ksr1();
/// let item = ItemId::new(42);
/// am.allocate_page(item.page()).unwrap();
/// am.install(item, ItemState::Exclusive, 7, None);
/// assert_eq!(am.state(item), ItemState::Exclusive);
/// assert_eq!(am.slot(item).unwrap().value, 7);
/// ```
#[derive(Debug, Clone)]
pub struct AttractionMemory {
    geo: AmGeometry,
    sets: Vec<Vec<Option<PageFrame>>>,
    /// Flat page index: `index[page]` is `way + 1` of the frame holding
    /// the page (0 = not allocated; the set is implied by the page
    /// number). The workload address space is dense and small — shared
    /// region first, then the per-node private regions — so a
    /// direct-indexed vector replaces the old `HashMap<PageId, _>` on the
    /// per-reference lookup path. Grown on demand.
    index: Vec<u32>,
    /// Cached `geo.sets()`: the geometry recomputes it with divisions,
    /// which is too slow for the per-reference lookup path.
    num_sets: u64,
    /// `num_sets - 1` when the set count is a power of two, else 0
    /// (falls back to the modulo in `set_of`).
    set_mask: u64,
    tick: u64,
    allocated: usize,
    peak_allocated: usize,
    cumulative_allocs: u64,
}

impl AttractionMemory {
    /// Creates an empty AM with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn new(geo: AmGeometry) -> Self {
        geo.validate();
        let sets = (0..geo.sets())
            .map(|_| (0..geo.ways).map(|_| None).collect())
            .collect();
        let num_sets = geo.sets() as u64;
        Self {
            geo,
            sets,
            index: Vec::new(),
            num_sets,
            set_mask: if num_sets.is_power_of_two() {
                num_sets - 1
            } else {
                0
            },
            tick: 0,
            allocated: 0,
            peak_allocated: 0,
            cumulative_allocs: 0,
        }
    }

    /// Creates an empty AM with the paper's 8 MB geometry.
    pub fn ksr1() -> Self {
        Self::new(AmGeometry::ksr1())
    }

    /// The AM geometry.
    pub fn geometry(&self) -> &AmGeometry {
        &self.geo
    }

    #[inline]
    fn set_of(&self, page: PageId) -> usize {
        if self.set_mask != 0 {
            (page.index() & self.set_mask) as usize
        } else {
            (page.index() % self.num_sets) as usize
        }
    }

    /// The `(set, way)` of the frame holding `page`, if allocated.
    #[inline]
    fn frame_pos(&self, page: PageId) -> Option<(usize, usize)> {
        match self.index.get(page.index() as usize) {
            Some(&way) if way != 0 => Some((self.set_of(page), (way - 1) as usize)),
            _ => None,
        }
    }

    /// Is `page` allocated in this AM?
    pub fn has_page(&self, page: PageId) -> bool {
        self.frame_pos(page).is_some()
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> usize {
        self.allocated
    }

    /// High-water mark of allocated pages (Fig. 7's memory-overhead metric).
    pub fn peak_allocated_pages(&self) -> usize {
        self.peak_allocated
    }

    /// Total page allocations performed over the AM's lifetime.
    pub fn cumulative_page_allocs(&self) -> u64 {
        self.cumulative_allocs
    }

    /// Allocates `page` (with all slots `Invalid`).
    ///
    /// Returns `Ok(false)` if the page was already allocated, `Ok(true)` on
    /// a fresh allocation, and [`SetFull`] when the set has no free frame —
    /// the caller must first evict the suggested victim (injecting any
    /// copies that require it).
    pub fn allocate_page(&mut self, page: PageId) -> Result<bool, SetFull> {
        if self.has_page(page) {
            return Ok(false);
        }
        let set = self.set_of(page);
        match self.sets[set].iter().position(Option::is_none) {
            Some(way) => {
                // Advance the LRU clock only on success: a SetFull failure
                // must not age the set, or victim selection on the retry
                // would be perturbed by the failed attempt.
                self.tick += 1;
                self.sets[set][way] = Some(PageFrame::new(page, self.tick));
                let idx = page.index() as usize;
                if self.index.len() <= idx {
                    self.index.resize(idx + 1, 0);
                }
                self.index[idx] = way as u32 + 1;
                self.allocated += 1;
                self.cumulative_allocs += 1;
                self.peak_allocated = self.peak_allocated.max(self.allocated);
                Ok(true)
            }
            None => {
                let victim = self.sets[set]
                    .iter()
                    .flatten()
                    .min_by_key(|f| f.lru)
                    .map(|f| f.page)
                    .expect("full set has frames");
                Err(SetFull { page, victim })
            }
        }
    }

    /// Deallocates `page`, returning the copies it still held.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated, or if any remaining copy
    /// requires injection ([`ItemState::requires_injection`]) — the protocol
    /// engine must inject those copies *before* evicting the page.
    pub fn evict_page(&mut self, page: PageId) -> Vec<(ItemId, ItemSlot)> {
        let (set, way) = self.frame_pos(page).expect("evicting unallocated page");
        self.index[page.index() as usize] = 0;
        let frame = self.sets[set][way].take().expect("index consistent");
        self.allocated -= 1;
        let mut dropped = Vec::new();
        for (slot_idx, slot) in frame.slots.iter().enumerate() {
            if slot.state.is_present() {
                assert!(
                    !slot.state.requires_injection(),
                    "evicting page {page} would lose a {} copy",
                    slot.state
                );
                let item = ItemId::new(page.index() * ITEMS_PER_PAGE + slot_idx as u64);
                dropped.push((item, *slot));
            }
        }
        dropped
    }

    /// Marks `page` recently used.
    pub fn touch(&mut self, page: PageId) {
        if let Some((set, way)) = self.frame_pos(page) {
            self.tick += 1;
            self.sets[set][way].as_mut().expect("index consistent").lru = self.tick;
        }
    }

    /// The current value of the LRU clock (advanced by successful
    /// allocations and touches; diagnostics and regression tests).
    pub fn lru_clock(&self) -> u64 {
        self.tick
    }

    /// The slot for `item`, if its page is allocated here.
    pub fn slot(&self, item: ItemId) -> Option<&ItemSlot> {
        let (set, way) = self.frame_pos(item.page())?;
        Some(
            &self.sets[set][way]
                .as_ref()
                .expect("index consistent")
                .slots[item.slot_in_page()],
        )
    }

    /// Mutable access to the slot for `item`, if its page is allocated here.
    pub fn slot_mut(&mut self, item: ItemId) -> Option<&mut ItemSlot> {
        let (set, way) = self.frame_pos(item.page())?;
        Some(
            &mut self.sets[set][way]
                .as_mut()
                .expect("index consistent")
                .slots[item.slot_in_page()],
        )
    }

    /// Coherence state of `item` here (`Invalid` if the page is absent).
    pub fn state(&self, item: ItemId) -> ItemState {
        self.slot(item).map_or(ItemState::Invalid, |s| s.state)
    }

    /// Installs a copy of `item` (page must already be allocated).
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn install(&mut self, item: ItemId, state: ItemState, value: u64, partner: Option<NodeId>) {
        let slot = self
            .slot_mut(item)
            .expect("installing into unallocated page");
        *slot = ItemSlot {
            state,
            value,
            partner,
            ckpt_gen: slot.ckpt_gen,
        };
    }

    /// Sets the state of `item`'s present slot.
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn set_state(&mut self, item: ItemId, state: ItemState) {
        self.slot_mut(item).expect("page not allocated").state = state;
    }

    /// Clears `item`'s slot to `Invalid` (keeping the page allocated).
    ///
    /// # Panics
    ///
    /// Panics if the page is not allocated.
    pub fn clear_slot(&mut self, item: ItemId) {
        let slot = self.slot_mut(item).expect("page not allocated");
        *slot = ItemSlot::default();
    }

    /// The paper's injection acceptance test for `item` at this AM.
    pub fn injection_acceptance(&self, item: ItemId) -> InjectionAccept {
        match self.slot(item) {
            Some(slot) => match slot.state {
                ItemState::Invalid => InjectionAccept::ReplaceInvalid,
                ItemState::Shared => InjectionAccept::ReplaceShared,
                _ => InjectionAccept::Reject,
            },
            None => {
                let set = self.set_of(item.page());
                if self.sets[set].iter().any(Option::is_none) {
                    return InjectionAccept::NewPage;
                }
                // Full set: a page holding only droppable copies may be
                // sacrificed (least recently used first).
                let victim = self.sets[set]
                    .iter()
                    .flatten()
                    .filter(|f| f.slots.iter().all(|s| !s.state.requires_injection()))
                    .min_by_key(|f| f.lru)
                    .map(|f| f.page);
                match victim {
                    Some(p) => InjectionAccept::ReplacePage(p),
                    None => InjectionAccept::Reject,
                }
            }
        }
    }

    /// Iterates over all present copies (page-allocated, non-invalid slots).
    pub fn iter_present(&self) -> impl Iterator<Item = (ItemId, &ItemSlot)> {
        self.sets.iter().flatten().flatten().flat_map(|frame| {
            frame
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.state.is_present())
                .map(move |(idx, s)| {
                    (
                        ItemId::new(frame.page.index() * ITEMS_PER_PAGE + idx as u64),
                        s,
                    )
                })
        })
    }

    /// Items whose copies here satisfy `pred` (collected to decouple from
    /// borrows; used by the checkpoint scans).
    pub fn items_where(&self, mut pred: impl FnMut(&ItemSlot) -> bool) -> Vec<ItemId> {
        self.iter_present()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i)
            .collect()
    }

    /// Pages currently allocated (unordered).
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.sets.iter().flatten().flatten().map(|f| f.page)
    }

    /// Number of present copies in the given state.
    pub fn count_state(&self, state: ItemState) -> usize {
        self.iter_present()
            .filter(|(_, s)| s.state == state)
            .count()
    }

    /// Eviction candidates for allocating `page`: every page currently in
    /// `page`'s set, least-recently-used first. The caller filters out
    /// pages that must not move (reserved slots, pending fills).
    pub fn eviction_candidates(&self, page: PageId) -> Vec<PageId> {
        let set = self.set_of(page);
        let mut frames: Vec<(u64, PageId)> = self.sets[set]
            .iter()
            .flatten()
            .map(|f| (f.lru, f.page))
            .collect();
        frames.sort_unstable();
        frames.into_iter().map(|(_, p)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_geo() -> AmGeometry {
        // 4 frames, 2 ways => 2 sets.
        AmGeometry {
            capacity_bytes: 4 * PAGE_BYTES,
            ways: 2,
        }
    }

    #[test]
    fn allocate_install_lookup() {
        let mut am = AttractionMemory::ksr1();
        let item = ItemId::new(1000);
        assert_eq!(am.state(item), ItemState::Invalid);
        assert!(am.allocate_page(item.page()).unwrap());
        assert!(!am.allocate_page(item.page()).unwrap()); // idempotent
        am.install(item, ItemState::MasterShared, 5, None);
        assert_eq!(am.state(item), ItemState::MasterShared);
        assert_eq!(am.count_state(ItemState::MasterShared), 1);
        assert_eq!(am.allocated_pages(), 1);
    }

    #[test]
    fn set_full_reports_lru_victim() {
        let mut am = AttractionMemory::new(tiny_geo());
        // Pages 0 and 2 map to set 0 (2 sets).
        am.allocate_page(PageId::new(0)).unwrap();
        am.allocate_page(PageId::new(2)).unwrap();
        am.touch(PageId::new(0)); // page 2 becomes LRU
        let err = am.allocate_page(PageId::new(4)).unwrap_err();
        assert_eq!(err.victim, PageId::new(2));
        assert_eq!(err.page, PageId::new(4));
    }

    #[test]
    fn evict_page_returns_dropped_copies() {
        let mut am = AttractionMemory::new(tiny_geo());
        let page = PageId::new(0);
        am.allocate_page(page).unwrap();
        let item: ItemId = page.items().next().unwrap();
        am.install(item, ItemState::Shared, 1, None);
        let dropped = am.evict_page(page);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].0, item);
        assert!(!am.has_page(page));
        assert_eq!(am.allocated_pages(), 0);
        assert_eq!(am.peak_allocated_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "would lose")]
    fn evict_page_refuses_to_drop_master() {
        let mut am = AttractionMemory::new(tiny_geo());
        let page = PageId::new(0);
        am.allocate_page(page).unwrap();
        am.install(
            page.items().next().unwrap(),
            ItemState::MasterShared,
            0,
            None,
        );
        let _ = am.evict_page(page);
    }

    #[test]
    fn injection_acceptance_rules() {
        let mut am = AttractionMemory::new(tiny_geo());
        let page = PageId::new(0);
        am.allocate_page(page).unwrap();
        let mut items = page.items();
        let a = items.next().unwrap();
        let b = items.next().unwrap();
        am.install(a, ItemState::Shared, 0, None);
        am.install(b, ItemState::Exclusive, 0, None);

        assert_eq!(am.injection_acceptance(a), InjectionAccept::ReplaceShared);
        assert_eq!(am.injection_acceptance(b), InjectionAccept::Reject);
        let c = items.next().unwrap();
        assert_eq!(am.injection_acceptance(c), InjectionAccept::ReplaceInvalid);

        // Unallocated page with room in its set.
        let other = PageId::new(2).items().next().unwrap();
        assert_eq!(am.injection_acceptance(other), InjectionAccept::NewPage);

        // Fill set 0 completely: pages 0 and 2 occupy both ways. Page 2
        // holds only droppable copies, so it is offered as a sacrifice.
        am.allocate_page(PageId::new(2)).unwrap();
        let blocked = PageId::new(4).items().next().unwrap();
        assert_eq!(
            am.injection_acceptance(blocked),
            InjectionAccept::ReplacePage(PageId::new(2))
        );

        // Once every page in the set holds an unreplaceable copy, reject.
        am.install(
            PageId::new(2).items().next().unwrap(),
            ItemState::InvCk1,
            0,
            None,
        );
        assert_eq!(am.injection_acceptance(blocked), InjectionAccept::Reject);
    }

    #[test]
    fn iter_present_and_items_where() {
        let mut am = AttractionMemory::new(tiny_geo());
        let page = PageId::new(1);
        am.allocate_page(page).unwrap();
        let items: Vec<ItemId> = page.items().take(3).collect();
        am.install(items[0], ItemState::Exclusive, 1, None);
        am.install(items[1], ItemState::Shared, 2, None);
        am.install(items[2], ItemState::InvCk1, 3, Some(NodeId::new(9)));

        assert_eq!(am.iter_present().count(), 3);
        let modified = am.items_where(|s| s.state.is_modified_since_ckpt());
        assert_eq!(modified, vec![items[0]]);
        let recovery = am.items_where(|s| s.state.is_committed_recovery());
        assert_eq!(recovery, vec![items[2]]);
        assert_eq!(am.slot(items[2]).unwrap().partner, Some(NodeId::new(9)));
    }

    #[test]
    fn clear_slot_resets() {
        let mut am = AttractionMemory::new(tiny_geo());
        let page = PageId::new(0);
        am.allocate_page(page).unwrap();
        let item = page.items().next().unwrap();
        am.install(item, ItemState::Shared, 42, None);
        am.clear_slot(item);
        assert_eq!(am.state(item), ItemState::Invalid);
        assert_eq!(am.iter_present().count(), 0);
    }

    #[test]
    fn failed_allocation_leaves_lru_clock_untouched() {
        let mut am = AttractionMemory::new(tiny_geo());
        am.allocate_page(PageId::new(0)).unwrap();
        am.allocate_page(PageId::new(2)).unwrap();
        let clock_before = am.lru_clock();
        // Set 0 is full: allocation fails and must not age the set.
        am.allocate_page(PageId::new(4)).unwrap_err();
        am.allocate_page(PageId::new(6)).unwrap_err();
        assert_eq!(am.lru_clock(), clock_before);
    }

    #[test]
    fn victim_choice_stable_across_failed_then_retried_allocation() {
        let mut am = AttractionMemory::new(tiny_geo());
        am.allocate_page(PageId::new(0)).unwrap();
        am.allocate_page(PageId::new(2)).unwrap();
        am.touch(PageId::new(0)); // page 2 is now LRU
        let first = am.allocate_page(PageId::new(4)).unwrap_err();
        assert_eq!(first.victim, PageId::new(2));
        // Retrying without any intervening reference must name the same
        // victim, and must behave exactly like a fresh AM that never saw
        // the failed attempt.
        let retry = am.allocate_page(PageId::new(4)).unwrap_err();
        assert_eq!(retry.victim, first.victim);
        am.evict_page(retry.victim);
        am.allocate_page(PageId::new(4)).unwrap();
        // After the eviction-and-retry dance, LRU order is page 0 < page 4.
        let next = am.allocate_page(PageId::new(6)).unwrap_err();
        assert_eq!(next.victim, PageId::new(0));
    }

    #[test]
    fn cumulative_allocs_count_reallocation() {
        let mut am = AttractionMemory::new(tiny_geo());
        let page = PageId::new(0);
        am.allocate_page(page).unwrap();
        am.evict_page(page);
        am.allocate_page(page).unwrap();
        assert_eq!(am.cumulative_page_allocs(), 2);
        assert_eq!(am.allocated_pages(), 1);
    }
}
