//! Addresses and identifiers of the shared address space.
//!
//! The machine shares a single flat byte address space. Fixed geometry
//! (from the paper's KSR1-like configuration):
//!
//! * coherence/transfer unit: **item** = 128 bytes;
//! * cache line = 64 bytes (two lines per item);
//! * AM allocation unit: **page** = 16 KB = 128 items.
//!
//! Crucially for a COMA, none of these identifiers denotes a physical
//! location: an item lives wherever the attraction memories currently hold
//! copies of it.

/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;
/// Bytes per coherence item (the inter-node transfer unit).
pub const ITEM_BYTES: u64 = 128;
/// Bytes per AM page (the AM allocation unit).
pub const PAGE_BYTES: u64 = 16 * 1024;
/// Cache lines per item.
pub const LINES_PER_ITEM: u64 = ITEM_BYTES / LINE_BYTES;
/// Items per AM page.
pub const ITEMS_PER_PAGE: u64 = PAGE_BYTES / ITEM_BYTES;

/// A byte address in the shared address space.
///
/// # Example
///
/// ```
/// use ftcoma_mem::Addr;
///
/// let a = Addr::new(16 * 1024 + 300);
/// assert_eq!(a.page().index(), 1);
/// assert_eq!(a.item().index(), 130);   // 128 items/page
/// assert_eq!(a.line().index(), 260);   // 2 lines/item
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    pub fn new(bytes: u64) -> Self {
        Self(bytes)
    }

    /// The raw byte address.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The item containing this address.
    pub fn item(self) -> ItemId {
        ItemId(self.0 / ITEM_BYTES)
    }

    /// The cache line containing this address.
    pub fn line(self) -> LineId {
        LineId(self.0 / LINE_BYTES)
    }

    /// The AM page containing this address.
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_BYTES)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A 128-byte coherence item of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ItemId(u64);

impl ItemId {
    /// Item with the given global index.
    pub fn new(index: u64) -> Self {
        Self(index)
    }

    /// Global item index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The page this item belongs to.
    pub fn page(self) -> PageId {
        PageId(self.0 / ITEMS_PER_PAGE)
    }

    /// The item's slot position within its page (0..128).
    pub fn slot_in_page(self) -> usize {
        (self.0 % ITEMS_PER_PAGE) as usize
    }

    /// First byte address of the item.
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * ITEM_BYTES)
    }

    /// The cache lines covering this item.
    pub fn lines(self) -> impl Iterator<Item = LineId> {
        let first = self.0 * LINES_PER_ITEM;
        (first..first + LINES_PER_ITEM).map(LineId)
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// A 64-byte cache line of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineId(u64);

impl LineId {
    /// Line with the given global index.
    pub fn new(index: u64) -> Self {
        Self(index)
    }

    /// Global line index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The item containing this line.
    pub fn item(self) -> ItemId {
        ItemId(self.0 / LINES_PER_ITEM)
    }

    /// First byte address of the line.
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }
}

impl std::fmt::Display for LineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line#{}", self.0)
    }
}

/// A 16 KB page of the shared address space (the AM allocation unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Page with the given global index.
    pub fn new(index: u64) -> Self {
        Self(index)
    }

    /// Global page index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The items contained in this page.
    pub fn items(self) -> impl Iterator<Item = ItemId> {
        let first = self.0 * ITEMS_PER_PAGE;
        (first..first + ITEMS_PER_PAGE).map(ItemId)
    }

    /// First byte address of the page.
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * PAGE_BYTES)
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Identifies a node (processor + cache + AM + network interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Node with the given index.
    pub fn new(index: u16) -> Self {
        Self(index)
    }

    /// Node index in `0..machine size`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(LINES_PER_ITEM, 2);
        assert_eq!(ITEMS_PER_PAGE, 128);
        assert_eq!(ITEM_BYTES % LINE_BYTES, 0);
        assert_eq!(PAGE_BYTES % ITEM_BYTES, 0);
    }

    #[test]
    fn addr_decomposition() {
        let a = Addr::new(PAGE_BYTES * 3 + ITEM_BYTES * 5 + LINE_BYTES + 1);
        assert_eq!(a.page().index(), 3);
        assert_eq!(a.item().index(), 3 * ITEMS_PER_PAGE + 5);
        assert_eq!(a.item().slot_in_page(), 5);
        assert_eq!(a.line().item(), a.item());
    }

    #[test]
    fn item_lines_cover_item() {
        let it = ItemId::new(77);
        let lines: Vec<_> = it.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            assert_eq!(l.item(), it);
        }
    }

    #[test]
    fn page_items_round_trip() {
        let p = PageId::new(9);
        let items: Vec<_> = p.items().collect();
        assert_eq!(items.len(), ITEMS_PER_PAGE as usize);
        for (slot, it) in items.iter().enumerate() {
            assert_eq!(it.page(), p);
            assert_eq!(it.slot_in_page(), slot);
        }
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(format!("{}", NodeId::new(4)), "n4");
        assert_eq!(format!("{}", ItemId::new(1)), "item#1");
        assert_eq!(format!("{}", PageId::new(2)), "page#2");
        assert_eq!(format!("{}", Addr::new(255)), "0xff");
    }
}
