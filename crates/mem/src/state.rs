//! Coherence states of an item copy in an attraction memory.
//!
//! The standard COMA-F protocol uses four stable states; the Extended
//! Coherence Protocol (ECP) adds six more to identify recovery data
//! (Fig. 1 and §4.1 of the paper). The two `Shared-CK` copies of an item must
//! be distinguishable (only one of them may hand out exclusive rights), so
//! each checkpoint-related state is split into a `1` and a `2` variant —
//! "Encoding these new states requires three additional bits per item".

/// Coherence state of one item copy held in an AM slot.
///
/// Standard COMA-F states:
///
/// * [`Invalid`](ItemState::Invalid) — the slot holds no copy;
/// * [`Shared`](ItemState::Shared) — read-only copy, other copies may exist;
/// * [`MasterShared`](ItemState::MasterShared) — the *master* read-only copy;
///   the owning AM answers requests and must inject the copy before
///   replacing it (it may be the last copy in the machine);
/// * [`Exclusive`](ItemState::Exclusive) — the only valid current copy,
///   writable.
///
/// ECP recovery states:
///
/// * [`SharedCk1`](ItemState::SharedCk1) / [`SharedCk2`](ItemState::SharedCk2)
///   — the two recovery copies of an item *not* modified since the last
///   recovery point; still readable, and `SharedCk1` additionally serves
///   remote requests like a master copy;
/// * [`InvCk1`](ItemState::InvCk1) / [`InvCk2`](ItemState::InvCk2) — the two
///   recovery copies of an item that *has* been modified since the last
///   recovery point; inaccessible, kept only for rollback;
/// * [`PreCommit1`](ItemState::PreCommit1) / [`PreCommit2`](ItemState::PreCommit2)
///   — transient copies of the recovery point being established between the
///   `create` and `commit` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ItemState {
    /// No copy present in this slot.
    #[default]
    Invalid,
    /// Plain read-only copy.
    Shared,
    /// Master read-only copy (answers requests; injected before replacement).
    MasterShared,
    /// Unique writable current copy.
    Exclusive,
    /// Primary recovery copy, unmodified since last checkpoint (readable,
    /// serves requests like a master copy).
    SharedCk1,
    /// Secondary recovery copy, unmodified since last checkpoint (readable).
    SharedCk2,
    /// Primary recovery copy of a since-modified item (inaccessible).
    InvCk1,
    /// Secondary recovery copy of a since-modified item (inaccessible).
    InvCk2,
    /// Primary copy of the recovery point under construction.
    PreCommit1,
    /// Secondary copy of the recovery point under construction.
    PreCommit2,
}

impl ItemState {
    /// All ten states, in a fixed order (useful for tests and stats tables).
    pub const ALL: [ItemState; 10] = [
        ItemState::Invalid,
        ItemState::Shared,
        ItemState::MasterShared,
        ItemState::Exclusive,
        ItemState::SharedCk1,
        ItemState::SharedCk2,
        ItemState::InvCk1,
        ItemState::InvCk2,
        ItemState::PreCommit1,
        ItemState::PreCommit2,
    ];

    /// Is this one of the four standard COMA-F states?
    pub fn is_standard(self) -> bool {
        matches!(
            self,
            ItemState::Invalid | ItemState::Shared | ItemState::MasterShared | ItemState::Exclusive
        )
    }

    /// Does the slot hold a copy at all?
    pub fn is_present(self) -> bool {
        self != ItemState::Invalid
    }

    /// May the local processor *read* this copy directly?
    ///
    /// `Inv-CK` copies are recovery-only: reads on them are treated as
    /// misses (after injecting the copy elsewhere). `Pre-Commit` copies only
    /// exist while processors are stalled in a checkpoint, but they are
    /// readable by construction (they equal the current value).
    pub fn is_readable(self) -> bool {
        matches!(
            self,
            ItemState::Shared
                | ItemState::MasterShared
                | ItemState::Exclusive
                | ItemState::SharedCk1
                | ItemState::SharedCk2
                | ItemState::PreCommit1
                | ItemState::PreCommit2
        )
    }

    /// May the local processor *write* this copy directly (without a
    /// coherence transaction)?
    pub fn is_writable(self) -> bool {
        self == ItemState::Exclusive
    }

    /// Is this copy part of a *current* (computation) version of the item,
    /// as opposed to recovery data?
    pub fn is_current(self) -> bool {
        matches!(
            self,
            ItemState::Shared | ItemState::MasterShared | ItemState::Exclusive
        )
    }

    /// Is this copy recovery data of the last *committed* recovery point
    /// (the set restored by a rollback)?
    pub fn is_committed_recovery(self) -> bool {
        matches!(
            self,
            ItemState::SharedCk1 | ItemState::SharedCk2 | ItemState::InvCk1 | ItemState::InvCk2
        )
    }

    /// Is this one of the six ECP checkpoint states?
    pub fn is_ck(self) -> bool {
        !self.is_standard()
    }

    /// Does this copy answer remote requests for the item (i.e. is the
    /// slot's node the item's *owner*)?
    ///
    /// Standard protocol: `Exclusive` and `Master-Shared`. ECP: `Shared-CK1`
    /// serves requests "in a similar way as a Master-Shared copy", and
    /// `Pre-Commit1` is the owner-side copy during establishment.
    pub fn is_owner(self) -> bool {
        matches!(
            self,
            ItemState::Exclusive
                | ItemState::MasterShared
                | ItemState::SharedCk1
                | ItemState::PreCommit1
        )
    }

    /// Must this copy be *injected* into another AM rather than silently
    /// dropped when its slot is reclaimed?
    ///
    /// Masters may be the last copy of the item; CK copies are recovery data
    /// whose loss would break the persistence property (Table 1).
    pub fn requires_injection(self) -> bool {
        matches!(
            self,
            ItemState::MasterShared
                | ItemState::Exclusive
                | ItemState::SharedCk1
                | ItemState::SharedCk2
                | ItemState::InvCk1
                | ItemState::InvCk2
                | ItemState::PreCommit1
                | ItemState::PreCommit2
        )
    }

    /// Which recovery replica is this (1 or 2), if any.
    pub fn replica_index(self) -> Option<u8> {
        match self {
            ItemState::SharedCk1 | ItemState::InvCk1 | ItemState::PreCommit1 => Some(1),
            ItemState::SharedCk2 | ItemState::InvCk2 | ItemState::PreCommit2 => Some(2),
            _ => None,
        }
    }

    /// The `Shared-CK` state with the same replica index.
    ///
    /// # Panics
    ///
    /// Panics if the state has no replica index.
    pub fn as_shared_ck(self) -> ItemState {
        match self.replica_index() {
            Some(1) => ItemState::SharedCk1,
            Some(2) => ItemState::SharedCk2,
            _ => panic!("{self:?} is not a replica state"),
        }
    }

    /// The `Inv-CK` state with the same replica index.
    ///
    /// # Panics
    ///
    /// Panics if the state has no replica index.
    pub fn as_inv_ck(self) -> ItemState {
        match self.replica_index() {
            Some(1) => ItemState::InvCk1,
            Some(2) => ItemState::InvCk2,
            _ => panic!("{self:?} is not a replica state"),
        }
    }

    /// Has the item been modified since the last recovery point, as seen
    /// from this copy? (`Exclusive` current copies and `Master-Shared`
    /// copies are the modified set the `create` phase replicates.)
    pub fn is_modified_since_ckpt(self) -> bool {
        matches!(self, ItemState::Exclusive | ItemState::MasterShared)
    }
}

impl std::fmt::Display for ItemState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ItemState::Invalid => "Invalid",
            ItemState::Shared => "Shared",
            ItemState::MasterShared => "Master-Shared",
            ItemState::Exclusive => "Exclusive",
            ItemState::SharedCk1 => "Shared-CK1",
            ItemState::SharedCk2 => "Shared-CK2",
            ItemState::InvCk1 => "Inv-CK1",
            ItemState::InvCk2 => "Inv-CK2",
            ItemState::PreCommit1 => "Pre-Commit1",
            ItemState::PreCommit2 => "Pre-Commit2",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_states_are_standard() {
        for s in ItemState::ALL {
            assert_eq!(s.is_standard(), !s.is_ck());
        }
        assert_eq!(ItemState::ALL.iter().filter(|s| s.is_ck()).count(), 6);
    }

    #[test]
    fn exactly_one_writable_state() {
        let writable: Vec<_> = ItemState::ALL
            .into_iter()
            .filter(|s| s.is_writable())
            .collect();
        assert_eq!(writable, vec![ItemState::Exclusive]);
    }

    #[test]
    fn inv_ck_not_readable() {
        assert!(!ItemState::InvCk1.is_readable());
        assert!(!ItemState::InvCk2.is_readable());
        assert!(ItemState::SharedCk1.is_readable());
        assert!(ItemState::SharedCk2.is_readable());
    }

    #[test]
    fn owners_are_unique_per_role() {
        // Only replica-1 CK states ever own.
        assert!(ItemState::SharedCk1.is_owner());
        assert!(!ItemState::SharedCk2.is_owner());
        assert!(ItemState::PreCommit1.is_owner());
        assert!(!ItemState::PreCommit2.is_owner());
    }

    #[test]
    fn replica_transitions() {
        assert_eq!(ItemState::SharedCk1.as_inv_ck(), ItemState::InvCk1);
        assert_eq!(ItemState::SharedCk2.as_inv_ck(), ItemState::InvCk2);
        assert_eq!(ItemState::PreCommit1.as_shared_ck(), ItemState::SharedCk1);
        assert_eq!(ItemState::PreCommit2.as_shared_ck(), ItemState::SharedCk2);
        assert_eq!(ItemState::InvCk1.as_shared_ck(), ItemState::SharedCk1);
    }

    #[test]
    #[should_panic(expected = "not a replica state")]
    fn replica_conversion_rejects_standard() {
        let _ = ItemState::Shared.as_inv_ck();
    }

    #[test]
    fn injection_requirements() {
        assert!(!ItemState::Shared.requires_injection());
        assert!(!ItemState::Invalid.requires_injection());
        assert!(ItemState::MasterShared.requires_injection());
        assert!(ItemState::InvCk2.requires_injection());
    }

    #[test]
    fn display_nonempty() {
        for s in ItemState::ALL {
            assert!(!format!("{s}").is_empty());
        }
    }
}
