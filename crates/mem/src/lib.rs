//! Memory-hierarchy models for the ft-coma simulator.
//!
//! A ft-coma node (following the KSR1 parameters used in the paper) contains:
//!
//! * a **sectored processor data cache** — 256 KB, 8-way set-associative on
//!   2 KB sectors, 64-byte lines ([`cache::Cache`]);
//! * an **attraction memory** (AM) — the node's entire local memory organised
//!   as a huge cache of the shared address space: 8 MB, 16-way
//!   set-associative with 16 KB page allocation, each page subdivided into
//!   128 items of 128 bytes ([`am::AttractionMemory`]).
//!
//! Coherence is maintained on an *item* (128 B) basis; the item is also the
//! inter-node transfer unit. Items carry one of the coherence states in
//! [`state::ItemState`], which includes both the four standard COMA-F states
//! and the six additional stable states the Extended Coherence Protocol
//! introduces for recovery data.
//!
//! Item payloads are modelled as a single `u64` *version value* rather than
//! 128 bytes of data: all timing behaviour depends only on the modelled
//! transfer sizes (see `ftcoma-net`), while version values let the test suite
//! prove that rollback restores exactly the memory image of the last
//! committed recovery point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod am;
pub mod cache;
pub mod state;

pub use addr::{Addr, ItemId, LineId, NodeId, PageId};
pub use am::{AmGeometry, AttractionMemory, InjectionAccept, ItemSlot};
pub use cache::{Cache, CacheGeometry, LineState};
pub use state::ItemState;
