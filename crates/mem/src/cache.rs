//! Sectored processor data cache.
//!
//! Paper configuration (KSR1-like): 256 KB, 8-way set-associative, sectored
//! with 2 KB sectors and 64-byte lines. A *sector* is the tag/allocation
//! unit; its 32 lines are filled individually on demand. The cache is
//! write-back, write-allocate and inclusive in the local attraction memory:
//! a line may only be dirty while the local AM holds the enclosing item in
//! `Exclusive` state, and AM-level invalidations invalidate the matching
//! cache lines.
//!
//! Line payloads are not stored: the simulator keeps item values in the AM
//! (updated at write time), so cache state only drives *timing* (hit/miss
//! latencies, write-back charges).

use crate::addr::LineId;

/// State of one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// Line not present.
    #[default]
    Invalid,
    /// Present, identical to the AM copy.
    Clean,
    /// Present and modified relative to the last AM write-back.
    Dirty,
}

/// Cache geometry parameters.
///
/// # Example
///
/// ```
/// use ftcoma_mem::CacheGeometry;
///
/// let g = CacheGeometry::ksr1();
/// assert_eq!(g.sectors(), 128);
/// assert_eq!(g.sets(), 16);
/// assert_eq!(g.lines_per_sector(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Sector (tag allocation unit) size in bytes.
    pub sector_bytes: u64,
    /// Associativity, in sectors per set.
    pub ways: usize,
}

impl CacheGeometry {
    /// The paper's configuration: 256 KB, 2 KB sectors, 8-way.
    pub fn ksr1() -> Self {
        Self {
            capacity_bytes: 256 * 1024,
            sector_bytes: 2 * 1024,
            ways: 8,
        }
    }

    /// Total number of sector frames.
    pub fn sectors(&self) -> usize {
        (self.capacity_bytes / self.sector_bytes) as usize
    }

    /// Number of associative sets.
    pub fn sets(&self) -> usize {
        self.sectors() / self.ways
    }

    /// Cache lines per sector.
    pub fn lines_per_sector(&self) -> usize {
        (self.sector_bytes / crate::addr::LINE_BYTES) as usize
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into an integral number of
    /// sets of `ways` sectors, or sectors into lines.
    pub fn validate(&self) {
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            self.capacity_bytes.is_multiple_of(self.sector_bytes),
            "capacity not a multiple of sector size"
        );
        assert!(
            self.sectors().is_multiple_of(self.ways),
            "sector count not divisible by associativity"
        );
        assert!(
            self.sector_bytes.is_multiple_of(crate::addr::LINE_BYTES),
            "sector not a multiple of the line size"
        );
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        Self::ksr1()
    }
}

#[derive(Debug, Clone)]
struct Sector {
    /// Global sector index (`line.index() / lines_per_sector`).
    id: u64,
    lines: Vec<LineState>,
    lru: u64,
}

/// Result of filling a line into the cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// Number of dirty lines written back because a sector was evicted to
    /// make room. The caller charges write-back time for them.
    pub writebacks: u32,
    /// Whether a sector had to be evicted.
    pub evicted_sector: bool,
}

/// The sectored, write-back processor data cache.
///
/// # Example
///
/// ```
/// use ftcoma_mem::{Cache, LineState};
/// use ftcoma_mem::addr::LineId;
///
/// let mut c = Cache::ksr1();
/// let l = LineId::new(42);
/// assert_eq!(c.line_state(l), LineState::Invalid);
/// c.fill(l, false);
/// assert_eq!(c.line_state(l), LineState::Clean);
/// assert!(c.mark_dirty(l));
/// assert_eq!(c.line_state(l), LineState::Dirty);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geo: CacheGeometry,
    sets: Vec<Vec<Option<Sector>>>,
    tick: u64,
    /// Cached geometry derivatives: `geo` recomputes these with
    /// divisions, which is too slow for the per-reference probe path.
    lps: u64,
    num_sets: u64,
    /// Shift/mask fast path, valid only when `pow2` is set (both `lps`
    /// and `num_sets` are powers of two — true for the paper geometry).
    lps_shift: u32,
    lps_mask: u64,
    sets_mask: u64,
    pow2: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheGeometry::validate`]).
    pub fn new(geo: CacheGeometry) -> Self {
        geo.validate();
        let sets = (0..geo.sets())
            .map(|_| (0..geo.ways).map(|_| None).collect())
            .collect();
        let lps = geo.lines_per_sector() as u64;
        let num_sets = geo.sets() as u64;
        let pow2 = lps.is_power_of_two() && num_sets.is_power_of_two();
        Self {
            geo,
            sets,
            tick: 0,
            lps,
            num_sets,
            lps_shift: lps.trailing_zeros(),
            lps_mask: lps - 1,
            sets_mask: num_sets - 1,
            pow2,
        }
    }

    /// Creates an empty cache with the paper's geometry.
    pub fn ksr1() -> Self {
        Self::new(CacheGeometry::ksr1())
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geo
    }

    #[inline]
    fn sector_id(&self, line: LineId) -> u64 {
        if self.pow2 {
            line.index() >> self.lps_shift
        } else {
            line.index() / self.lps
        }
    }

    #[inline]
    fn set_index(&self, sector_id: u64) -> usize {
        if self.pow2 {
            (sector_id & self.sets_mask) as usize
        } else {
            (sector_id % self.num_sets) as usize
        }
    }

    #[inline]
    fn line_in_sector(&self, line: LineId) -> usize {
        if self.pow2 {
            (line.index() & self.lps_mask) as usize
        } else {
            (line.index() % self.lps) as usize
        }
    }

    fn find_sector(&self, sector_id: u64) -> Option<(usize, usize)> {
        let set = self.set_index(sector_id);
        self.sets[set]
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.id == sector_id))
            .map(|way| (set, way))
    }

    /// Current state of `line`.
    pub fn line_state(&self, line: LineId) -> LineState {
        match self.find_sector(self.sector_id(line)) {
            Some((set, way)) => {
                let idx = self.line_in_sector(line);
                self.sets[set][way].as_ref().expect("found sector").lines[idx]
            }
            None => LineState::Invalid,
        }
    }

    /// Is `line` present (clean or dirty)? Updates LRU on hit.
    pub fn probe(&mut self, line: LineId) -> bool {
        let sid = self.sector_id(line);
        if let Some((set, way)) = self.find_sector(sid) {
            let idx = self.line_in_sector(line);
            let sector = self.sets[set][way].as_mut().expect("found sector");
            if sector.lines[idx] != LineState::Invalid {
                self.tick += 1;
                sector.lru = self.tick;
                return true;
            }
        }
        false
    }

    /// Brings `line` into the cache (allocating its sector if needed),
    /// leaving it `Dirty` if `dirty`, else `Clean`.
    ///
    /// Returns write-back information if a sector eviction was required.
    pub fn fill(&mut self, line: LineId, dirty: bool) -> FillOutcome {
        let sid = self.sector_id(line);
        let idx = self.line_in_sector(line);
        self.tick += 1;
        let tick = self.tick;
        let mut outcome = FillOutcome::default();

        let (set, way) = match self.find_sector(sid) {
            Some(pos) => pos,
            None => {
                let set = self.set_index(sid);
                // Free way, or evict the LRU sector.
                let way = match self.sets[set].iter().position(Option::is_none) {
                    Some(w) => w,
                    None => {
                        let (w, victim) = self.sets[set]
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.as_ref().expect("full set").lru)
                            .map(|(w, s)| (w, s.as_ref().expect("full set")))
                            .expect("non-empty set");
                        outcome.evicted_sector = true;
                        outcome.writebacks = victim
                            .lines
                            .iter()
                            .filter(|&&l| l == LineState::Dirty)
                            .count() as u32;
                        w
                    }
                };
                self.sets[set][way] = Some(Sector {
                    id: sid,
                    lines: vec![LineState::Invalid; self.geo.lines_per_sector()],
                    lru: tick,
                });
                (set, way)
            }
        };

        let sector = self.sets[set][way].as_mut().expect("just ensured");
        sector.lru = tick;
        sector.lines[idx] = if dirty {
            LineState::Dirty
        } else {
            LineState::Clean
        };
        outcome
    }

    /// Marks a present line dirty. Returns `false` if the line is absent.
    pub fn mark_dirty(&mut self, line: LineId) -> bool {
        let sid = self.sector_id(line);
        if let Some((set, way)) = self.find_sector(sid) {
            let idx = self.line_in_sector(line);
            let sector = self.sets[set][way].as_mut().expect("found sector");
            if sector.lines[idx] != LineState::Invalid {
                self.tick += 1;
                sector.lru = self.tick;
                sector.lines[idx] = LineState::Dirty;
                return true;
            }
        }
        false
    }

    /// Invalidates every line of `item` (both 64 B lines of the 128 B item);
    /// returns how many of them were dirty.
    ///
    /// Used when the AM loses the item (remote write, injection, rollback).
    pub fn invalidate_item(&mut self, item: crate::addr::ItemId) -> u32 {
        let mut dirty = 0;
        for line in item.lines() {
            let sid = self.sector_id(line);
            if let Some((set, way)) = self.find_sector(sid) {
                let idx = self.line_in_sector(line);
                let sector = self.sets[set][way].as_mut().expect("found sector");
                if sector.lines[idx] == LineState::Dirty {
                    dirty += 1;
                }
                sector.lines[idx] = LineState::Invalid;
            }
        }
        dirty
    }

    /// Cleans (write-back without invalidation) every dirty line of `item`;
    /// returns how many lines were cleaned.
    ///
    /// Used by the checkpoint `create` phase: "cached modified data, flushed
    /// to memory when a recovery point is established, remain in the cache
    /// and can still be read by processors".
    pub fn flush_item(&mut self, item: crate::addr::ItemId) -> u32 {
        let mut cleaned = 0;
        for line in item.lines() {
            let sid = self.sector_id(line);
            if let Some((set, way)) = self.find_sector(sid) {
                let idx = self.line_in_sector(line);
                let sector = self.sets[set][way].as_mut().expect("found sector");
                if sector.lines[idx] == LineState::Dirty {
                    sector.lines[idx] = LineState::Clean;
                    cleaned += 1;
                }
            }
        }
        cleaned
    }

    /// Invalidates the whole cache (rollback); returns the number of lines
    /// that were present.
    pub fn invalidate_all(&mut self) -> u64 {
        let mut present = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if let Some(sector) = way.take() {
                    present += sector
                        .lines
                        .iter()
                        .filter(|&&l| l != LineState::Invalid)
                        .count() as u64;
                }
            }
        }
        present
    }

    /// Number of resident (non-invalid) lines, for assertions and stats.
    pub fn resident_lines(&self) -> u64 {
        self.sets
            .iter()
            .flatten()
            .flatten()
            .map(|s| s.lines.iter().filter(|&&l| l != LineState::Invalid).count() as u64)
            .sum()
    }

    /// Number of dirty lines.
    pub fn dirty_lines(&self) -> u64 {
        self.sets
            .iter()
            .flatten()
            .flatten()
            .map(|s| s.lines.iter().filter(|&&l| l == LineState::Dirty).count() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ItemId;

    #[test]
    fn fill_probe_round_trip() {
        let mut c = Cache::ksr1();
        let l = LineId::new(1234);
        assert!(!c.probe(l));
        c.fill(l, false);
        assert!(c.probe(l));
        assert_eq!(c.line_state(l), LineState::Clean);
    }

    #[test]
    fn mark_dirty_requires_presence() {
        let mut c = Cache::ksr1();
        let l = LineId::new(5);
        assert!(!c.mark_dirty(l));
        c.fill(l, false);
        assert!(c.mark_dirty(l));
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn sector_sharing_between_lines() {
        let mut c = Cache::ksr1();
        // Lines 0 and 1 share sector 0; filling both should not evict.
        c.fill(LineId::new(0), false);
        let out = c.fill(LineId::new(1), true);
        assert!(!out.evicted_sector);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn eviction_reports_dirty_writebacks() {
        let geo = CacheGeometry {
            capacity_bytes: 2 * 1024 * 2,
            sector_bytes: 2 * 1024,
            ways: 1,
        };
        // 2 sectors, 1 way => 2 sets. Sectors 0 and 2 map to set 0.
        let mut c = Cache::new(geo);
        let lines_per_sector = geo.lines_per_sector() as u64;
        c.fill(LineId::new(0), true); // sector 0
        c.fill(LineId::new(1), true); // sector 0
        let out = c.fill(LineId::new(2 * lines_per_sector), false); // sector 2, same set
        assert!(out.evicted_sector);
        assert_eq!(out.writebacks, 2);
        assert!(!c.probe(LineId::new(0)));
    }

    #[test]
    fn lru_prefers_older_sector() {
        let geo = CacheGeometry {
            capacity_bytes: 4 * 2048,
            sector_bytes: 2048,
            ways: 2,
        };
        // 4 sectors, 2 ways => 2 sets. Sectors 0, 2, 4 map to set 0.
        let mut c = Cache::new(geo);
        let lps = geo.lines_per_sector() as u64;
        c.fill(LineId::new(0), false); // sector 0
        c.fill(LineId::new(2 * lps), false); // sector 2
        c.probe(LineId::new(0)); // touch sector 0 => sector 2 is LRU
        c.fill(LineId::new(4 * lps), false); // evicts sector 2
        assert!(c.probe(LineId::new(0)));
        assert!(!c.probe(LineId::new(2 * lps)));
    }

    #[test]
    fn invalidate_item_clears_both_lines() {
        let mut c = Cache::ksr1();
        let item = ItemId::new(10);
        for l in item.lines() {
            c.fill(l, true);
        }
        assert_eq!(c.invalidate_item(item), 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn flush_item_keeps_lines_resident() {
        let mut c = Cache::ksr1();
        let item = ItemId::new(11);
        for l in item.lines() {
            c.fill(l, true);
        }
        assert_eq!(c.flush_item(item), 2);
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.resident_lines(), 2);
        // Idempotent.
        assert_eq!(c.flush_item(item), 0);
    }

    #[test]
    fn invalidate_all_counts_resident() {
        let mut c = Cache::ksr1();
        for i in 0..10 {
            c.fill(LineId::new(i * 100), i % 2 == 0);
        }
        assert_eq!(c.invalidate_all(), 10);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn geometry_accessors() {
        let c = Cache::ksr1();
        assert_eq!(c.geometry().ways, 8);
    }
}
