//! Per-node protocol state.

use ftcoma_mem::{AmGeometry, AttractionMemory, Cache, CacheGeometry, ItemId, NodeId, PageId};
use ftcoma_sim::FxHashSet;

use crate::dir::OwnerDirectory;
use crate::home::HomeTable;

/// Everything one node owns: memory hierarchy, localization pointers for
/// the items it is home for, the directory entries of the items it owns,
/// and transient bookkeeping that protects in-flight transfers.
///
/// This is a passive, compound structure in the C spirit: the protocol
/// engines in `ftcoma-core` operate on its public fields.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's identity.
    pub id: NodeId,
    /// The attraction memory.
    pub am: AttractionMemory,
    /// The processor data cache (inclusive in the AM).
    pub cache: Cache,
    /// Localization pointers + busy bits for items homed here.
    pub home: HomeTable,
    /// Sharing lists for items owned here.
    pub dir: OwnerDirectory,
    /// Is the node alive (fail-silent nodes simply stop participating)?
    pub alive: bool,
    /// Slots reserved for an accepted injection whose data is in flight;
    /// such slots must not be re-accepted or evicted.
    pub reserved: FxHashSet<ItemId>,
    /// Items whose data reply is in flight towards this node (pending
    /// misses); their slots must not be stolen by an injection.
    pub pending_fill: FxHashSet<ItemId>,
}

impl NodeState {
    /// Creates an empty, alive node.
    pub fn new(id: NodeId, am_geo: AmGeometry, cache_geo: CacheGeometry) -> Self {
        Self {
            id,
            am: AttractionMemory::new(am_geo),
            cache: Cache::new(cache_geo),
            home: HomeTable::new(),
            dir: OwnerDirectory::new(),
            alive: true,
            reserved: FxHashSet::default(),
            pending_fill: FxHashSet::default(),
        }
    }

    /// Creates a node with the paper's KSR1-like geometry.
    pub fn ksr1(id: NodeId) -> Self {
        Self::new(id, AmGeometry::ksr1(), CacheGeometry::ksr1())
    }

    /// May `page` be evicted right now? Pages containing reserved slots or
    /// slots awaiting a data fill must stay.
    pub fn can_evict_page(&self, page: PageId) -> bool {
        !self.reserved.iter().any(|i| i.page() == page)
            && !self.pending_fill.iter().any(|i| i.page() == page)
    }

    /// Is this item's slot blocked against injection acceptance?
    pub fn slot_blocked(&self, item: ItemId) -> bool {
        self.reserved.contains(&item) || self.pending_fill.contains(&item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NodeState {
        NodeState::new(
            NodeId::new(0),
            AmGeometry {
                capacity_bytes: 4 * ftcoma_mem::addr::PAGE_BYTES,
                ways: 2,
            },
            CacheGeometry {
                capacity_bytes: 4 * 2048,
                sector_bytes: 2048,
                ways: 2,
            },
        )
    }

    #[test]
    fn fresh_node_is_alive_and_empty() {
        let n = tiny();
        assert!(n.alive);
        assert_eq!(n.am.allocated_pages(), 0);
        assert!(n.home.is_empty());
        assert!(n.dir.is_empty());
    }

    #[test]
    fn eviction_guard_respects_reservations() {
        let mut n = tiny();
        let item = ItemId::new(5);
        assert!(n.can_evict_page(item.page()));
        n.reserved.insert(item);
        assert!(!n.can_evict_page(item.page()));
        assert!(n.slot_blocked(item));
        n.reserved.clear();
        n.pending_fill.insert(item);
        assert!(!n.can_evict_page(item.page()));
        assert!(n.slot_blocked(item));
    }

    #[test]
    fn ksr1_constructor_uses_paper_geometry() {
        let n = NodeState::ksr1(NodeId::new(3));
        assert_eq!(n.am.geometry().frames(), 512);
        assert_eq!(n.cache.geometry().sectors(), 128);
        assert_eq!(n.id, NodeId::new(3));
    }
}
