//! Node-local memory access latencies.
//!
//! Together with the network parameters in `ftcoma-net`, these defaults
//! reproduce Table 2 of the paper exactly:
//!
//! | read miss serviced by | cycles |
//! |---|---|
//! | cache                 | 1 |
//! | local AM              | 18 |
//! | remote AM, 1 hop      | 116 |
//! | remote AM, 2 hops     | 124 |
//!
//! Remote read-miss breakdown (see DESIGN.md §3): 18 (local AM miss
//! detection) + 8+4h+4 (request message) + 20 (remote AM access and
//! transfer to the NI) + 8+4h+32 (item reply) + 18 (install and cache
//! fill) = 108 + 8h.

use ftcoma_sim::Cycles;

/// Local memory-timing parameters of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTiming {
    /// Cache hit latency.
    pub cache_hit: Cycles,
    /// Cache miss serviced by the local AM (probe + fill, total).
    pub local_am: Cycles,
    /// Local AM probe that *misses* (latency before the request leaves).
    pub miss_detect: Cycles,
    /// Remote AM access plus transfer of an item to the network controller.
    pub remote_am_access: Cycles,
    /// Installing an arriving item into the AM and filling the cache.
    pub install: Cycles,
    /// Delay before the injection acknowledgement leaves the accepting
    /// node ("the injection acknowledgment is sent 5 cycles after the
    /// reception of the item"; copying to memory overlaps with it).
    pub inject_ack_delay: Cycles,
    /// Commit-phase cost to test whether a page is allocated.
    pub commit_page_test: Cycles,
    /// Commit-phase cost to test (and possibly rewrite) one item state.
    pub commit_item_test: Cycles,
    /// Cost of writing one dirty cache line back to the local AM.
    pub writeback: Cycles,
    /// Independent AM controllers per node (the KSR1 has four); local
    /// whole-AM scans are parallelised across them.
    pub am_controllers: u32,
}

impl MemTiming {
    /// The paper's KSR1-like defaults.
    pub fn ksr1() -> Self {
        Self {
            cache_hit: 1,
            local_am: 18,
            miss_detect: 18,
            remote_am_access: 20,
            install: 18,
            inject_ack_delay: 5,
            commit_page_test: 1,
            commit_item_test: 1,
            writeback: 18,
            am_controllers: 4,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `am_controllers` is zero.
    pub fn validate(&self) {
        assert!(self.am_controllers > 0, "need at least one AM controller");
    }

    /// Commit-phase scan cost for `pages` allocated pages of `items_per_page`
    /// items, divided across the AM controllers.
    pub fn commit_scan(&self, pages: u64, items_per_page: u64) -> Cycles {
        let serial = pages * (self.commit_page_test + items_per_page * self.commit_item_test);
        serial.div_ceil(u64::from(self.am_controllers))
    }
}

impl MemTiming {
    /// Software-implemented coherence, as in a recoverable distributed
    /// shared virtual memory on a network of workstations (the paper's
    /// concluding application: "we have already implemented a recoverable
    /// DSVM based on the ECP on the Intel Paragon … and on a network of
    /// workstations"). Every protocol action runs a software handler, so
    /// the node-local costs are 1–2 orders of magnitude above the
    /// hardware-controller figures.
    pub fn software_dsm() -> Self {
        Self {
            cache_hit: 1,
            local_am: 40,
            miss_detect: 250,      // page-fault entry + handler dispatch
            remote_am_access: 600, // handler + copy to the NI
            install: 400,          // copy + page-table update
            inject_ack_delay: 80,
            commit_page_test: 4,
            commit_item_test: 4,
            writeback: 40,
            am_controllers: 1, // one CPU does everything
        }
    }
}

impl Default for MemTiming {
    fn default() -> Self {
        Self::ksr1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ksr1_defaults() {
        let t = MemTiming::ksr1();
        t.validate();
        assert_eq!(t.cache_hit, 1);
        assert_eq!(t.local_am, 18);
        assert_eq!(t.inject_ack_delay, 5);
    }

    #[test]
    fn commit_scan_parallelised_over_controllers() {
        let t = MemTiming::ksr1();
        // 10 pages * (1 + 128) = 1290 cycles serial, / 4 controllers.
        assert_eq!(t.commit_scan(10, 128), 323);
        assert_eq!(t.commit_scan(0, 128), 0);
    }

    #[test]
    fn software_dsm_is_much_slower() {
        let hw = MemTiming::ksr1();
        let sw = MemTiming::software_dsm();
        sw.validate();
        assert!(sw.miss_detect > 10 * hw.miss_detect);
        assert!(sw.remote_am_access > 10 * hw.remote_am_access);
        assert_eq!(sw.am_controllers, 1);
    }

    #[test]
    #[should_panic(expected = "controller")]
    fn zero_controllers_rejected() {
        let mut t = MemTiming::ksr1();
        t.am_controllers = 0;
        t.validate();
    }
}
