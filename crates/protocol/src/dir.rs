//! Owner-side sharing directory.
//!
//! "As opposed to the COMA-F, the directory entry of an item is maintained
//! on the node which is the current owner of the item." The entry is the
//! item's sharing list; it travels with ownership (inside
//! [`crate::msg::ItemPayload`]) when the owner copy moves.
//!
//! Sharing lists may contain stale entries: a node that silently dropped
//! its `Shared` copy (replacement, injection victim) stays listed until the
//! next invalidation round, which it acknowledges trivially. This mirrors
//! the real protocol and is harmless.

use ftcoma_mem::{ItemId, NodeId};
use ftcoma_sim::FxHashMap;

/// Sharing lists for the items this node currently owns.
///
/// # Example
///
/// ```
/// use ftcoma_protocol::OwnerDirectory;
/// use ftcoma_mem::{ItemId, NodeId};
///
/// let mut dir = OwnerDirectory::new();
/// let item = ItemId::new(3);
/// dir.create(item, vec![]);
/// dir.add_sharer(item, NodeId::new(2));
/// dir.add_sharer(item, NodeId::new(2)); // idempotent
/// assert_eq!(dir.sharers(item), &[NodeId::new(2)]);
/// let moved = dir.take(item);
/// assert_eq!(moved, vec![NodeId::new(2)]);
/// assert!(!dir.owns(item));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OwnerDirectory {
    entries: FxHashMap<ItemId, Vec<NodeId>>,
}

impl OwnerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Does this node hold the directory entry (i.e. own) `item`?
    pub fn owns(&self, item: ItemId) -> bool {
        self.entries.contains_key(&item)
    }

    /// Installs the entry for a newly owned item with the given sharers.
    pub fn create(&mut self, item: ItemId, sharers: Vec<NodeId>) {
        self.entries.insert(item, sharers);
    }

    /// The sharing list of an owned item (empty slice if not owned).
    pub fn sharers(&self, item: ItemId) -> &[NodeId] {
        self.entries.get(&item).map_or(&[], Vec::as_slice)
    }

    /// Adds a sharer (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the item is not owned here.
    pub fn add_sharer(&mut self, item: ItemId, node: NodeId) {
        let sharers = self
            .entries
            .get_mut(&item)
            .expect("adding sharer to unowned item");
        if !sharers.contains(&node) {
            sharers.push(node);
        }
    }

    /// Removes a sharer if present.
    pub fn remove_sharer(&mut self, item: ItemId, node: NodeId) {
        if let Some(sharers) = self.entries.get_mut(&item) {
            sharers.retain(|&n| n != node);
        }
    }

    /// Removes and returns the entry — ownership is leaving this node.
    ///
    /// # Panics
    ///
    /// Panics if the item is not owned here.
    pub fn take(&mut self, item: ItemId) -> Vec<NodeId> {
        self.entries.remove(&item).expect("taking unowned entry")
    }

    /// Drops the entry if present (invalidation of the owner copy).
    pub fn drop_entry(&mut self, item: ItemId) {
        self.entries.remove(&item);
    }

    /// Number of owned items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the directory empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over owned items (unordered).
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.entries.keys().copied()
    }

    /// Clears everything (rollback).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> ItemId {
        ItemId::new(12)
    }

    #[test]
    fn create_take_round_trip() {
        let mut d = OwnerDirectory::new();
        d.create(item(), vec![NodeId::new(1), NodeId::new(2)]);
        assert!(d.owns(item()));
        assert_eq!(d.take(item()), vec![NodeId::new(1), NodeId::new(2)]);
        assert!(d.is_empty());
    }

    #[test]
    fn remove_sharer_tolerates_absent() {
        let mut d = OwnerDirectory::new();
        d.remove_sharer(item(), NodeId::new(1)); // no entry at all: no-op
        d.create(item(), vec![NodeId::new(1)]);
        d.remove_sharer(item(), NodeId::new(9)); // not in list: no-op
        d.remove_sharer(item(), NodeId::new(1));
        assert!(d.sharers(item()).is_empty());
    }

    #[test]
    #[should_panic(expected = "unowned")]
    fn add_sharer_requires_ownership() {
        let mut d = OwnerDirectory::new();
        d.add_sharer(item(), NodeId::new(1));
    }

    #[test]
    fn sharers_of_unowned_is_empty() {
        let d = OwnerDirectory::new();
        assert!(d.sharers(item()).is_empty());
    }

    #[test]
    fn clear_drops_all() {
        let mut d = OwnerDirectory::new();
        d.create(item(), vec![]);
        d.create(ItemId::new(13), vec![NodeId::new(3)]);
        assert_eq!(d.len(), 2);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.items().count(), 0);
    }
}
