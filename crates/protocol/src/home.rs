//! Localization pointers and per-item transaction serialization.
//!
//! Each node holds the *localization pointers* of the items it is home for:
//! a map from item to current owner. Transactions (and owner-copy
//! injections) are serialized per item with a busy bit and a FIFO of
//! waiting requests, the standard way to keep a flat COMA directory
//! protocol race-free.

use std::collections::VecDeque;

use ftcoma_mem::{ItemId, NodeId};
use ftcoma_sim::FxHashMap;

/// A request waiting for an item's busy bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuedReq {
    /// A read miss from the given node.
    Read(NodeId),
    /// A write miss / upgrade from the given node.
    Write(NodeId),
    /// An owner-copy injection lock requested by the given node.
    InjectLock(NodeId),
}

impl QueuedReq {
    /// The node that issued the request.
    pub fn requester(self) -> NodeId {
        match self {
            QueuedReq::Read(n) | QueuedReq::Write(n) | QueuedReq::InjectLock(n) => n,
        }
    }
}

/// The home-side state for the items a node is home for.
///
/// # Example
///
/// ```
/// use ftcoma_protocol::{HomeTable, QueuedReq};
/// use ftcoma_mem::{ItemId, NodeId};
///
/// let mut home = HomeTable::new();
/// let item = ItemId::new(1);
/// assert!(home.try_acquire(item));       // transaction starts
/// assert!(!home.try_acquire(item));      // second one must wait
/// home.enqueue(item, QueuedReq::Read(NodeId::new(3)));
/// let next = home.release(item);         // first ends; queued one pops
/// assert_eq!(next, Some(QueuedReq::Read(NodeId::new(3))));
/// assert!(home.is_busy(item));           // still busy for the popped one
/// assert_eq!(home.release(item), None);  // now idle
/// assert!(!home.is_busy(item));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HomeTable {
    owner: FxHashMap<ItemId, NodeId>,
    busy: FxHashMap<ItemId, VecDeque<QueuedReq>>,
}

impl HomeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current owner of `item`, if the item exists machine-wide.
    pub fn owner(&self, item: ItemId) -> Option<NodeId> {
        self.owner.get(&item).copied()
    }

    /// Records `node` as the owner of `item`.
    pub fn set_owner(&mut self, item: ItemId, node: NodeId) {
        self.owner.insert(item, node);
    }

    /// Forgets `item` entirely (rollback of an item that did not exist at
    /// the recovery point).
    pub fn remove(&mut self, item: ItemId) {
        self.owner.remove(&item);
        self.busy.remove(&item);
    }

    /// Is a transaction in flight for `item`?
    pub fn is_busy(&self, item: ItemId) -> bool {
        self.busy.contains_key(&item)
    }

    /// Attempts to start a transaction: returns `true` and marks the item
    /// busy if it was idle.
    pub fn try_acquire(&mut self, item: ItemId) -> bool {
        use std::collections::hash_map::Entry;
        match self.busy.entry(item) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(VecDeque::new());
                true
            }
        }
    }

    /// Queues a request behind the current transaction.
    ///
    /// # Panics
    ///
    /// Panics if the item is not busy — the caller should have acquired it
    /// instead.
    pub fn enqueue(&mut self, item: ItemId, req: QueuedReq) {
        self.busy
            .get_mut(&item)
            .expect("enqueue on idle item")
            .push_back(req);
    }

    /// Ends the current transaction. If requests are queued, pops the next
    /// one (the item *stays busy* for it); otherwise clears the busy bit.
    ///
    /// # Panics
    ///
    /// Panics if the item is not busy.
    pub fn release(&mut self, item: ItemId) -> Option<QueuedReq> {
        let q = self.busy.get_mut(&item).expect("release on idle item");
        match q.pop_front() {
            Some(req) => Some(req),
            None => {
                self.busy.remove(&item);
                None
            }
        }
    }

    /// Number of items with known owners.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Iterates over `(item, owner)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, NodeId)> + '_ {
        self.owner.iter().map(|(&i, &n)| (i, n))
    }

    /// Number of items currently busy (diagnostics).
    pub fn busy_count(&self) -> usize {
        self.busy.len()
    }

    /// Drops every pointer and busy bit (rollback rebuild).
    pub fn clear(&mut self) {
        self.owner.clear();
        self.busy.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> ItemId {
        ItemId::new(9)
    }

    #[test]
    fn owner_round_trip() {
        let mut h = HomeTable::new();
        assert_eq!(h.owner(item()), None);
        h.set_owner(item(), NodeId::new(4));
        assert_eq!(h.owner(item()), Some(NodeId::new(4)));
        h.remove(item());
        assert_eq!(h.owner(item()), None);
        assert!(h.is_empty());
    }

    #[test]
    fn queue_is_fifo() {
        let mut h = HomeTable::new();
        assert!(h.try_acquire(item()));
        h.enqueue(item(), QueuedReq::Write(NodeId::new(1)));
        h.enqueue(item(), QueuedReq::Read(NodeId::new(2)));
        assert_eq!(h.release(item()), Some(QueuedReq::Write(NodeId::new(1))));
        assert_eq!(h.release(item()), Some(QueuedReq::Read(NodeId::new(2))));
        assert_eq!(h.release(item()), None);
        assert!(!h.is_busy(item()));
    }

    #[test]
    #[should_panic(expected = "idle item")]
    fn release_requires_busy() {
        let mut h = HomeTable::new();
        h.release(item());
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = HomeTable::new();
        h.set_owner(item(), NodeId::new(0));
        h.try_acquire(item());
        h.clear();
        assert!(h.is_empty());
        assert!(!h.is_busy(item()));
        assert_eq!(h.busy_count(), 0);
    }

    #[test]
    fn requester_accessor() {
        assert_eq!(
            QueuedReq::InjectLock(NodeId::new(5)).requester(),
            NodeId::new(5)
        );
    }
}
