//! COMA-F coherence-protocol building blocks.
//!
//! This crate holds the *standard* (non-fault-tolerant) protocol machinery
//! of the simulated machine, shared by the baseline and the Extended
//! Coherence Protocol in `ftcoma-core`:
//!
//! * [`msg::Msg`] — the complete coherence message vocabulary (requests,
//!   data transfers, invalidations, injections, checkpoint traffic);
//! * [`home::HomeTable`] — the statically distributed *localization
//!   pointers* that map an item to its current owner, plus the per-item
//!   serialization (busy/queue) that keeps racing transactions ordered;
//! * [`dir::OwnerDirectory`] — the sharing lists attached to the owner copy
//!   of each item ("the directory entry of an item is maintained on the
//!   node which is the current owner of the item");
//! * [`timing::MemTiming`] — node-local access latencies (Table 2
//!   calibration together with `ftcoma-net`);
//! * [`transport::SeqSpace`] / [`transport::DedupFilter`] — the reliable
//!   end-to-end transport bookkeeping (per-destination sequence numbers,
//!   duplicate suppression, bounded exponential backoff) that the network
//!   interface layers over a faulty mesh;
//! * [`node::NodeState`] — everything a node owns: cache, attraction
//!   memory, home table, directory, and transient protocol bookkeeping.
//!
//! The transaction *logic* itself — what happens on a read miss, a write
//! fault on a recovery copy, an injection — lives in `ftcoma-core`, which
//! implements both protocol variants over these structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dir;
pub mod home;
pub mod msg;
pub mod node;
pub mod timing;
pub mod transport;

pub use dir::OwnerDirectory;
pub use home::{HomeTable, QueuedReq};
pub use msg::{Msg, Outgoing, TxnLeg};
pub use node::NodeState;
pub use timing::MemTiming;

use ftcoma_mem::{ItemId, NodeId};
use ftcoma_net::LogicalRing;

/// The node responsible for an item's localization pointer.
///
/// Pointers are statically distributed across the nodes by item index; if
/// the static home has failed permanently, responsibility migrates to its
/// ring successor (a reproduction-completing extension — see DESIGN.md §3).
///
/// # Example
///
/// ```
/// use ftcoma_protocol::home_of;
/// use ftcoma_net::LogicalRing;
/// use ftcoma_mem::{ItemId, NodeId};
///
/// let mut ring = LogicalRing::new(4);
/// assert_eq!(home_of(ItemId::new(6), &ring), NodeId::new(2));
/// ring.mark_dead(NodeId::new(2));
/// assert_eq!(home_of(ItemId::new(6), &ring), NodeId::new(3));
/// ```
///
/// # Panics
///
/// Panics if no node is alive.
pub fn home_of(item: ItemId, ring: &LogicalRing) -> NodeId {
    let statically = NodeId::new((item.index() % ring.len() as u64) as u16);
    if ring.is_alive(statically) {
        statically
    } else {
        ring.successor(statically).expect("at least one live node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_distributes_by_item_index() {
        let ring = LogicalRing::new(8);
        assert_eq!(home_of(ItemId::new(0), &ring), NodeId::new(0));
        assert_eq!(home_of(ItemId::new(15), &ring), NodeId::new(7));
        assert_eq!(home_of(ItemId::new(16), &ring), NodeId::new(0));
    }

    #[test]
    fn home_migrates_past_multiple_dead_nodes() {
        let mut ring = LogicalRing::new(4);
        ring.mark_dead(NodeId::new(1));
        ring.mark_dead(NodeId::new(2));
        assert_eq!(home_of(ItemId::new(1), &ring), NodeId::new(3));
        assert_eq!(home_of(ItemId::new(2), &ring), NodeId::new(3));
    }
}
