//! Reliable end-to-end transport bookkeeping for the network interface.
//!
//! The mesh below the protocol can drop, duplicate, delay or refuse to
//! route messages once interconnect faults are in play (see `ftcoma-net`).
//! This module holds the *pure* state machinery a node's network interface
//! needs to make message delivery reliable on top of that:
//!
//! * per-destination sequence numbers ([`SeqSpace`]),
//! * exactly-once delivery via duplicate suppression ([`DedupFilter`]),
//! * bounded exponential backoff for ack/timeout retransmission
//!   ([`backoff`]).
//!
//! The event-driven half (scheduling retries, sending acks, escalating to
//! the recovery machinery after [`MAX_RETRIES`]) lives in `ftcoma-machine`;
//! everything here is deterministic data plumbing so it can be unit-tested
//! in isolation.

use std::collections::{HashMap, HashSet};

use ftcoma_mem::NodeId;
use ftcoma_sim::Cycles;

/// First retransmission timeout in cycles.
///
/// Comfortably above the worst zero-load round trip of the default mesh
/// (two ~50-cycle message latencies plus service time), so a healthy but
/// congested network does not trigger spurious retransmissions at once.
pub const RTO_BASE: Cycles = 1_000;

/// Ceiling of the exponential backoff, in cycles.
pub const RTO_CAP: Cycles = 32_000;

/// Retransmissions after which the transport gives up on a peer and
/// escalates to the machine's failure handling.
pub const MAX_RETRIES: u32 = 10;

/// Retransmission timeout for the given attempt number (0 = the initial
/// transmission): `min(RTO_BASE << attempt, RTO_CAP)`.
///
/// # Example
///
/// ```
/// use ftcoma_protocol::transport::{backoff, RTO_BASE, RTO_CAP};
///
/// assert_eq!(backoff(0), RTO_BASE);
/// assert_eq!(backoff(1), 2 * RTO_BASE);
/// assert_eq!(backoff(31), RTO_CAP); // bounded
/// ```
pub fn backoff(attempt: u32) -> Cycles {
    RetryPolicy::default().backoff(attempt)
}

/// The transport's retransmission knobs, validated as a unit so a
/// machine can be tuned per run (CLI `--rto-base/--rto-cap/--max-retries`)
/// without each field being checked ad hoc at the call sites.
///
/// [`RetryPolicy::default`] reproduces the historical constants
/// ([`RTO_BASE`], [`RTO_CAP`], [`MAX_RETRIES`]), and the free [`backoff`]
/// function stays as the default-policy shorthand — fault-free runs under
/// the default policy are byte-identical to before the policy existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First retransmission timeout in cycles.
    pub rto_base: Cycles,
    /// Ceiling of the exponential backoff, in cycles.
    pub rto_cap: Cycles,
    /// Retransmissions after which the transport gives up on a peer.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            rto_base: RTO_BASE,
            rto_cap: RTO_CAP,
            max_retries: MAX_RETRIES,
        }
    }
}

impl RetryPolicy {
    /// Checks the policy is usable: a positive base, a cap no smaller
    /// than the base, and at least one retry before escalation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.rto_base == 0 {
            return Err("retry policy: rto_base must be positive".into());
        }
        if self.rto_cap < self.rto_base {
            return Err(format!(
                "retry policy: rto_cap {} below rto_base {}",
                self.rto_cap, self.rto_base
            ));
        }
        if self.max_retries == 0 {
            return Err("retry policy: max_retries must be at least 1".into());
        }
        Ok(())
    }

    /// Retransmission timeout for the given attempt number (0 = the
    /// initial transmission): `min(rto_base << attempt, rto_cap)`.
    pub fn backoff(&self, attempt: u32) -> Cycles {
        // Clamp the exponent before shifting: past log2(cap/base) doublings
        // the cap wins anyway, and an unclamped shift would wrap bits out.
        let exp = attempt.min((self.rto_cap / self.rto_base).ilog2());
        (self.rto_base << exp).min(self.rto_cap)
    }
}

/// Per-destination send sequence numbers for one node.
#[derive(Debug, Clone, Default)]
pub struct SeqSpace {
    next: HashMap<NodeId, u64>,
}

impl SeqSpace {
    /// An empty sequence space (all destinations start at 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next sequence number for a message to `dst`.
    pub fn next(&mut self, dst: NodeId) -> u64 {
        let seq = self.next.entry(dst).or_insert(0);
        let allocated = *seq;
        *seq += 1;
        allocated
    }

    /// Forgets all sequence state (used when a failure wipes the network:
    /// every in-flight packet is gone, so numbering may restart).
    pub fn clear(&mut self) {
        self.next.clear();
    }
}

/// Receive-side duplicate suppression: remembers every `(src, seq)` pair
/// already delivered to the protocol engine.
///
/// Sequence numbers can arrive out of order (retransmissions race the
/// originals, detours reorder packets), so this is a set, not a
/// highest-seen watermark.
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    seen: HashSet<(NodeId, u64)>,
}

impl DedupFilter {
    /// An empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivery; returns `true` iff it is the first time this
    /// `(src, seq)` was seen (i.e. the payload must be handed up).
    pub fn first_delivery(&mut self, src: NodeId, seq: u64) -> bool {
        self.seen.insert((src, seq))
    }

    /// Forgets everything (failure recovery resets the network).
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        assert_eq!(backoff(0), 1_000);
        assert_eq!(backoff(1), 2_000);
        assert_eq!(backoff(4), 16_000);
        assert_eq!(backoff(5), 32_000);
        assert_eq!(backoff(6), 32_000);
        assert_eq!(backoff(63), 32_000);
        assert_eq!(backoff(64), 32_000); // shift overflow is still capped
    }

    #[test]
    fn retry_policy_defaults_match_the_constants_and_validate() {
        let p = RetryPolicy::default();
        assert_eq!(
            (p.rto_base, p.rto_cap, p.max_retries),
            (RTO_BASE, RTO_CAP, MAX_RETRIES)
        );
        assert!(p.validate().is_ok());
        for attempt in 0..70 {
            assert_eq!(p.backoff(attempt), backoff(attempt), "attempt {attempt}");
        }
        // A custom policy follows its own base/cap.
        let fast = RetryPolicy {
            rto_base: 500,
            rto_cap: 2_000,
            max_retries: 3,
        };
        assert!(fast.validate().is_ok());
        assert_eq!(fast.backoff(0), 500);
        assert_eq!(fast.backoff(2), 2_000);
        assert_eq!(fast.backoff(64), 2_000);
        // Each rule rejects.
        assert!(RetryPolicy {
            rto_base: 0,
            ..fast
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            rto_cap: 499,
            ..fast
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            max_retries: 0,
            ..fast
        }
        .validate()
        .is_err());
    }

    #[test]
    fn sequence_numbers_are_per_destination() {
        let mut seqs = SeqSpace::new();
        assert_eq!(seqs.next(n(1)), 0);
        assert_eq!(seqs.next(n(1)), 1);
        assert_eq!(seqs.next(n(2)), 0);
        assert_eq!(seqs.next(n(1)), 2);
        seqs.clear();
        assert_eq!(seqs.next(n(1)), 0);
    }

    #[test]
    fn dedup_suppresses_retransmitted_deliveries_out_of_order() {
        let mut filter = DedupFilter::new();
        assert!(filter.first_delivery(n(3), 7));
        assert!(filter.first_delivery(n(3), 5)); // out of order: still new
        assert!(!filter.first_delivery(n(3), 7)); // the duplicate
        assert!(filter.first_delivery(n(4), 7)); // another source
        filter.clear();
        assert!(filter.first_delivery(n(3), 7));
    }
}
