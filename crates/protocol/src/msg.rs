//! The coherence message vocabulary.
//!
//! Every inter-node interaction of both protocol variants is one of these
//! messages. Control messages are header-only (4 flits); messages carrying
//! an item travel with a 128-byte payload. Each message knows which
//! sub-network it uses, so the engine cannot misroute one.

use ftcoma_mem::addr::ITEM_BYTES;
use ftcoma_mem::{ItemId, ItemState, NodeId};
use ftcoma_net::NetClass;

/// Why an injection was started (Table 1 of the paper, plus the standard
/// master-replacement cause and checkpoint replication).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectCause {
    /// Replacement of a master or recovery copy during page eviction.
    Replacement,
    /// Read access faulting on a local `Inv-CK` copy.
    ReadOnInvCk,
    /// Write access faulting on a local `Inv-CK` copy.
    WriteOnInvCk,
    /// Write access faulting on a local `Shared-CK` copy.
    WriteOnSharedCk,
    /// Recovery-point establishment replicating a modified item
    /// (copies, rather than moves, the item).
    CkptReplication,
    /// Post-failure reconfiguration re-replicating a recovery copy whose
    /// partner was lost.
    Reconfiguration,
}

impl InjectCause {
    /// Is this cause a *move* (the origin's copy disappears) rather than a
    /// *copy* (checkpoint replication, reconfiguration)?
    pub fn is_move(self) -> bool {
        !matches!(
            self,
            InjectCause::CkptReplication | InjectCause::Reconfiguration
        )
    }

    /// Was the injection triggered by a processor read access?
    pub fn on_read(self) -> bool {
        matches!(self, InjectCause::ReadOnInvCk)
    }

    /// Was the injection triggered by a processor write access?
    pub fn on_write(self) -> bool {
        matches!(
            self,
            InjectCause::WriteOnInvCk | InjectCause::WriteOnSharedCk
        )
    }
}

/// Payload of an item travelling between AMs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPayload {
    /// The item's coherence state at its destination.
    pub state: ItemState,
    /// The item's version value.
    pub value: u64,
    /// Recovery-partner pointer carried with CK copies.
    pub partner: Option<NodeId>,
    /// Recovery-point generation of CK copies.
    pub ckpt_gen: u64,
    /// Sharing list, carried when ownership (and thus the directory entry)
    /// moves with the copy.
    pub sharers: Vec<NodeId>,
}

/// A coherence protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    // ---- Localization / transaction initiation (requester -> home) ----
    /// Read miss: locate the owner and obtain a shared copy.
    ReadReq {
        /// Requested item.
        item: ItemId,
        /// Faulting node.
        requester: NodeId,
    },
    /// Write miss or upgrade: obtain exclusive ownership.
    WriteReq {
        /// Requested item.
        item: ItemId,
        /// Faulting node.
        requester: NodeId,
    },

    // ---- Forwards (home -> owner) ----
    /// Forwarded read request.
    ReadFwd {
        /// Requested item.
        item: ItemId,
        /// Faulting node the data must be sent to.
        requester: NodeId,
    },
    /// Forwarded write request.
    WriteFwd {
        /// Requested item.
        item: ItemId,
        /// Faulting node ownership must be transferred to.
        requester: NodeId,
    },

    // ---- Data replies ----
    /// Shared copy of the item (owner -> requester), 128-byte payload.
    DataShared {
        /// The item.
        item: ItemId,
        /// Item version value.
        value: u64,
    },
    /// Ownership transfer (owner -> requester), 128-byte payload. The
    /// requester must additionally collect `acks_expected` invalidation
    /// acknowledgements before proceeding.
    DataExclusive {
        /// The item.
        item: ItemId,
        /// Item version value.
        value: u64,
        /// Invalidation acks the requester must await.
        acks_expected: u32,
    },
    /// First touch of an item machine-wide: the home grants a fresh copy
    /// (zero-filled storage, so header-only).
    InitGrant {
        /// The item.
        item: ItemId,
        /// Granted state: `MasterShared` for reads, `Exclusive` for writes.
        state: ItemState,
    },

    // ---- Invalidations ----
    /// Invalidate a plain shared copy; ack to `ack_to`.
    Inval {
        /// The item.
        item: ItemId,
        /// Node collecting the acknowledgement (the new owner).
        ack_to: NodeId,
    },
    /// ECP: turn the sibling `Shared-CK2` copy into `Inv-CK2`; ack to
    /// `ack_to`.
    InvalCk {
        /// The item.
        item: ItemId,
        /// Node collecting the acknowledgement (the new owner).
        ack_to: NodeId,
    },
    /// Invalidation acknowledgement (sharer -> new owner).
    InvalAck {
        /// The item.
        item: ItemId,
    },
    /// Transaction completion (requester -> home): release the busy bit.
    TxnDone {
        /// The item.
        item: ItemId,
    },
    /// Ownership change notification (new owner -> home): update the
    /// localization pointer and release the busy bit.
    OwnerUpdate {
        /// The item.
        item: ItemId,
        /// The node now owning the item.
        new_owner: NodeId,
    },

    // ---- Injection (ring walk) ----
    /// Serialize an owner-copy injection against the home's busy bit
    /// (origin -> home).
    InjectLock {
        /// The item.
        item: ItemId,
        /// Injecting node.
        origin: NodeId,
    },
    /// Lock granted (home -> origin).
    InjectLockGrant {
        /// The item.
        item: ItemId,
    },
    /// Lock released without ownership change (origin -> home); used when
    /// the origin lost the copy while waiting for the grant.
    InjectLockRelease {
        /// The item.
        item: ItemId,
    },
    /// Find a victim slot for an injected/replicated copy; forwarded along
    /// the logical ring until accepted (header-only first step of the
    /// two-step injection).
    InjectReq {
        /// The item.
        item: ItemId,
        /// Injecting node (receives the accept).
        origin: NodeId,
        /// State the copy will have at its destination.
        state: ItemState,
        /// Why the injection happens (statistics, Table 1 / Figs 6 & 11).
        cause: InjectCause,
        /// Ring hops walked so far; the walk must terminate within one
        /// full traversal (the four-irreplaceable-pages guarantee).
        hops: u32,
    },
    /// A node accepted the injection and reserved the slot
    /// (acceptor -> origin).
    InjectAccept {
        /// The item.
        item: ItemId,
        /// The accepting node.
        host: NodeId,
        /// Echo of the request's cause.
        cause: InjectCause,
    },
    /// The injected item itself (origin -> acceptor), 128-byte payload.
    InjectData {
        /// The item.
        item: ItemId,
        /// Injecting node (receives the final acknowledgement).
        origin: NodeId,
        /// Copy contents and metadata.
        payload: ItemPayload,
        /// Echo of the request's cause.
        cause: InjectCause,
    },
    /// Injection acknowledgement (acceptor -> origin), sent 5 cycles after
    /// the data arrives; the origin may then free its slot.
    InjectDone {
        /// The item.
        item: ItemId,
        /// The accepting node.
        host: NodeId,
        /// Echo of the request's cause.
        cause: InjectCause,
    },
    /// A moved recovery copy informs its sibling of its new location.
    PartnerUpdate {
        /// The item.
        item: ItemId,
        /// New host of the sibling recovery copy.
        new_partner: NodeId,
        /// Generation of the copy that moved.
        ckpt_gen: u64,
        /// Node to acknowledge (the injection origin, which holds the
        /// item's serialization lock until the pointer is settled).
        reply_to: NodeId,
    },
    /// Acknowledges a [`Msg::PartnerUpdate`].
    PartnerUpdateAck {
        /// The item.
        item: ItemId,
    },

    // ---- Recovery-point establishment ----
    /// Create-phase optimisation: ask a node holding a plain `Shared` copy
    /// to re-label it `Pre-Commit2` instead of transferring data.
    PreCommitMark {
        /// The item.
        item: ItemId,
        /// The node establishing the recovery point (holds `Pre-Commit1`).
        origin: NodeId,
        /// Generation being established.
        ckpt_gen: u64,
    },
    /// Answer to [`Msg::PreCommitMark`]: whether the copy was still there
    /// and is now `Pre-Commit2`.
    PreCommitMarkAck {
        /// The item.
        item: ItemId,
        /// `true` if the mark succeeded.
        accepted: bool,
    },
}

impl Msg {
    /// The item this message concerns.
    pub fn item(&self) -> ItemId {
        match self {
            Msg::ReadReq { item, .. }
            | Msg::WriteReq { item, .. }
            | Msg::ReadFwd { item, .. }
            | Msg::WriteFwd { item, .. }
            | Msg::DataShared { item, .. }
            | Msg::DataExclusive { item, .. }
            | Msg::InitGrant { item, .. }
            | Msg::Inval { item, .. }
            | Msg::InvalCk { item, .. }
            | Msg::InvalAck { item }
            | Msg::TxnDone { item }
            | Msg::OwnerUpdate { item, .. }
            | Msg::InjectLock { item, .. }
            | Msg::InjectLockGrant { item }
            | Msg::InjectLockRelease { item }
            | Msg::InjectReq { item, .. }
            | Msg::InjectAccept { item, .. }
            | Msg::InjectData { item, .. }
            | Msg::InjectDone { item, .. }
            | Msg::PartnerUpdate { item, .. }
            | Msg::PartnerUpdateAck { item }
            | Msg::PreCommitMark { item, .. }
            | Msg::PreCommitMarkAck { item, .. } => *item,
        }
    }

    /// Short stable name of the message kind (tracing and diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::ReadReq { .. } => "ReadReq",
            Msg::WriteReq { .. } => "WriteReq",
            Msg::ReadFwd { .. } => "ReadFwd",
            Msg::WriteFwd { .. } => "WriteFwd",
            Msg::DataShared { .. } => "DataShared",
            Msg::DataExclusive { .. } => "DataExclusive",
            Msg::InitGrant { .. } => "InitGrant",
            Msg::Inval { .. } => "Inval",
            Msg::InvalCk { .. } => "InvalCk",
            Msg::InvalAck { .. } => "InvalAck",
            Msg::TxnDone { .. } => "TxnDone",
            Msg::OwnerUpdate { .. } => "OwnerUpdate",
            Msg::InjectLock { .. } => "InjectLock",
            Msg::InjectLockGrant { .. } => "InjectLockGrant",
            Msg::InjectLockRelease { .. } => "InjectLockRelease",
            Msg::InjectReq { .. } => "InjectReq",
            Msg::InjectAccept { .. } => "InjectAccept",
            Msg::InjectData { .. } => "InjectData",
            Msg::InjectDone { .. } => "InjectDone",
            Msg::PartnerUpdate { .. } => "PartnerUpdate",
            Msg::PartnerUpdateAck { .. } => "PartnerUpdateAck",
            Msg::PreCommitMark { .. } => "PreCommitMark",
            Msg::PreCommitMarkAck { .. } => "PreCommitMarkAck",
        }
    }

    /// Payload size in bytes (0 for header-only control messages).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Msg::DataShared { .. } | Msg::DataExclusive { .. } | Msg::InjectData { .. } => {
                ITEM_BYTES
            }
            _ => 0,
        }
    }

    /// Which leg of a memory transaction this message is, if any.
    ///
    /// Drives the per-phase latency decomposition and the causal span
    /// tree: a remote miss is requester → home ([`TxnLeg::DirLookup`]),
    /// optionally home → owner ([`TxnLeg::HomeFwd`]), then data or grant
    /// back to the requester ([`TxnLeg::DataReply`]). Invalidations,
    /// injections, checkpoint traffic and other side-band messages are
    /// not transaction legs and return `None`.
    pub fn txn_leg(&self) -> Option<TxnLeg> {
        match self {
            Msg::ReadReq { .. } | Msg::WriteReq { .. } => Some(TxnLeg::DirLookup),
            Msg::ReadFwd { .. } | Msg::WriteFwd { .. } => Some(TxnLeg::HomeFwd),
            Msg::DataShared { .. } | Msg::DataExclusive { .. } | Msg::InitGrant { .. } => {
                Some(TxnLeg::DataReply)
            }
            _ => None,
        }
    }

    /// The faulting node a request or forward acts for, when the message
    /// carries one. Data replies travel *to* the requester, so the
    /// receiver already knows it.
    pub fn requester(&self) -> Option<NodeId> {
        match self {
            Msg::ReadReq { requester, .. }
            | Msg::WriteReq { requester, .. }
            | Msg::ReadFwd { requester, .. }
            | Msg::WriteFwd { requester, .. } => Some(*requester),
            _ => None,
        }
    }

    /// Which sub-network this message travels on.
    pub fn class(&self) -> NetClass {
        match self {
            Msg::ReadReq { .. }
            | Msg::WriteReq { .. }
            | Msg::ReadFwd { .. }
            | Msg::WriteFwd { .. }
            | Msg::Inval { .. }
            | Msg::InvalCk { .. }
            | Msg::InjectLock { .. }
            | Msg::InjectReq { .. }
            | Msg::PreCommitMark { .. }
            | Msg::TxnDone { .. }
            | Msg::OwnerUpdate { .. }
            | Msg::InjectLockRelease { .. }
            | Msg::PartnerUpdate { .. } => NetClass::Request,
            Msg::DataShared { .. }
            | Msg::DataExclusive { .. }
            | Msg::InitGrant { .. }
            | Msg::InvalAck { .. }
            | Msg::InjectLockGrant { .. }
            | Msg::InjectAccept { .. }
            | Msg::InjectData { .. }
            | Msg::InjectDone { .. }
            | Msg::PartnerUpdateAck { .. }
            | Msg::PreCommitMarkAck { .. } => NetClass::Reply,
        }
    }
}

/// The phase of a memory transaction a coherence message implements.
///
/// See [`Msg::txn_leg`]. The names line up with the span phases in
/// `ftcoma_sim::span::SpanPhase`, which the machine maps them onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnLeg {
    /// Requester → home-node directory (ReadReq / WriteReq).
    DirLookup,
    /// Home directory → current owner (ReadFwd / WriteFwd).
    HomeFwd,
    /// Data or initial grant travelling back to the requester.
    DataReply,
}

/// A message queued for transmission by a protocol handler.
///
/// `delay` is node-local processing time charged before the message enters
/// the network (e.g. the 20-cycle remote-AM access before a data reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub msg: Msg,
    /// Node-local cycles before network injection.
    pub delay: u64,
}

impl Outgoing {
    /// A message leaving immediately.
    pub fn now(to: NodeId, msg: Msg) -> Self {
        Self { to, msg, delay: 0 }
    }

    /// A message leaving after `delay` local cycles.
    pub fn after(to: NodeId, msg: Msg, delay: u64) -> Self {
        Self { to, msg, delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> ItemId {
        ItemId::new(7)
    }

    #[test]
    fn data_messages_carry_an_item() {
        assert_eq!(
            Msg::DataShared {
                item: item(),
                value: 1
            }
            .payload_bytes(),
            128
        );
        assert_eq!(
            Msg::DataExclusive {
                item: item(),
                value: 1,
                acks_expected: 0
            }
            .payload_bytes(),
            128
        );
        assert_eq!(
            Msg::ReadReq {
                item: item(),
                requester: NodeId::new(0)
            }
            .payload_bytes(),
            0
        );
        assert_eq!(
            Msg::InitGrant {
                item: item(),
                state: ItemState::Exclusive
            }
            .payload_bytes(),
            0
        );
    }

    #[test]
    fn classes_separate_requests_from_replies() {
        assert_eq!(
            Msg::ReadReq {
                item: item(),
                requester: NodeId::new(0)
            }
            .class(),
            NetClass::Request
        );
        assert_eq!(
            Msg::DataShared {
                item: item(),
                value: 0
            }
            .class(),
            NetClass::Reply
        );
        assert_eq!(Msg::InvalAck { item: item() }.class(), NetClass::Reply);
        assert_eq!(
            Msg::Inval {
                item: item(),
                ack_to: NodeId::new(1)
            }
            .class(),
            NetClass::Request
        );
    }

    #[test]
    fn item_accessor_covers_all_variants() {
        let payload = ItemPayload {
            state: ItemState::InvCk1,
            value: 3,
            partner: Some(NodeId::new(2)),
            ckpt_gen: 1,
            sharers: vec![],
        };
        let msgs = vec![
            Msg::ReadReq {
                item: item(),
                requester: NodeId::new(0),
            },
            Msg::InjectData {
                item: item(),
                origin: NodeId::new(0),
                payload,
                cause: InjectCause::Replacement,
            },
            Msg::PreCommitMark {
                item: item(),
                origin: NodeId::new(1),
                ckpt_gen: 2,
            },
        ];
        for m in msgs {
            assert_eq!(m.item(), item());
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            Msg::ReadReq {
                item: item(),
                requester: NodeId::new(0)
            }
            .kind(),
            "ReadReq"
        );
        assert_eq!(Msg::TxnDone { item: item() }.kind(), "TxnDone");
    }

    #[test]
    fn txn_legs_cover_the_miss_path_only() {
        let req = Msg::ReadReq {
            item: item(),
            requester: NodeId::new(3),
        };
        assert_eq!(req.txn_leg(), Some(TxnLeg::DirLookup));
        assert_eq!(req.requester(), Some(NodeId::new(3)));
        assert_eq!(
            Msg::WriteFwd {
                item: item(),
                requester: NodeId::new(3)
            }
            .txn_leg(),
            Some(TxnLeg::HomeFwd)
        );
        assert_eq!(
            Msg::InitGrant {
                item: item(),
                state: ItemState::Exclusive
            }
            .txn_leg(),
            Some(TxnLeg::DataReply)
        );
        // Side-band traffic is not part of the transaction decomposition.
        assert_eq!(Msg::TxnDone { item: item() }.txn_leg(), None);
        assert_eq!(
            Msg::Inval {
                item: item(),
                ack_to: NodeId::new(1)
            }
            .txn_leg(),
            None
        );
        assert_eq!(Msg::InvalAck { item: item() }.requester(), None);
    }

    #[test]
    fn inject_cause_classification() {
        assert!(InjectCause::Replacement.is_move());
        assert!(!InjectCause::CkptReplication.is_move());
        assert!(InjectCause::ReadOnInvCk.on_read());
        assert!(InjectCause::WriteOnSharedCk.on_write());
        assert!(!InjectCause::Replacement.on_read());
        assert!(!InjectCause::Replacement.on_write());
    }
}
