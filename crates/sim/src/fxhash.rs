//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3 with a
//! per-process random key — robust against hash-flooding, but an order of
//! magnitude slower than needed for trusted, small integer keys (item,
//! page and node identifiers), and randomly seeded, which is the wrong
//! default for a simulator whose contract is bit-exact reproducibility.
//!
//! This module is an in-tree implementation of the well-known "Fx" hash
//! function (the byte-at-a-time multiply-and-rotate folding used by
//! Firefox and the Rust compiler), matching the repo's offline-build
//! policy: no external dependency, ~20 lines of arithmetic. It is *not*
//! DoS-resistant and must only be used for keys derived from simulation
//! state, never for untrusted input.
//!
//! # Example
//!
//! ```
//! use ftcoma_sim::fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "item");
//! assert_eq!(m.get(&42), Some(&"item"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (derived from the golden ratio, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx streaming hasher: folds each word into the state with a
/// rotate-xor-multiply. Deterministic across processes and platforms of
/// the same pointer width (we always fold through `u64`, so it is in fact
/// platform-independent here).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, no per-map random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher — drop-in for hot simulator maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        // No per-instance randomness: two maps hash identically.
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_ne!(hash_of(&12345u64), hash_of(&12346u64));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u16, u64), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as u16, i * 3), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i as u16, i * 3)), Some(&i));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7) && !s.contains(&8));
    }

    #[test]
    fn byte_stream_tail_handled() {
        // Chunked write path: 8-byte chunks plus a zero-padded tail.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn spreads_small_integers() {
        // Dense small keys must not collide in the low bits the map uses.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..64u64 {
            low_bits.insert(hash_of(&i) >> 57);
        }
        // 64 keys into 128 buckets: expect substantial spread.
        assert!(low_bits.len() > 16, "only {} distinct", low_bits.len());
    }
}
