//! Causal spans: typed, parent-linked time intervals.
//!
//! The paper's central measurements are *time decompositions* — where a
//! reference's latency goes (directory lookup, home forwarding, data
//! reply, network hops) and where recovery time goes after a fault
//! (detection, reconfiguration, rollback, re-execution). A [`SpanRecord`]
//! is one measured interval of such a phase; records link to a parent
//! span, so a remote miss becomes a small causal tree rooted at its
//! transaction span and a recovery becomes a tree rooted at the recovery
//! span.
//!
//! Collection follows the same discipline as the machine's trace ring:
//! a [`SpanLog`] with capacity 0 is a no-op sink (the zero-cost-when-
//! disabled invariant), a bounded one retains the **newest** closed spans
//! and evicts the oldest. Records are pushed when a span *closes*, so
//! eviction can never drop the most recent span-close events.
//!
//! # Example
//!
//! ```
//! use ftcoma_sim::span::{SpanLog, SpanPhase, SpanRecord};
//!
//! let mut log = SpanLog::new(16);
//! let txn = log.alloc_id();
//! let leg = log.alloc_id();
//! log.push(SpanRecord { id: leg, parent: txn, phase: SpanPhase::DirLookup,
//!                       node: 3, start: 100, end: 130 });
//! log.push(SpanRecord { id: txn, parent: 0, phase: SpanPhase::Transaction,
//!                       node: 0, start: 100, end: 216 });
//! assert_eq!(log.records().len(), 2);
//! assert_eq!(log.records()[1].duration(), 116);
//! ```

use std::collections::VecDeque;

use crate::Cycles;

/// Identifier of a span within one run. `0` means "no span" and is never
/// allocated; parent links use it for roots.
pub type SpanId = u64;

/// The typed phase a span measures.
///
/// The first group decomposes a memory transaction (a reference that
/// missed and stalled its processor); the second decomposes a recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// Root span of one stalled memory reference: processor stall to
    /// resume.
    Transaction,
    /// Request leg: requester → home-node directory (ReadReq/WriteReq in
    /// flight).
    DirLookup,
    /// Forwarded leg: home directory → current owner (ReadFwd/WriteFwd).
    HomeFwd,
    /// Data leg: data or grant travelling back to the requester.
    DataReply,
    /// One router-to-router hop of a message on the mesh.
    NetHop,
    /// Root span of one fault recovery: detection through replay.
    Recovery,
    /// Fault detection (zero-length under the fail-stop model).
    Detection,
    /// Global rollback to the last recovery point (per-node scans).
    Rollback,
    /// Directory reconfiguration and copy promotion after the rollback.
    Reconfiguration,
    /// Re-execution of the work lost between the recovery point and the
    /// fault, ending at the first post-recovery commit.
    Replay,
}

impl SpanPhase {
    /// Stable lowercase name used by every exporter.
    pub fn name(&self) -> &'static str {
        match self {
            SpanPhase::Transaction => "transaction",
            SpanPhase::DirLookup => "dir_lookup",
            SpanPhase::HomeFwd => "home_fwd",
            SpanPhase::DataReply => "data_reply",
            SpanPhase::NetHop => "net_hop",
            SpanPhase::Recovery => "recovery",
            SpanPhase::Detection => "detection",
            SpanPhase::Rollback => "rollback",
            SpanPhase::Reconfiguration => "reconfiguration",
            SpanPhase::Replay => "replay",
        }
    }

    /// Inverse of [`SpanPhase::name`].
    pub fn from_name(name: &str) -> Option<SpanPhase> {
        Some(match name {
            "transaction" => SpanPhase::Transaction,
            "dir_lookup" => SpanPhase::DirLookup,
            "home_fwd" => SpanPhase::HomeFwd,
            "data_reply" => SpanPhase::DataReply,
            "net_hop" => SpanPhase::NetHop,
            "recovery" => SpanPhase::Recovery,
            "detection" => SpanPhase::Detection,
            "rollback" => SpanPhase::Rollback,
            "reconfiguration" => SpanPhase::Reconfiguration,
            "replay" => SpanPhase::Replay,
            _ => return None,
        })
    }

    /// Does this phase belong to the recovery decomposition (rather than
    /// the transaction one)?
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            SpanPhase::Recovery
                | SpanPhase::Detection
                | SpanPhase::Rollback
                | SpanPhase::Reconfiguration
                | SpanPhase::Replay
        )
    }
}

impl std::fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One closed span: a measured interval with causal parentage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id (unique within a run, never 0).
    pub id: SpanId,
    /// Parent span id, or 0 for a root.
    pub parent: SpanId,
    /// What the interval measures.
    pub phase: SpanPhase,
    /// The node the phase executed on (for message legs: the receiver).
    pub node: u16,
    /// Interval start, in cycles.
    pub start: Cycles,
    /// Interval end, in cycles (`end >= start`).
    pub end: Cycles,
}

impl SpanRecord {
    /// Length of the interval in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// A bounded ring of closed spans.
///
/// Mirrors the machine's `TraceLog`: capacity 0 disables the sink
/// entirely (`push` is a no-op, [`SpanLog::enabled`] is false), a bounded
/// log evicts the *oldest* record when full. Because records are pushed
/// at close time, the newest span-close events always survive
/// wraparound.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    records: VecDeque<SpanRecord>,
    capacity: usize,
    next_id: SpanId,
}

impl SpanLog {
    /// Creates a log retaining at most `capacity` records (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_id: 0,
        }
    }

    /// Is the sink collecting at all?
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Allocates a fresh span id (1, 2, 3, ... within a run). Returns 0
    /// when the sink is disabled, so disabled runs allocate nothing and
    /// parent links stay inert.
    pub fn alloc_id(&mut self) -> SpanId {
        if self.capacity == 0 {
            return 0;
        }
        self.next_id += 1;
        self.next_id
    }

    /// Records a closed span, evicting the oldest record when full.
    /// No-op while disabled or for records of disabled allocations
    /// (`id == 0`).
    pub fn push(&mut self, record: SpanRecord) {
        if self.capacity == 0 || record.id == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }

    /// The retained records, oldest close first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.iter().copied().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: SpanId, end: Cycles) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            phase: SpanPhase::Transaction,
            node: 0,
            start: end.saturating_sub(10),
            end,
        }
    }

    #[test]
    fn disabled_log_is_inert() {
        let mut log = SpanLog::new(0);
        assert!(!log.enabled());
        assert_eq!(log.alloc_id(), 0);
        log.push(rec(1, 50));
        assert!(log.is_empty());
    }

    #[test]
    fn ids_are_dense_and_nonzero() {
        let mut log = SpanLog::new(4);
        assert_eq!(log.alloc_id(), 1);
        assert_eq!(log.alloc_id(), 2);
        assert_eq!(log.alloc_id(), 3);
    }

    #[test]
    fn records_with_zero_id_are_dropped() {
        // A span allocated while the sink was disabled must not be
        // recorded even if the record is pushed later.
        let mut log = SpanLog::new(4);
        log.push(rec(0, 10));
        assert!(log.is_empty());
    }

    /// Satellite regression: ring wraparound evicts the *oldest* closes;
    /// the newest span-close events are always retained.
    #[test]
    fn wraparound_keeps_newest_closes() {
        let mut log = SpanLog::new(3);
        for end in 1..=10u64 {
            let id = log.alloc_id();
            log.push(rec(id, end));
        }
        let kept = log.records();
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|r| r.end).collect::<Vec<_>>(),
            vec![8, 9, 10],
            "eviction must drop the oldest closes, never the newest"
        );
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in [
            SpanPhase::Transaction,
            SpanPhase::DirLookup,
            SpanPhase::HomeFwd,
            SpanPhase::DataReply,
            SpanPhase::NetHop,
            SpanPhase::Recovery,
            SpanPhase::Detection,
            SpanPhase::Rollback,
            SpanPhase::Reconfiguration,
            SpanPhase::Replay,
        ] {
            assert_eq!(SpanPhase::from_name(phase.name()), Some(phase));
        }
        assert_eq!(SpanPhase::from_name("bogus"), None);
        assert!(SpanPhase::Rollback.is_recovery());
        assert!(!SpanPhase::DataReply.is_recovery());
    }
}
