//! A small, dependency-free JSON document model with writer and parser.
//!
//! The observability layer exports metrics and traces as JSON (see
//! `ftcoma-machine`). The workspace builds offline with no external
//! crates, so instead of `serde`/`serde_json` this module provides the
//! minimal pieces the exporters and their round-trip tests need: an ordered
//! document model ([`Json`]), a compact and a pretty writer, and a strict
//! recursive-descent parser.
//!
//! Objects preserve insertion order so exported schemas are byte-stable
//! across runs — a requirement for the versioned metrics schema.
//!
//! # Example
//!
//! ```
//! use ftcoma_sim::json::Json;
//!
//! let doc = Json::obj([
//!     ("schema_version", Json::from(1u64)),
//!     ("name", Json::from("water")),
//!     ("rates", Json::arr([Json::from(0.5), Json::from(2.0)])),
//! ]);
//! let text = doc.to_string_compact();
//! assert_eq!(text, r#"{"schema_version":1,"name":"water","rates":[0.5,2]}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("schema_version").and_then(Json::as_u64), Some(1));
//! ```

use std::fmt::Write as _;

/// A JSON value. Objects keep their insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

/// A parse error with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up `key` in an object (`None` for other value kinds).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys in order (empty for other value kinds).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Serializes without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Numbers serialize as integers when they are one (the common case for
/// counters); non-finite values have no JSON encoding and become `null`.
fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral-plane
                            // characters as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text, "for {text}");
        }
    }

    #[test]
    fn preserves_object_order() {
        let doc = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(doc.to_string_compact(), r#"{"z":1,"a":2}"#);
        let back = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(back.keys(), vec!["z", "a"]);
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":true,"e":"x\ny"}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string_compact(), text);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""tab\tquote\"back\\slashA😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "tab\tquote\"back\\slashA\u{1F600}");
        // Control characters are re-escaped on output.
        let s = Json::Str("a\u{1}b".into()).to_string_compact();
        assert_eq!(s, "\"a\\u0001b\"");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::from(12u64).to_string_compact(), "12");
        assert_eq!(Json::from(2.5).to_string_compact(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a':1}",
        ] {
            assert!(Json::parse(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","b":false,"a":[1],"f":1.5}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("f").and_then(Json::as_u64),
            None,
            "1.5 is not an integer"
        );
        assert!(v.get("missing").is_none());
    }
}
