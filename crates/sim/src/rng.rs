//! Deterministic, splittable random-number generation.
//!
//! Every stochastic choice in the simulator (workload address streams,
//! injection victims, failure times) is drawn from a [`DetRng`] seeded from
//! the run configuration, so a run is a pure function of its configuration.
//! Per-node generators are derived with [`DetRng::split`] so adding a node
//! does not perturb the streams of the others.

/// SplitMix64 step, used to derive independent seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for stream `stream` of a root seed — the
/// seed-space analogue of [`DetRng::split`].
///
/// Deterministic and order-free: the derived seed depends only on
/// `(root, stream)`, never on how many other streams were derived or in
/// what order. Campaign runners use this to give every grid cell its own
/// reproducible RNG stream regardless of worker scheduling.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut s = root ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut s)
}

/// A deterministic random-number generator with cheap snapshot/restore.
///
/// Snapshotting matters: backward error recovery must replay a node's
/// reference stream from the last recovery point, which we implement by
/// saving the generator state at each checkpoint commit and restoring it at
/// rollback (see `ftcoma-workloads`).
///
/// # Example
///
/// ```
/// use ftcoma_sim::DetRng;
///
/// let mut a = DetRng::seeded(7);
/// let snap = a.snapshot();
/// let x: u64 = a.next_u64();
/// let mut b = DetRng::restore(&snap);
/// assert_eq!(b.next_u64(), x);
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

/// Opaque saved state of a [`DetRng`]; see [`DetRng::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngSnapshot(u64);

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        // Avoid the all-zero degenerate state.
        Self {
            state: seed ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Derives an independent generator for stream `stream`.
    ///
    /// Deterministic: the same `(self state, stream)` always yields the same
    /// child. The parent is not advanced.
    pub fn split(&self, stream: u64) -> DetRng {
        DetRng::seeded(derive_seed(self.state, stream))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiplicative range reduction (Lemire); bias is negligible for
        // simulation purposes and the method is branch-free and fast.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Precomputed-threshold form of [`chance`](Self::chance) for hot
    /// loops: `chance_with(threshold(p))` consumes the same single draw
    /// and returns the *bit-identical* decision as `chance(p)`, but
    /// compares integers instead of converting to `f64` every call.
    ///
    /// Exactness: `unit()` is exactly `k * 2^-53` with `k = x >> 11`, and
    /// `p * 2^53` is an exact exponent shift for any finite `p`, so
    /// `unit() < p  ⟺  k < ceil(p * 2^53)`.
    pub fn threshold(p: f64) -> u64 {
        (p.clamp(0.0, 1.0) * (1u64 << 53) as f64).ceil() as u64
    }

    /// See [`threshold`](Self::threshold).
    pub fn chance_with(&mut self, threshold: u64) -> bool {
        (self.next_u64() >> 11) < threshold
    }

    /// Precomputed-threshold form of [`geometric`](Self::geometric):
    /// consumes the same draws and returns the same value as
    /// `geometric(p, cap)` when `threshold == Self::threshold(p)`.
    pub fn geometric_with(&mut self, threshold: u64, cap: u64) -> u64 {
        let mut n = 0;
        while n < cap && !self.chance_with(threshold) {
            n += 1;
        }
        n
    }

    /// Saves the complete generator state.
    pub fn snapshot(&self) -> RngSnapshot {
        RngSnapshot(self.state)
    }

    /// Reconstructs a generator from a snapshot.
    pub fn restore(snap: &RngSnapshot) -> Self {
        Self { state: snap.0 }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples a point uniformly from the union of half-open windows
    /// `[lo, hi)`, each weighted by its width — the chaos fuzzer's
    /// injection-time sampler (bias failure times into checkpoint or
    /// recovery windows by listing only those). Empty or inverted windows
    /// contribute nothing; returns `None` when the union is empty.
    pub fn in_windows(&mut self, windows: &[(u64, u64)]) -> Option<u64> {
        let total: u64 = windows.iter().map(|&(lo, hi)| hi.saturating_sub(lo)).sum();
        if total == 0 {
            return None;
        }
        let mut k = self.below(total);
        for &(lo, hi) in windows {
            let w = hi.saturating_sub(lo);
            if k < w {
                return Some(lo + k);
            }
            k -= w;
        }
        unreachable!("k < total width")
    }

    /// Samples from a geometric-like distribution: number of failures before
    /// a success with probability `p`, capped at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `p <= 0` or `p > 1`.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// Samples an exponentially distributed interval with integer `mean`
    /// (in whatever unit the caller uses — the failure processes use
    /// cycles), by inverse CDF: `⌊-mean · ln U⌋` with `U` uniform in
    /// `(0, 1]`.
    ///
    /// Integer-safe like [`chance_with`](Self::chance_with): `U` is the
    /// exact dyadic `(k+1) · 2⁻⁵³` from a single draw, and `ln` is
    /// evaluated by [`ln_unit`], an in-crate routine built only from
    /// exactly-rounded IEEE primitives (`+ - * /`) — never `f64::ln`,
    /// whose libm implementation varies across platforms — so a sampled
    /// failure/repair schedule is bit-identical everywhere. Always
    /// consumes exactly one draw; `mean == 0` returns 0 (still one draw,
    /// so disabling a process never shifts sibling streams).
    ///
    /// The result is bounded: at the smallest `U`, `-ln U < 37`, so the
    /// sample never exceeds `37 · mean` (no unbounded tail blow-up in an
    /// event calendar).
    pub fn exp_with(&mut self, mean: u64) -> u64 {
        let draw = self.next_u64() >> 11; // 53 uniform bits
        if mean == 0 {
            return 0;
        }
        let u = (draw + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        (-ln_unit(u) * mean as f64) as u64
    }
}

/// Deterministic `ln x` for `x ∈ (0, 1]`, from exactly-rounded IEEE
/// primitives only (see [`DetRng::exp_with`]).
///
/// Decomposes `x = m · 2ᵉ` with `m ∈ [1, 2)` from the bit pattern, then
/// evaluates `ln m = 2·atanh t` with `t = (m-1)/(m+1) ≤ 1/3` by its odd
/// power series — 14 terms reach full `f64` precision at `t = 1/3`.
fn ln_unit(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0, "ln_unit domain: {x}");
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7FF) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = 0.0;
    let mut k = 1.0;
    for _ in 0..14 {
        sum += term / k;
        term *= t2;
        k += 2.0;
    }
    e as f64 * core::f64::consts::LN_2 + 2.0 * sum
}

impl DetRng {
    /// Returns the next 32 random bits (the high half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(1);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent_of_sibling_draws() {
        let root = DetRng::seeded(99);
        let mut c0 = root.split(0);
        let c0_first = c0.next_u64();
        // Splitting more children does not perturb child 0's stream.
        let root2 = DetRng::seeded(99);
        let _c1 = root2.split(1);
        let mut c0_again = root2.split(0);
        assert_eq!(c0_again.next_u64(), c0_first);
    }

    #[test]
    fn derive_seed_is_stable_and_stream_sensitive() {
        // Pure function of (root, stream).
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        // Distinct streams and distinct roots give distinct seeds.
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
        // `split` is the generator-space view of the same derivation.
        let root = DetRng::seeded(9);
        let mut via_split = root.split(3);
        let mut via_seed = DetRng::seeded(derive_seed(root.snapshot().0, 3));
        assert_eq!(via_split.next_u64(), via_seed.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seeded(3);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let mut r = DetRng::seeded(5);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut r = DetRng::seeded(11);
        for _ in 0..10 {
            r.next_u64();
        }
        let snap = r.snapshot();
        let tail: Vec<u64> = (0..20).map(|_| r.next_u64()).collect();
        let mut r2 = DetRng::restore(&snap);
        let tail2: Vec<u64> = (0..20).map(|_| r2.next_u64()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seeded(13);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0 + 1e-9));
        }
    }

    #[test]
    fn threshold_forms_are_bit_identical_to_float_forms() {
        // The workload generators rely on chance_with/geometric_with
        // consuming the same draws and producing the same decisions as
        // chance/geometric — any divergence silently changes every
        // reference stream. Sweep awkward probabilities, including exact
        // dyadics, near-0/1 values, and 10k random ones.
        let mut ps: Vec<f64> = vec![
            0.0,
            1.0,
            0.5,
            0.25,
            1.0 / 3.0,
            0.3,
            0.55,
            1e-12,
            1.0 - 1e-12,
        ];
        let mut pr = DetRng::seeded(99);
        ps.extend((0..10_000).map(|_| pr.unit()));
        for p in ps {
            let t = DetRng::threshold(p);
            let mut a = DetRng::seeded(41);
            let mut b = a.clone();
            for _ in 0..50 {
                assert_eq!(a.chance(p), b.chance_with(t), "p = {p}");
            }
            if p > 0.0 {
                let mut a = DetRng::seeded(43);
                let mut b = a.clone();
                for _ in 0..20 {
                    assert_eq!(
                        a.geometric(p, 10_000),
                        b.geometric_with(t, 10_000),
                        "p = {p}"
                    );
                    assert_eq!(
                        a.snapshot(),
                        b.snapshot(),
                        "draw counts diverged at p = {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn ln_unit_matches_libm_to_full_precision() {
        // The in-crate ln must agree with the platform libm to ~1 ulp on
        // the whole (0, 1] domain exp_with draws from — the point of
        // rolling our own is cross-platform bit-stability, not a
        // different function.
        let mut r = DetRng::seeded(71);
        let mut xs: Vec<f64> = vec![1.0, 0.5, 0.25, 1.0 / (1u64 << 53) as f64];
        xs.extend(
            (0..10_000)
                .map(|_| (r.next_u64() >> 11).wrapping_add(1) as f64 * (1.0 / (1u64 << 53) as f64)),
        );
        for x in xs {
            let got = ln_unit(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                "ln({x}) = {got}, libm {want}"
            );
        }
    }

    #[test]
    fn exp_with_is_deterministic_and_has_the_right_mean() {
        // One draw per sample, identical across generators with the same
        // seed — the continuous failure processes schedule from this.
        let mut a = DetRng::seeded(31);
        let mut b = DetRng::seeded(31);
        for _ in 0..1000 {
            assert_eq!(a.exp_with(50_000), b.exp_with(50_000));
            assert_eq!(a.snapshot(), b.snapshot());
        }
        // mean == 0 is a disabled process: returns 0 but still consumes
        // exactly one draw, so sibling streams never shift.
        let mut c = DetRng::seeded(31);
        let mut d = DetRng::seeded(31);
        assert_eq!(c.exp_with(0), 0);
        d.next_u64();
        assert_eq!(c.snapshot(), d.snapshot());
        // Sample mean within 5% of the requested mean, and bounded tail.
        let mut r = DetRng::seeded(37);
        let mean = 100_000u64;
        let n = 20_000u64;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = r.exp_with(mean);
            assert!(x <= 37 * mean, "tail blow-up: {x}");
            sum += x;
        }
        let got = sum as f64 / n as f64;
        assert!(
            (got - mean as f64).abs() < 0.05 * mean as f64,
            "sample mean {got}"
        );
    }

    #[test]
    fn in_windows_respects_bounds_and_weights() {
        let mut r = DetRng::seeded(23);
        let windows = [(10, 20), (50, 50), (100, 1100)];
        let mut low = 0u64;
        for _ in 0..2000 {
            let x = r.in_windows(&windows).unwrap();
            assert!((10..20).contains(&x) || (100..1100).contains(&x), "{x}");
            if x < 20 {
                low += 1;
            }
        }
        // The 10-wide window gets ~1% of the 1010 total width.
        assert!(low < 100, "low window over-sampled: {low}");
        assert_eq!(r.in_windows(&[]), None);
        assert_eq!(r.in_windows(&[(7, 7), (9, 3)]), None);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seeded(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
