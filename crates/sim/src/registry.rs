//! A lightweight metrics registry: named counter and gauge series with
//! optional labels.
//!
//! The exporters in `ftcoma-machine` flatten the strongly-typed
//! [`RunMetrics`](../../ftcoma_machine/metrics/struct.RunMetrics.html)
//! into a registry so every series — machine-wide, per-node, per-link —
//! travels through one uniform, order-stable representation on its way to
//! JSON or text. Series are keyed by `(name, labels)` and iterate in
//! lexicographic order, so exports are deterministic.
//!
//! # Example
//!
//! ```
//! use ftcoma_sim::registry::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter_add("refs", &[], 100);
//! reg.counter_add("refs", &[("node", "3")], 25);
//! reg.gauge_set("miss_rate", &[], 0.125);
//! assert_eq!(reg.counter("refs", &[]), Some(100));
//! assert_eq!(reg.counter("refs", &[("node", "3")]), Some(25));
//! ```

use std::collections::BTreeMap;

use crate::json::Json;

/// A series key: metric name plus sorted `label=value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// Metric name, e.g. `"injections_total"`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a key, sorting the labels for a canonical form.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

impl std::fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// Counter and gauge series, keyed by name + labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to a counter series, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .counters
            .entry(SeriesKey::new(name, labels))
            .or_insert(0) += v;
    }

    /// Increments a counter series by one.
    pub fn counter_inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Sets a gauge series to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(SeriesKey::new(name, labels), v);
    }

    /// Reads a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&SeriesKey::new(name, labels)).copied()
    }

    /// Reads a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    /// All counter series in lexicographic key order.
    pub fn counters(&self) -> impl Iterator<Item = (&SeriesKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// All gauge series in lexicographic key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&SeriesKey, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Number of series (counters + gauges).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Serializes every series as a JSON array of
    /// `{"name", "labels", "value"}` objects, counters first, each group in
    /// key order.
    ///
    /// The order is a **pinned contract**: counters before gauges, and
    /// within each group lexicographic `SeriesKey` order — name first,
    /// then the (already canonically sorted) label pairs. Series are
    /// stored in `BTreeMap`s keyed by [`SeriesKey`], so the export can
    /// never depend on any hash map's iteration order (the in-tree
    /// `FxHash` tables make no ordering promise across versions).
    pub fn to_json(&self) -> Json {
        fn series(key: &SeriesKey, kind: &str, value: Json) -> Json {
            Json::obj([
                ("name", Json::from(key.name.as_str())),
                ("kind", Json::from(kind)),
                (
                    "labels",
                    Json::Obj(
                        key.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                            .collect(),
                    ),
                ),
                ("value", value),
            ])
        }
        Json::arr(
            self.counters
                .iter()
                .map(|(k, &v)| series(k, "counter", Json::from(v)))
                .chain(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| series(k, "gauge", Json::from(v))),
                ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut reg = MetricsRegistry::new();
        reg.counter_inc("msgs", &[]);
        reg.counter_add("msgs", &[], 2);
        reg.counter_add("msgs", &[("node", "1")], 5);
        assert_eq!(reg.counter("msgs", &[]), Some(3));
        assert_eq!(reg.counter("msgs", &[("node", "1")]), Some(5));
        assert_eq!(reg.counter("msgs", &[("node", "2")]), None);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x", &[("b", "2"), ("a", "1")], 7);
        assert_eq!(reg.counter("x", &[("a", "1"), ("b", "2")]), Some(7));
        let key = SeriesKey::new("x", &[("b", "2"), ("a", "1")]);
        assert_eq!(key.to_string(), "x{a=1,b=2}");
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("rate", &[], 0.5);
        reg.gauge_set("rate", &[], 0.75);
        assert_eq!(reg.gauge("rate", &[]), Some(0.75));
    }

    /// Satellite regression: the JSON export order is a pure function of
    /// the series keys — independent of insertion order, including among
    /// series that share a name and differ only in labels. A change that
    /// routed series through a hash map would shuffle this and break
    /// byte-identical reports.
    #[test]
    fn json_export_order_is_insertion_order_independent() {
        let build = |perm: &[usize]| {
            let entries: Vec<(&str, Vec<(&str, &str)>)> = vec![
                ("refs", vec![("node", "10")]),
                ("refs", vec![]),
                ("refs", vec![("node", "2")]),
                ("aaa", vec![("z", "1"), ("a", "9")]),
                ("refs", vec![("node", "2"), ("kind", "read")]),
                ("zzz", vec![]),
            ];
            let mut reg = MetricsRegistry::new();
            for &i in perm {
                let (name, labels) = &entries[i];
                reg.counter_add(name, labels, i as u64 + 1);
                reg.gauge_set(name, labels, i as f64);
            }
            reg.to_json().to_string_compact()
        };
        let a = build(&[0, 1, 2, 3, 4, 5]);
        let b = build(&[5, 3, 1, 4, 2, 0]);
        let c = build(&[2, 4, 0, 5, 1, 3]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // And the order really is lexicographic by (name, labels):
        // unlabelled series sort before labelled ones of the same name,
        // label *values* compare as strings ("10" < "2").
        let doc = Json::parse(&a).unwrap();
        let keys: Vec<String> = doc
            .as_array()
            .unwrap()
            .iter()
            .map(|s| {
                format!(
                    "{}{}",
                    s.get("name").and_then(|v| v.as_str()).unwrap(),
                    s.get("labels").unwrap().to_string_compact()
                )
            })
            .collect();
        let expected = [
            r#"aaa{"a":"9","z":"1"}"#,
            r#"refs{}"#,
            r#"refs{"kind":"read","node":"2"}"#,
            r#"refs{"node":"10"}"#,
            r#"refs{"node":"2"}"#,
            r#"zzz{}"#,
        ];
        assert_eq!(keys[..6], expected, "counters out of key order");
        assert_eq!(keys[6..], expected, "gauges out of key order");
    }

    #[test]
    fn json_export_is_ordered_and_typed() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("b_gauge", &[], 1.5);
        reg.counter_add("a_counter", &[("node", "0")], 1);
        let json = reg.to_json();
        let items = json.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0].get("name").and_then(|v| v.as_str()),
            Some("a_counter")
        );
        assert_eq!(
            items[0].get("kind").and_then(|v| v.as_str()),
            Some("counter")
        );
        assert_eq!(
            items[0]
                .get("labels")
                .and_then(|l| l.get("node"))
                .and_then(|v| v.as_str()),
            Some("0")
        );
        assert_eq!(items[1].get("value").and_then(|v| v.as_f64()), Some(1.5));
    }
}
