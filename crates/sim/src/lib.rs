//! Discrete-event simulation kernel for the ft-coma simulator suite.
//!
//! The paper evaluates the Extended Coherence Protocol with an
//! execution-driven simulator built on the SPAM kernel and a CSIM-style
//! discrete-event library. This crate is our equivalent substrate: a small,
//! deterministic, single-threaded discrete-event kernel plus the utilities
//! every other crate needs:
//!
//! * [`EventQueue`] — a time-ordered event calendar with deterministic
//!   FIFO tie-breaking, the heart of the simulator;
//! * [`Clock`] — cycle/wall-clock conversions for the 20 MHz machine;
//! * [`rng`] — seeded, splittable random-number generation so that every
//!   simulation run is exactly reproducible;
//! * [`stats`] — counters, ratios and running statistics used by the
//!   metrics collection in `ftcoma-machine`;
//! * [`span`] — causal span records (typed phases, parent links) for the
//!   transaction- and recovery-time decompositions.
//!
//! # Example
//!
//! ```
//! use ftcoma_sim::EventQueue;
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_in(10, "b");
//! q.schedule_in(5, "a");
//! q.schedule_in(10, "c"); // same time as "b": FIFO order preserved
//!
//! assert_eq!(q.pop(), Some((5, "a")));
//! assert_eq!(q.pop(), Some((10, "b")));
//! assert_eq!(q.pop(), Some((10, "c")));
//! assert_eq!(q.pop(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
pub mod json;
pub mod queue;
pub mod registry;
pub mod rng;
pub mod span;
pub mod stats;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::Json;
pub use queue::EventQueue;
pub use registry::MetricsRegistry;
pub use rng::{derive_seed, DetRng};

/// Simulation time, measured in processor clock cycles.
///
/// The simulated machine follows the KSR1 parameters of the paper: a 20 MHz
/// clock, so one cycle is 50 ns. Use [`Clock`] to convert to wall-clock
/// quantities such as "recovery points per second".
pub type Cycles = u64;

/// Converts between simulated cycles and wall-clock time.
///
/// # Example
///
/// ```
/// use ftcoma_sim::Clock;
///
/// let clock = Clock::ksr1();
/// // 400 recovery points per second on a 20 MHz machine: one every 50k cycles.
/// assert_eq!(clock.period_for_rate_hz(400.0), 50_000);
/// assert!((clock.cycles_to_secs(20_000_000) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    hz: f64,
}

impl Clock {
    /// Creates a clock with the given frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    pub fn new(hz: f64) -> Self {
        assert!(
            hz.is_finite() && hz > 0.0,
            "clock frequency must be positive"
        );
        Self { hz }
    }

    /// The 20 MHz clock of the simulated KSR1-like node used in the paper.
    pub fn ksr1() -> Self {
        Self::new(20_000_000.0)
    }

    /// Clock frequency in hertz.
    pub fn hz(&self) -> f64 {
        self.hz
    }

    /// Converts a cycle count to seconds of simulated time.
    pub fn cycles_to_secs(&self, cycles: Cycles) -> f64 {
        cycles as f64 / self.hz
    }

    /// Converts seconds of simulated time to (rounded) cycles.
    pub fn secs_to_cycles(&self, secs: f64) -> Cycles {
        (secs * self.hz).round() as Cycles
    }

    /// Cycle period of an event recurring `rate_hz` times per simulated
    /// second — e.g. the recovery-point establishment period.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn period_for_rate_hz(&self, rate_hz: f64) -> Cycles {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "rate must be positive"
        );
        (self.hz / rate_hz).round() as Cycles
    }

    /// Throughput in bytes per simulated second given `bytes` moved over
    /// `cycles` cycles. Returns 0.0 when `cycles == 0`.
    pub fn bytes_per_sec(&self, bytes: u64, cycles: Cycles) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            bytes as f64 / self.cycles_to_secs(cycles)
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::ksr1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_rate_round_trip() {
        let c = Clock::ksr1();
        assert_eq!(c.period_for_rate_hz(5.0), 4_000_000);
        assert_eq!(c.period_for_rate_hz(400.0), 50_000);
        assert_eq!(c.secs_to_cycles(c.cycles_to_secs(123_456)), 123_456);
    }

    #[test]
    fn clock_throughput() {
        let c = Clock::ksr1();
        // 1 MB over one simulated second.
        let bps = c.bytes_per_sec(1_000_000, 20_000_000);
        assert!((bps - 1_000_000.0).abs() < 1e-6);
        assert_eq!(c.bytes_per_sec(10, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn clock_rejects_zero() {
        let _ = Clock::new(0.0);
    }
}
