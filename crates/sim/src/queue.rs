//! Time-ordered event calendar with deterministic tie-breaking.
//!
//! The calendar is the hottest data structure of the simulator: every
//! protocol message, processor issue and timer passes through it once.
//! It is organised as a *bucketed calendar queue* (Brown, CACM 1988):
//!
//! * a ring of [`LANES`] per-cycle FIFO lanes covers the near future
//!   `[now, now + LANES)` — almost every event lands here, because
//!   protocol delays are small constants (see `ftcoma-protocol`'s
//!   `MemTiming` and the mesh latencies: tens to low hundreds of cycles);
//! * a conventional binary min-heap holds the far future (checkpoint
//!   timers, transport retransmission timeouts, scheduled faults).
//!
//! Because the ring spans exactly `LANES` cycles, each lane can only ever
//! hold events of a *single* cycle at a time, so plain FIFO push/pop per
//! lane preserves the global `(at, seq)` order exactly. The far heap keys
//! on `(at, seq)` too, and [`EventQueue::pop`] takes whichever of the two
//! is globally smallest — the delivery order is therefore byte-for-byte
//! identical to the previous pure-heap implementation (pinned by a
//! differential fuzz test against [`legacy::LegacyEventQueue`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycles;

/// Number of per-cycle lanes in the near-future ring (power of two).
///
/// Chosen to cover every constant protocol delay (remote misses are
/// ~108–124 cycles, injection hops and acks far less) plus typical
/// contention-induced slack; longer delays (checkpoint periods of
/// 50k+ cycles, transport RTOs of 1000+) spill to the far heap.
const LANES: usize = 1024;
const LANE_MASK: u64 = LANES as u64 - 1;

/// First sequence number of the *main* band: events scheduled after
/// [`EventQueue::seal`]. Construction-time and fork-time events live in
/// the pre band `[0, MAIN_SEQ_BASE)`, so a fault scheduled into a resumed
/// snapshot ties exactly like one scheduled before the run started.
const MAIN_SEQ_BASE: u64 = 1 << 63;

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the same cycle are delivered in the order they were scheduled (FIFO).
/// This determinism is what makes paired standard/ECP simulations with the
/// same seed directly comparable, as the paper's methodology requires.
///
/// The queue tracks the current simulation time: [`EventQueue::now`] is the
/// timestamp of the most recently popped event.
///
/// # Example
///
/// ```
/// use ftcoma_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(3, 'x');
/// q.schedule_in(1, 'y'); // at now (0) + 1
/// assert_eq!(q.pop(), Some((1, 'y')));
/// assert_eq!(q.now(), 1);
/// assert_eq!(q.pop(), Some((3, 'x')));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future ring: lane `at & LANE_MASK` holds the FIFO of cycle
    /// `at` for every `at` in `[now, now + LANES)`. Entries are
    /// `(seq, event)`; the cycle is implied by the scan position.
    lanes: Vec<VecDeque<(u64, E)>>,
    /// Total events currently in the lanes.
    near_count: usize,
    /// Far future (`at - now >= LANES` at schedule time), keyed `(at, seq)`.
    far: BinaryHeap<Reverse<Entry<E>>>,
    /// All lanes for cycles in `[now, scan_floor)` are known empty — a
    /// cache that makes consecutive pops amortised O(1) instead of
    /// rescanning the same empty prefix of the ring.
    scan_floor: Cycles,
    /// Sequence counter for the pre band `[0, MAIN_SEQ_BASE)`: events
    /// scheduled before [`EventQueue::seal`] and via
    /// [`EventQueue::schedule_pre`] afterwards. Run-time scheduling never
    /// touches this counter, so a fork and a straight run hand identical
    /// pre seqs to scenario-injected events.
    pre_seq: u64,
    /// Sequence counter for the main band `[MAIN_SEQ_BASE, ..)`: events
    /// scheduled by the running simulation itself.
    main_seq: u64,
    /// Set by the first [`EventQueue::seal`]; routes plain `schedule`
    /// calls to the main band from then on.
    sealed: bool,
    now: Cycles,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            lanes: (0..LANES).map(|_| VecDeque::new()).collect(),
            near_count: 0,
            far: BinaryHeap::new(),
            scan_floor: 0,
            pre_seq: 0,
            main_seq: MAIN_SEQ_BASE,
            sealed: false,
            now: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_count + self.far.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.near_count == 0 && self.far.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`): delivering events
    /// out of order would silently corrupt the simulation.
    pub fn schedule(&mut self, at: Cycles, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let seq = if self.sealed {
            self.main_seq += 1;
            self.main_seq - 1
        } else {
            self.pre_seq += 1;
            self.pre_seq - 1
        };
        if at - self.now < LANES as u64 {
            self.lanes[(at & LANE_MASK) as usize].push_back((seq, event));
            self.near_count += 1;
            self.scan_floor = self.scan_floor.min(at);
        } else {
            self.far.push(Reverse(Entry { at, seq, event }));
        }
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` in the *pre* band regardless of sealing: the
    /// event ties with (and among) construction-time events, never with
    /// run-time ones. Scenario injection into a resumed snapshot uses
    /// this so a forked run pops faults in exactly the order a straight
    /// run would have.
    ///
    /// # Panics
    ///
    /// Panics if `at < self.now()`, like [`EventQueue::schedule`].
    pub fn schedule_pre(&mut self, at: Cycles, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let seq = self.pre_seq;
        self.pre_seq += 1;
        if at - self.now < LANES as u64 {
            // The lane may already hold main-band entries for this cycle;
            // keep it sorted by seq so the front stays the minimum.
            let lane = &mut self.lanes[(at & LANE_MASK) as usize];
            let pos = lane.partition_point(|(s, _)| *s < seq);
            lane.insert(pos, (seq, event));
            self.near_count += 1;
            self.scan_floor = self.scan_floor.min(at);
        } else {
            self.far.push(Reverse(Entry { at, seq, event }));
        }
    }

    /// Seals the pre band: subsequent [`EventQueue::schedule`] calls
    /// allocate from the main band. Idempotent; the run loop calls it
    /// once before popping the first event.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Cycle of the earliest non-empty lane, bounded by `bound` (the far
    /// heap's head, if any): scanning past `bound` is pointless because
    /// the far event would win anyway. Advances the scan floor over the
    /// verified-empty prefix.
    fn earliest_near(&mut self, bound: Option<Cycles>) -> Option<Cycles> {
        if self.near_count == 0 {
            return None;
        }
        let mut c = self.scan_floor.max(self.now);
        let limit = self.now + LANES as u64;
        while c < limit {
            if bound.is_some_and(|b| b < c) {
                break;
            }
            if !self.lanes[(c & LANE_MASK) as usize].is_empty() {
                self.scan_floor = c;
                return Some(c);
            }
            c += 1;
        }
        self.scan_floor = c;
        None
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the calendar is empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let far_at = self.far.peek().map(|Reverse(e)| (e.at, e.seq));
        let near_at = self.earliest_near(far_at.map(|(at, _)| at));
        // Ties on the cycle resolve by seq: the lane front holds the
        // smallest seq of its cycle.
        let near_wins = match (near_at, far_at) {
            (Some(n), Some((f, f_seq))) => {
                n < f || (n == f && self.lanes[(n & LANE_MASK) as usize][0].0 < f_seq)
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if near_wins {
            let at = near_at.expect("near side has an event");
            let (_, event) = self.lanes[(at & LANE_MASK) as usize]
                .pop_front()
                .expect("scanned lane is non-empty");
            self.near_count -= 1;
            debug_assert!(at >= self.now);
            self.now = at;
            Some((at, event))
        } else {
            let Reverse(e) = self.far.pop().expect("far side has an event");
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            Some((e.at, e.event))
        }
    }

    /// Timestamp of the next pending event, if any, without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        let far_at = self.far.peek().map(|Reverse(e)| e.at);
        if self.near_count > 0 {
            let mut c = self.scan_floor.max(self.now);
            let limit = self.now + LANES as u64;
            while c < limit {
                if far_at.is_some_and(|b| b < c) {
                    break;
                }
                if !self.lanes[(c & LANE_MASK) as usize].is_empty() {
                    return Some(match far_at {
                        Some(f) => f.min(c),
                        None => c,
                    });
                }
                c += 1;
            }
        }
        far_at
    }

    /// Drops every pending event, leaving the clock unchanged.
    ///
    /// Used when a global rollback discards all in-flight protocol activity.
    pub fn clear(&mut self) {
        if self.near_count > 0 {
            for lane in &mut self.lanes {
                lane.clear();
            }
            self.near_count = 0;
        }
        self.far.clear();
        self.scan_floor = self.now;
    }

    /// Drops pending events that do not satisfy `keep`, leaving the clock
    /// unchanged. Relative order of surviving events is preserved: lanes
    /// filter in place FIFO-stably, and the far heap's `(at, seq)` keys
    /// are untouched, so re-heapification cannot reorder deliveries.
    pub fn retain(&mut self, mut keep: impl FnMut(&E) -> bool) {
        if self.near_count > 0 {
            let mut kept = 0;
            for lane in &mut self.lanes {
                lane.retain(|(_, e)| keep(e));
                kept += lane.len();
            }
            self.near_count = kept;
        }
        self.far.retain(|Reverse(e)| keep(&e.event));
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The previous pure-binary-heap calendar, kept compiled under `cfg(test)`
/// as the differential-testing oracle: the bucketed queue must reproduce
/// its `(at, seq)` delivery order exactly, byte for byte.
#[cfg(test)]
pub(crate) mod legacy {
    use super::{Cycles, Entry, Reverse};
    use std::collections::BinaryHeap;

    #[derive(Debug)]
    pub(crate) struct LegacyEventQueue<E> {
        heap: BinaryHeap<Reverse<Entry<E>>>,
        seq: u64,
        now: Cycles,
    }

    impl<E> LegacyEventQueue<E> {
        pub(crate) fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                seq: 0,
                now: 0,
            }
        }

        pub(crate) fn now(&self) -> Cycles {
            self.now
        }

        pub(crate) fn len(&self) -> usize {
            self.heap.len()
        }

        pub(crate) fn schedule(&mut self, at: Cycles, event: E) {
            assert!(at >= self.now, "event scheduled in the past");
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry { at, seq, event }));
        }

        pub(crate) fn pop(&mut self) -> Option<(Cycles, E)> {
            let Reverse(e) = self.heap.pop()?;
            self.now = e.at;
            Some((e.at, e.event))
        }

        pub(crate) fn peek_time(&self) -> Option<Cycles> {
            self.heap.peek().map(|Reverse(e)| e.at)
        }

        pub(crate) fn clear(&mut self) {
            self.heap.clear();
        }

        pub(crate) fn retain(&mut self, mut keep: impl FnMut(&E) -> bool) {
            let old = std::mem::take(&mut self.heap);
            self.heap = old
                .into_iter()
                .filter(|Reverse(e)| keep(&e.event))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::legacy::LegacyEventQueue;
    use super::*;
    use crate::DetRng;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        q.schedule(5, ());
        q.schedule(9, ());
        let mut last = 0;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn retain_filters_and_preserves_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(i % 3, i);
        }
        q.retain(|&i| i % 2 == 0);
        let mut seen = Vec::new();
        while let Some((_, i)) = q.pop() {
            seen.push(i);
        }
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop(), Some((42, ())));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn near_and_far_events_interleave_in_order() {
        let mut q = EventQueue::new();
        // Far event first (gets the smaller seq)...
        q.schedule(LANES as u64 * 3, 'f');
        q.schedule(5, 'n');
        assert_eq!(q.pop(), Some((5, 'n')));
        // ...then a near event at the *same* cycle as the far one, which
        // must lose the tie on seq.
        q.schedule(LANES as u64 * 3, 'g');
        assert_eq!(q.pop(), Some((LANES as u64 * 3, 'f')));
        assert_eq!(q.pop(), Some((LANES as u64 * 3, 'g')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lane_wraparound_keeps_single_cycle_per_lane() {
        let mut q = EventQueue::new();
        // Event at the very edge of the window, then advance time past it
        // and schedule into the same lane's next wrap.
        q.schedule(LANES as u64 - 1, 'a');
        assert_eq!(q.pop(), Some((LANES as u64 - 1, 'a')));
        q.schedule(2 * LANES as u64 - 1, 'b'); // same lane index, next wrap
        q.schedule(LANES as u64, 'c');
        assert_eq!(q.pop(), Some((LANES as u64, 'c')));
        assert_eq!(q.pop(), Some((2 * LANES as u64 - 1, 'b')));
    }

    #[test]
    fn peek_time_agrees_between_near_and_far() {
        let mut q = EventQueue::new();
        q.schedule(LANES as u64 + 50, 'f');
        assert_eq!(q.peek_time(), Some(LANES as u64 + 50));
        q.schedule(3, 'n');
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(LANES as u64 + 50));
    }

    /// Satellite regression: `retain` must never reorder surviving
    /// same-cycle events (rollback determinism depends on it). Property
    /// test over random schedules and predicates.
    #[test]
    fn retain_preserves_same_cycle_order_property() {
        let mut rng = DetRng::seeded(0x5EED_0001);
        for _ in 0..200 {
            let mut q = EventQueue::new();
            let mut expect: Vec<(Cycles, u32)> = Vec::new();
            let base = rng.below(1000);
            for id in 0..rng.below(200) as u32 {
                // Mix of near, window-edge and far timestamps.
                let at = base
                    + match rng.below(4) {
                        0 => rng.below(8),
                        1 => rng.below(LANES as u64),
                        2 => LANES as u64 - 1 + rng.below(3),
                        _ => LANES as u64 * (1 + rng.below(4)),
                    };
                q.schedule(at, id);
                expect.push((at, id));
            }
            let modulus = 2 + rng.below(5) as u32;
            q.retain(|&id| id % modulus != 0);
            expect.retain(|&(_, id)| id % modulus != 0);
            // Stable sort by time only: same-cycle events must keep their
            // original (schedule) order.
            expect.sort_by_key(|&(at, _)| at);
            let drained: Vec<(Cycles, u32)> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(drained, expect);
        }
    }

    #[test]
    fn pre_band_events_pop_before_main_band_at_same_cycle() {
        let mut q = EventQueue::new();
        q.schedule(10, 'a'); // pre band (unsealed)
        q.seal();
        q.schedule(10, 'b'); // main band
        q.schedule_pre(10, 'c'); // pre band, sorted into the occupied lane
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 'a'), (10, 'c'), (10, 'b')]);
    }

    #[test]
    fn schedule_pre_ties_like_construction_time_scheduling() {
        // A straight run schedules both faults before sealing; a forked
        // run schedules them via `schedule_pre` after sealing, possibly
        // after main-band events already landed at the same cycle. Both
        // must deliver the faults first, in schedule order.
        let far = LANES as u64 * 5;
        let mut straight = EventQueue::new();
        straight.schedule(far, 'x');
        straight.schedule(far, 'y');
        straight.seal();
        let drained: Vec<_> = std::iter::from_fn(|| straight.pop()).collect();
        assert_eq!(drained, vec![(far, 'x'), (far, 'y')]);

        let mut forked = EventQueue::new();
        forked.seal();
        forked.schedule(far, 'm'); // main-band noise at the same cycle
        forked.schedule_pre(far, 'x');
        forked.schedule_pre(far, 'y');
        assert_eq!(forked.pop(), Some((far, 'x')));
        assert_eq!(forked.pop(), Some((far, 'y')));
        assert_eq!(forked.pop(), Some((far, 'm')));
        assert_eq!(forked.pop(), None);
    }

    #[test]
    fn seal_is_idempotent() {
        let mut q = EventQueue::new();
        q.seal();
        q.seal();
        q.schedule(1, 'a');
        q.schedule_pre(1, 'b');
        assert_eq!(q.pop(), Some((1, 'b')));
        assert_eq!(q.pop(), Some((1, 'a')));
    }

    /// Tentpole gate: a cloned queue must replay the exact pop stream of
    /// the original, including events scheduled *after* the clone point
    /// (both bands), because the seq counters travel with the clone.
    #[test]
    fn clone_reproduces_the_exact_pop_stream() {
        let mut rng = DetRng::seeded(0xC10E_5EED);
        let mut q = EventQueue::new();
        for id in 0..500u32 {
            q.schedule(rng.below(LANES as u64 * 3), id);
        }
        q.seal();
        for _ in 0..100 {
            q.pop();
        }
        for id in 500..600u32 {
            q.schedule_in(rng.below(LANES as u64 * 2), id);
        }
        let mut c = q.clone();
        q.schedule_pre(q.now() + 7, 1_000);
        c.schedule_pre(c.now() + 7, 1_000);
        q.schedule(q.now() + 3, 1_001);
        c.schedule(c.now() + 3, 1_001);
        loop {
            let (a, b) = (q.pop(), c.pop());
            assert_eq!(a, b);
            assert_eq!(q.now(), c.now());
            if a.is_none() {
                break;
            }
        }
    }

    /// Tentpole gate: 1M mixed schedule/pop/retain/clear/peek ops, seeded;
    /// the bucketed calendar and the legacy binary heap must produce
    /// identical pop sequences (exact `(at, seq)` order).
    #[test]
    fn differential_fuzz_against_legacy_heap() {
        let mut rng = DetRng::seeded(0xCA1E_17DA);
        let mut new_q: EventQueue<u64> = EventQueue::new();
        let mut old_q: LegacyEventQueue<u64> = LegacyEventQueue::new();
        let mut next_id = 0u64;
        for step in 0..1_000_000u64 {
            match rng.below(100) {
                // Scheduling dominates, with delays that exercise lanes,
                // the window edge and the far heap.
                0..=54 => {
                    let delay = match rng.below(10) {
                        0..=5 => rng.below(200),
                        6..=7 => rng.below(LANES as u64 + 64),
                        8 => LANES as u64 + rng.below(100_000),
                        _ => 0,
                    };
                    let at = new_q.now() + delay;
                    new_q.schedule(at, next_id);
                    old_q.schedule(at, next_id);
                    next_id += 1;
                }
                55..=94 => {
                    assert_eq!(new_q.pop(), old_q.pop(), "diverged at step {step}");
                    assert_eq!(new_q.now(), old_q.now());
                }
                95..=96 => {
                    assert_eq!(new_q.peek_time(), old_q.peek_time());
                    assert_eq!(new_q.len(), old_q.len());
                }
                97..=98 => {
                    let modulus = 2 + rng.below(7);
                    new_q.retain(|&id| id % modulus != 0);
                    old_q.retain(|&id| id % modulus != 0);
                    assert_eq!(new_q.len(), old_q.len());
                }
                _ => {
                    new_q.clear();
                    old_q.clear();
                }
            }
        }
        // Drain both completely: the tails must match too.
        loop {
            let (a, b) = (new_q.pop(), old_q.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
