//! Time-ordered event calendar with deterministic tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycles;

#[derive(Debug)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the same cycle are delivered in the order they were scheduled (FIFO).
/// This determinism is what makes paired standard/ECP simulations with the
/// same seed directly comparable, as the paper's methodology requires.
///
/// The queue tracks the current simulation time: [`EventQueue::now`] is the
/// timestamp of the most recently popped event.
///
/// # Example
///
/// ```
/// use ftcoma_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(3, 'x');
/// q.schedule_in(1, 'y'); // at now (0) + 1
/// assert_eq!(q.pop(), Some((1, 'y')));
/// assert_eq!(q.now(), 1);
/// assert_eq!(q.pop(), Some((3, 'x')));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Cycles,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`): delivering events
    /// out of order would silently corrupt the simulation.
    pub fn schedule(&mut self, at: Cycles, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the calendar is empty.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Timestamp of the next pending event, if any, without popping it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Drops every pending event, leaving the clock unchanged.
    ///
    /// Used when a global rollback discards all in-flight protocol activity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drops pending events that do not satisfy `keep`, leaving the clock
    /// unchanged. Relative order of surviving events is preserved.
    pub fn retain(&mut self, mut keep: impl FnMut(&E) -> bool) {
        let old = std::mem::take(&mut self.heap);
        self.heap = old
            .into_iter()
            .filter(|Reverse(e)| keep(&e.event))
            .collect();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        q.schedule(5, ());
        q.schedule(9, ());
        let mut last = 0;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn retain_filters_and_preserves_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(i % 3, i);
        }
        q.retain(|&i| i % 2 == 0);
        let mut seen = Vec::new();
        while let Some((_, i)) = q.pop() {
            seen.push(i);
        }
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1, ());
        q.schedule(2, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(42, ());
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop(), Some((42, ())));
        assert_eq!(q.peek_time(), None);
    }
}
