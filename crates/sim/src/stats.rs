//! Statistics accumulators used by the metrics layer.
//!
//! The paper reports miss *rates*, injections *per 10 000 references*,
//! replication *throughput* and execution-time *decompositions*; the small
//! set of accumulators here covers those reporting styles.

use crate::Cycles;

/// An event counter.
///
/// # Example
///
/// ```
/// use ftcoma_sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }

    /// This count per 10 000 units of `base` — the paper's favourite unit
    /// ("injections per 10 000 memory references"). Returns 0.0 when `base`
    /// is zero.
    pub fn per_10k(&self, base: u64) -> f64 {
        if base == 0 {
            0.0
        } else {
            self.0 as f64 * 10_000.0 / base as f64
        }
    }
}

/// A hit/total ratio, e.g. a miss rate.
///
/// # Example
///
/// ```
/// use ftcoma_sim::stats::Ratio;
///
/// let mut misses = Ratio::new();
/// misses.record(true);
/// misses.record(false);
/// misses.record(false);
/// assert!((misses.rate() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation; `hit` selects the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// hits / total, or 0.0 when empty.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// `rate()` as a percentage.
    pub fn percent(&self) -> f64 {
        self.rate() * 100.0
    }
}

/// Running mean / min / max / variance (Welford).
///
/// # Example
///
/// ```
/// use ftcoma_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Accumulates bytes moved during tagged windows of simulated time, used for
/// the replication-throughput figures (Figs. 4 and 9).
///
/// All quantities are **simulated cycles**, never host wall-clock time:
/// nothing in this module (or anywhere in `ftcoma-sim`) reads `Instant`,
/// so no wall-clock value can leak into a determinism-gated document.
///
/// # Example
///
/// ```
/// use ftcoma_sim::stats::ThroughputMeter;
///
/// let mut m = ThroughputMeter::new();
/// m.begin_window(100);
/// m.add_bytes(1024);
/// m.end_window(200);
/// assert_eq!(m.bytes(), 1024);
/// assert_eq!(m.busy_cycles(), 100);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThroughputMeter {
    bytes: u64,
    busy: Cycles,
    window_start: Option<Cycles>,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a measurement window at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if a window is already open.
    pub fn begin_window(&mut self, now: Cycles) {
        assert!(self.window_start.is_none(), "window already open");
        self.window_start = Some(now);
    }

    /// Closes the current window at time `now`, accumulating its duration.
    ///
    /// # Panics
    ///
    /// Panics if no window is open or `now` precedes the window start.
    pub fn end_window(&mut self, now: Cycles) {
        let start = self.window_start.take().expect("no window open");
        assert!(now >= start, "window ends before it starts");
        self.busy += now - start;
    }

    /// Adds transferred bytes (window need not be open; bytes always count).
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total cycles spent inside closed windows.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy
    }

    /// Bytes per cycle over the accumulated windows (0.0 when no window
    /// time has been accumulated).
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.busy == 0 {
            0.0
        } else {
            self.bytes as f64 / self.busy as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_per_10k() {
        let mut c = Counter::new();
        c.add(25);
        assert!((c.per_10k(10_000) - 25.0).abs() < 1e-12);
        assert!((c.per_10k(20_000) - 12.5).abs() < 1e-12);
        assert_eq!(c.per_10k(0), 0.0);
        assert_eq!(c.take(), 25);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_empty_is_zero() {
        let r = Ratio::new();
        assert_eq!(r.rate(), 0.0);
        assert_eq!(r.percent(), 0.0);
    }

    #[test]
    fn running_stats_variance() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn throughput_meter_windows_accumulate() {
        let mut m = ThroughputMeter::new();
        m.begin_window(0);
        m.add_bytes(100);
        m.end_window(50);
        m.begin_window(80);
        m.add_bytes(100);
        m.end_window(130);
        assert_eq!(m.busy_cycles(), 100);
        assert!((m.bytes_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window already open")]
    fn throughput_meter_double_open_panics() {
        let mut m = ThroughputMeter::new();
        m.begin_window(0);
        m.begin_window(1);
    }
}

/// A log₂-bucketed histogram for latency-style quantities.
///
/// Values land in bucket `floor(log2(v)) + 1` (zero in bucket 0), so the
/// histogram spans the full `u64` range in 65 buckets with ~2x resolution —
/// plenty for "how long do misses take" questions.
///
/// # Example
///
/// ```
/// use ftcoma_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 18, 116, 124, 500] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) >= 18.0 && h.quantile(0.5) <= 256.0);
/// assert_eq!(h.max(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Records a value.
    pub fn record(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 65];
        }
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the q-th value (within 2x of the true quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if b == 0 {
                    0.0
                } else {
                    (1u128 << b) as f64 - 1.0
                };
            }
        }
        self.max as f64
    }

    /// Median (approximate, within 2x): `quantile(0.5)`.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (approximate, within 2x).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (approximate, within 2x).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The standard reporting summary: count, mean, p50/p90/p99, max.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max,
        }
    }

    /// The non-empty log₂ buckets as `(upper_bound, count)` pairs, in
    /// ascending order. Bucket 0 holds only zeros (upper bound 0).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (if b == 0 { 0 } else { ((1u128 << b) - 1) as u64 }, n))
            .collect()
    }

    /// Folds another histogram into this one: bucket counts, `count` and
    /// `sum` add, `max` takes the larger high-water mark. Used by the
    /// campaign aggregator to combine per-cell phase histograms; the
    /// operation is associative and commutative (property-tested in the
    /// integration suite), so aggregation order cannot affect a report.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 && other.max == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; 65];
        }
        for (i, slot) in self.buckets.iter_mut().enumerate() {
            *slot += other.buckets.get(i).copied().unwrap_or(0);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Counters accumulated since `base` (for warmup windows).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not a prefix of `self` (a counter would go
    /// negative).
    pub fn delta_since(&self, base: &Histogram) -> Histogram {
        let mut buckets = vec![0u64; 65];
        for (i, slot) in buckets.iter_mut().enumerate() {
            let a = self.buckets.get(i).copied().unwrap_or(0);
            let b = base.buckets.get(i).copied().unwrap_or(0);
            assert!(a >= b, "histogram base is not a prefix");
            *slot = a - b;
        }
        Histogram {
            buckets,
            count: self.count - base.count,
            sum: self.sum - base.sum,
            max: self.max, // max is a high-water mark, kept as-is
        }
    }
}

/// A [`Histogram`]'s reporting summary, convenient for export.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound, within 2x).
    pub p50: f64,
    /// 90th percentile (bucket upper bound, within 2x).
    pub p90: f64,
    /// 99th percentile (bucket upper bound, within 2x).
    pub p99: f64,
    /// Exact largest recorded value.
    pub max: u64,
}

impl HistogramSummary {
    /// Serializes as a JSON object with stable key order.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::from(self.mean)),
            ("p50", Json::from(self.p50)),
            ("p90", Json::from(self.p90)),
            ("p99", Json::from(self.p99)),
            ("max", Json::from(self.max)),
        ])
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::Histogram;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 206.0).abs() < 1.0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(18);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert!(h.quantile(0.5) >= 18.0 && h.quantile(0.5) < 64.0);
        assert!(h.quantile(0.99) >= 1000.0);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    /// Pins the percentile math on a known distribution: the integers
    /// 1..=1000 land in log₂ buckets whose cumulative counts are exactly
    /// computable, so p50/p90/p99 have known values (the containing
    /// bucket's upper bound).
    #[test]
    fn percentiles_pinned_on_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Cumulative counts by bucket upper bound: ..255 -> 255, ..511 ->
        // 511, ..1023 -> 1000. Targets: p50 -> 500th value (bucket 511),
        // p90 -> 900th, p99 -> 990th (both bucket 1023).
        assert_eq!(h.p50(), 511.0);
        assert_eq!(h.p90(), 1023.0);
        assert_eq!(h.p99(), 1023.0);
        assert_eq!(h.max(), 1000);
        let s = h.summary();
        assert_eq!(
            (s.count, s.p50, s.p90, s.p99, s.max),
            (1000, 511.0, 1023.0, 1023.0, 1000)
        );
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn nonzero_buckets_report_upper_bounds() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(5);
        h.record(6);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (7, 2)]);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(100);
        let mut b = Histogram::new();
        b.record(7);
        b.record(3000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 3000);
        assert!((a.mean() - (5.0 + 100.0 + 7.0 + 3000.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_handles_default_histograms() {
        // `Histogram::default()` has an *empty* bucket vector (it only
        // materialises on first record); merge must cope on both sides.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.merge(&b); // empty into empty
        assert_eq!(a.count(), 0);
        b.record(42);
        a.merge(&b); // populated into empty
        assert_eq!(a.count(), 1);
        assert_eq!(a.max(), 42);
        let c = Histogram::default();
        a.merge(&c); // empty into populated
        assert_eq!(a.count(), 1);
        assert_eq!(a.summary().max, 42);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut h = Histogram::new();
        h.record(5);
        let base = h.clone();
        h.record(7);
        h.record(100);
        let d = h.delta_since(&base);
        assert_eq!(d.count(), 2);
        assert!((d.mean() - 53.5).abs() < 1e-9);
    }
}
