//! Per-node memory-reference streams with checkpoint/rollback support.

use ftcoma_mem::addr::{Addr, ITEMS_PER_PAGE, ITEM_BYTES, LINE_BYTES, PAGE_BYTES};
use ftcoma_sim::rng::RngSnapshot;
use ftcoma_sim::DetRng;

use crate::presets::{SharingStyle, SplashConfig};
use crate::zipf::Zipf;

/// One memory reference, preceded by some non-memory instructions.
///
/// Batching the compute gap into the reference keeps the simulator's event
/// count proportional to memory references, not instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Non-memory instructions (1 cycle each) executed before this access.
    pub pre_cycles: u32,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
    /// Byte address accessed.
    pub addr: Addr,
    /// Whether the address lies in the shared region (for statistics).
    pub shared: bool,
}

/// A replayable stream of memory references.
///
/// Implementations must be deterministic functions of their construction
/// parameters and must support exact rewind via
/// [`snapshot`](RefStream::snapshot) / [`restore`](RefStream::restore):
/// after a restore, the stream re-produces the identical reference sequence.
/// This models re-execution from a recovery point.
pub trait RefStream {
    /// Produces the next memory reference.
    fn next_ref(&mut self) -> MemRef;

    /// Captures the complete stream state.
    fn snapshot(&self) -> StreamSnapshot;

    /// Rewinds to a previously captured state.
    fn restore(&mut self, snap: &StreamSnapshot);

    /// Total references produced so far (monotone between restores).
    fn refs_emitted(&self) -> u64;
}

/// Saved state of a [`RefStream`] implementation.
///
/// For [`NodeStream`] this captures the generator's full state; simpler
/// streams (e.g. trace replay) use the position-only constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSnapshot {
    rng: RngSnapshot,
    burst_item: u64,
    burst_left: u32,
    priv_frame: u64,
    priv_writes: u32,
    shr_frame: u64,
    shr_writes: u32,
    refs_emitted: u64,
}

impl StreamSnapshot {
    /// Snapshot for position-indexed streams (trace replay): stores only a
    /// cursor and the emission count.
    pub fn for_position(pos: u64, emitted: u64) -> Self {
        Self {
            rng: ftcoma_sim::DetRng::seeded(0).snapshot(),
            burst_item: pos,
            burst_left: 0,
            priv_frame: 0,
            priv_writes: 0,
            shr_frame: 0,
            shr_writes: 0,
            refs_emitted: emitted,
        }
    }

    /// The `(cursor, emitted)` pair of a position snapshot.
    pub fn position(&self) -> (u64, u64) {
        (self.burst_item, self.refs_emitted)
    }
}

/// The standard per-node stream implementing the four preset styles.
///
/// # Example
///
/// ```
/// use ftcoma_workloads::{presets, NodeStream, RefStream};
///
/// let cfg = presets::mp3d();
/// let mut s = NodeStream::new(&cfg, 3, 16, 99);
/// let snap = s.snapshot();
/// let a: Vec<_> = (0..100).map(|_| s.next_ref()).collect();
/// s.restore(&snap);
/// let b: Vec<_> = (0..100).map(|_| s.next_ref()).collect();
/// assert_eq!(a, b); // exact replay, as rollback requires
/// ```
#[derive(Debug, Clone)]
pub struct NodeStream {
    // Immutable configuration.
    node: u64,
    nodes: u64,
    shared_items: u64,
    private_base_page: u64,
    private_items: u64,
    window: u64,
    drift_period: u32,
    style: SharingStyle,
    shared_zipf: Zipf,
    panel_zipf: Option<Zipf>,
    // Precomputed `DetRng::threshold`s for the per-reference Bernoulli
    // draws (bit-identical to the `chance(p)` forms, minus the per-call
    // float work — this path runs once per simulated reference).
    mem_t: u64,
    write_t: u64,
    shared_read_t: u64,
    shared_write_t: u64,
    priv_hot_t: u64,

    // Mutable, snapshot-covered state.
    rng: DetRng,
    burst_item: u64,
    burst_left: u32,
    priv_frame: u64,
    priv_writes: u32,
    shr_frame: u64,
    shr_writes: u32,
    refs_emitted: u64,
}

impl NodeStream {
    /// Builds the stream of node `node` out of `nodes`, deterministically
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`SplashConfig::validate`])
    /// or `node >= nodes`.
    pub fn new(cfg: &SplashConfig, node: u16, nodes: u16, seed: u64) -> Self {
        cfg.validate();
        assert!(node < nodes, "node index out of range");
        let shared_items = cfg.shared_pages * ITEMS_PER_PAGE;
        let private_items = cfg.private_pages_per_node * ITEMS_PER_PAGE;
        let panel_zipf = match cfg.style {
            SharingStyle::Blocked { panel_pages } => {
                let panels = (cfg.shared_pages / u64::from(panel_pages)).max(1) as usize;
                Some(Zipf::new(panels, cfg.zipf_theta))
            }
            _ => None,
        };
        Self {
            node: u64::from(node),
            nodes: u64::from(nodes),
            shared_items,
            private_base_page: cfg.shared_pages + u64::from(node) * cfg.private_pages_per_node,
            private_items,
            window: u64::from(cfg.write_window_items),
            drift_period: cfg.write_drift_period,
            style: cfg.style,
            shared_zipf: Zipf::new(shared_items as usize, cfg.zipf_theta),
            panel_zipf,
            mem_t: DetRng::threshold(cfg.mem_frac()),
            write_t: DetRng::threshold(cfg.write_frac / cfg.mem_frac()),
            shared_read_t: DetRng::threshold(cfg.shared_read_frac / cfg.read_frac),
            shared_write_t: DetRng::threshold(cfg.shared_write_frac / cfg.write_frac),
            priv_hot_t: DetRng::threshold(cfg.private_hot_prob),
            rng: DetRng::seeded(seed).split(u64::from(node)),
            burst_item: 0,
            burst_left: 0,
            priv_frame: 0,
            priv_writes: 0,
            shr_frame: 0,
            shr_writes: 0,
            refs_emitted: 0,
        }
    }

    /// Address of a random line within shared item index `idx`.
    fn shared_addr(&mut self, idx: u64) -> Addr {
        let line = self.rng.below(ITEM_BYTES / LINE_BYTES);
        Addr::new(idx * ITEM_BYTES + line * LINE_BYTES)
    }

    fn private_idx_to_addr(&mut self, idx: u64) -> Addr {
        let base = self.private_base_page * PAGE_BYTES;
        let line = self.rng.below(ITEM_BYTES / LINE_BYTES);
        Addr::new(base + idx * ITEM_BYTES + line * LINE_BYTES)
    }

    /// Address of a private *store*: inside the sliding write window, which
    /// advances one item every `drift_period` stores. This is what keeps
    /// the per-checkpoint-interval modified set small and realistic.
    fn private_write_addr(&mut self) -> Addr {
        self.priv_writes += 1;
        if self.priv_writes >= self.drift_period {
            self.priv_writes = 0;
            self.priv_frame = (self.priv_frame + 1) % self.private_items;
        }
        let idx = (self.priv_frame + self.rng.below(self.window)) % self.private_items;
        self.private_idx_to_addr(idx)
    }

    /// Address of a private *load*: usually near the write window, with a
    /// uniform tail over the whole private region.
    fn private_read_addr(&mut self) -> Addr {
        let idx = if self.rng.chance_with(self.priv_hot_t) {
            let near = (self.window * 8).min(self.private_items);
            (self.priv_frame + self.rng.below(near)) % self.private_items
        } else {
            self.rng.below(self.private_items)
        };
        self.private_idx_to_addr(idx)
    }

    /// Windowed store inside the node's own shared slice (panel updates,
    /// own-partition molecule updates).
    fn sliced_write_idx(&mut self) -> u64 {
        let (lo, hi) = self.own_slice(self.node);
        self.windowed_write_in(lo, hi)
    }

    /// Windowed store inside `[lo, hi)` with slow drift.
    fn windowed_write_in(&mut self, lo: u64, hi: u64) -> u64 {
        let span = hi - lo;
        self.shr_writes += 1;
        if self.shr_writes >= self.drift_period {
            self.shr_writes = 0;
            self.shr_frame = (self.shr_frame + 1) % span;
        }
        lo + (self.shr_frame + self.rng.below(self.window.min(span))) % span
    }

    /// This node's slice of the shared item space, for partitioned writes.
    fn own_slice(&self, of_node: u64) -> (u64, u64) {
        let per = (self.shared_items / self.nodes).max(1);
        let lo = (of_node * per).min(self.shared_items - 1);
        let hi = ((of_node + 1) * per).min(self.shared_items).max(lo + 1);
        (lo, hi)
    }

    fn pick_shared_item(&mut self, is_write: bool) -> u64 {
        match self.style {
            SharingStyle::MostlyRead => {
                if is_write {
                    // Writers update their own bodies, which live in the
                    // cold (less-read) half of the shared set; the hot
                    // zipf head is the read-mostly tree structure.
                    let half = self.shared_items / 2;
                    let span = (half / self.nodes).max(1);
                    let lo = half + (self.node * span).min(half - 1);
                    let hi = (lo + span).min(self.shared_items).max(lo + 1);
                    self.windowed_write_in(lo, hi)
                } else {
                    self.shared_zipf.sample(&mut self.rng) as u64
                }
            }
            SharingStyle::Migratory {
                burst: (lo, hi),
                object_items,
            } => {
                if self.burst_left == 0 {
                    self.burst_item = self.rng.below(self.shared_items);
                    self.burst_left = self.rng.range(u64::from(lo), u64::from(hi) + 1) as u32;
                }
                self.burst_left -= 1;
                let off = self.rng.below(u64::from(object_items));
                (self.burst_item + off) % self.shared_items
            }
            SharingStyle::Blocked { panel_pages } => {
                let panel_items = u64::from(panel_pages) * ITEMS_PER_PAGE;
                if is_write {
                    // Updates land in the *trailing* rows of the panels
                    // (consumers read blocks only once finalised, i.e. the
                    // leading rows), partitioned per node. The windowed
                    // index lives in "write space" — the concatenation of
                    // all panel trailing halves — and is mapped back.
                    let half_panel = (panel_items / 2).max(1);
                    let write_space = (self.shared_items / 2).max(1);
                    let per = (write_space / self.nodes).max(1);
                    let lo = (self.node * per).min(write_space - 1);
                    let hi = ((self.node + 1) * per).min(write_space).max(lo + 1);
                    let ws = self.windowed_write_in(lo, hi);
                    let panel = ws / half_panel;
                    (panel * panel_items + half_panel + ws % half_panel) % self.shared_items
                } else if self.rng.chance(0.55) {
                    // A factorisation step mostly re-reads its own panel
                    // region (local blocks, including its own updates).
                    let (lo, hi) = self.own_slice(self.node);
                    self.rng.range(lo, hi)
                } else {
                    let panel = self
                        .panel_zipf
                        .as_ref()
                        .expect("blocked style")
                        .sample(&mut self.rng) as u64;
                    let base = panel * panel_items;
                    // Remote-panel reads touch only finalised rows — the
                    // leading half of the panel, biased towards the pivot
                    // block — never the trailing rows still being updated.
                    let half = (panel_items / 2).max(1);
                    let off = self.rng.below(half).min(self.rng.below(half));
                    (base + off) % self.shared_items
                }
            }
            SharingStyle::Uniform => self.rng.below(self.shared_items),
            SharingStyle::HotSpot {
                hot_items,
                hot_prob,
            } => {
                if self.rng.chance(hot_prob) {
                    self.rng.below(u64::from(hot_items).min(self.shared_items))
                } else {
                    self.rng.below(self.shared_items)
                }
            }
            SharingStyle::ProducerConsumer => {
                if is_write {
                    self.sliced_write_idx()
                } else {
                    // Consume the ring predecessor's production.
                    let pred = (self.node + self.nodes - 1) % self.nodes;
                    let (lo, hi) = self.own_slice(pred);
                    self.rng.range(lo, hi)
                }
            }
            SharingStyle::NeighborExchange { local_prob } => {
                if is_write {
                    self.sliced_write_idx()
                } else {
                    let target = if self.rng.chance(local_prob) {
                        self.node
                    } else if self.rng.chance(0.5) {
                        (self.node + 1) % self.nodes
                    } else {
                        (self.node + self.nodes - 1) % self.nodes
                    };
                    let (lo, hi) = self.own_slice(target);
                    self.rng.range(lo, hi)
                }
            }
        }
    }
}

impl RefStream for NodeStream {
    fn next_ref(&mut self) -> MemRef {
        // Compute gap: geometric with success probability mem_frac.
        let pre_cycles = self.rng.geometric_with(self.mem_t, 10_000) as u32;
        // Load or store, conditioned on this being a memory reference.
        let is_write = self.rng.chance_with(self.write_t);
        let shared = if is_write {
            self.rng.chance_with(self.shared_write_t)
        } else {
            self.rng.chance_with(self.shared_read_t)
        };
        let addr = if shared {
            let idx = self.pick_shared_item(is_write);
            self.shared_addr(idx)
        } else if is_write {
            self.private_write_addr()
        } else {
            self.private_read_addr()
        };
        self.refs_emitted += 1;
        MemRef {
            pre_cycles,
            is_write,
            addr,
            shared,
        }
    }

    fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            rng: self.rng.snapshot(),
            burst_item: self.burst_item,
            burst_left: self.burst_left,
            priv_frame: self.priv_frame,
            priv_writes: self.priv_writes,
            shr_frame: self.shr_frame,
            shr_writes: self.shr_writes,
            refs_emitted: self.refs_emitted,
        }
    }

    fn restore(&mut self, snap: &StreamSnapshot) {
        self.rng = DetRng::restore(&snap.rng);
        self.burst_item = snap.burst_item;
        self.burst_left = snap.burst_left;
        self.priv_frame = snap.priv_frame;
        self.priv_writes = snap.priv_writes;
        self.shr_frame = snap.shr_frame;
        self.shr_writes = snap.shr_writes;
        self.refs_emitted = snap.refs_emitted;
    }

    fn refs_emitted(&self) -> u64 {
        self.refs_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn collect(stream: &mut NodeStream, n: usize) -> Vec<MemRef> {
        (0..n).map(|_| stream.next_ref()).collect()
    }

    #[test]
    fn deterministic_across_constructions() {
        let cfg = presets::barnes();
        let mut a = NodeStream::new(&cfg, 1, 8, 7);
        let mut b = NodeStream::new(&cfg, 1, 8, 7);
        assert_eq!(collect(&mut a, 500), collect(&mut b, 500));
    }

    #[test]
    fn nodes_have_distinct_streams() {
        let cfg = presets::barnes();
        let mut a = NodeStream::new(&cfg, 0, 8, 7);
        let mut b = NodeStream::new(&cfg, 1, 8, 7);
        assert_ne!(collect(&mut a, 50), collect(&mut b, 50));
    }

    #[test]
    fn snapshot_restore_replays_exactly() {
        for cfg in presets::all() {
            let mut s = NodeStream::new(&cfg, 2, 16, 11);
            let _ = collect(&mut s, 1000); // advance into steady state
            let snap = s.snapshot();
            let first = collect(&mut s, 2000);
            s.restore(&snap);
            let second = collect(&mut s, 2000);
            assert_eq!(first, second, "replay diverged for {}", cfg.name);
        }
    }

    #[test]
    fn mix_matches_table3_within_tolerance() {
        for cfg in presets::all() {
            let mut s = NodeStream::new(&cfg, 0, 16, 3);
            let n = 200_000;
            let mut instr = 0u64;
            let (mut reads, mut writes, mut sreads, mut swrites) = (0u64, 0u64, 0u64, 0u64);
            for _ in 0..n {
                let r = s.next_ref();
                instr += u64::from(r.pre_cycles) + 1;
                if r.is_write {
                    writes += 1;
                    if r.shared {
                        swrites += 1;
                    }
                } else {
                    reads += 1;
                    if r.shared {
                        sreads += 1;
                    }
                }
            }
            let f = |x: u64| x as f64 / instr as f64;
            assert!(
                (f(reads) - cfg.read_frac).abs() < 0.01,
                "{} reads {}",
                cfg.name,
                f(reads)
            );
            assert!(
                (f(writes) - cfg.write_frac).abs() < 0.01,
                "{} writes",
                cfg.name
            );
            assert!(
                (f(sreads) - cfg.shared_read_frac).abs() < 0.01,
                "{} sreads",
                cfg.name
            );
            assert!(
                (f(swrites) - cfg.shared_write_frac).abs() < 0.005,
                "{} swrites",
                cfg.name
            );
        }
    }

    #[test]
    fn addresses_stay_in_declared_regions() {
        for cfg in presets::all() {
            let nodes = 8;
            let mut s = NodeStream::new(&cfg, 5, nodes, 13);
            let shared_limit = cfg.shared_pages * PAGE_BYTES;
            let priv_lo = (cfg.shared_pages + 5 * cfg.private_pages_per_node) * PAGE_BYTES;
            let priv_hi = priv_lo + cfg.private_pages_per_node * PAGE_BYTES;
            for _ in 0..20_000 {
                let r = s.next_ref();
                if r.shared {
                    assert!(r.addr.raw() < shared_limit, "{}: {:?}", cfg.name, r);
                } else {
                    assert!(
                        (priv_lo..priv_hi).contains(&r.addr.raw()),
                        "{}: private {:?} outside [{priv_lo}, {priv_hi})",
                        cfg.name,
                        r
                    );
                }
            }
        }
    }

    #[test]
    fn migratory_bursts_reuse_objects() {
        let cfg = presets::mp3d();
        let mut s = NodeStream::new(&cfg, 0, 4, 17);
        let mut repeats = 0;
        let mut shared_refs = 0;
        let mut last_item = None;
        for _ in 0..50_000 {
            let r = s.next_ref();
            if r.shared {
                shared_refs += 1;
                let item = r.addr.item();
                if last_item == Some(item) {
                    repeats += 1;
                }
                last_item = Some(item);
            }
        }
        // Bursts of 4..12 on single-item objects: consecutive shared refs
        // frequently hit the same item.
        assert!(
            repeats as f64 > shared_refs as f64 * 0.3,
            "only {repeats}/{shared_refs} consecutive repeats"
        );
    }

    #[test]
    fn refs_emitted_tracks_and_restores() {
        let cfg = presets::water();
        let mut s = NodeStream::new(&cfg, 0, 4, 19);
        let _ = collect(&mut s, 10);
        assert_eq!(s.refs_emitted(), 10);
        let snap = s.snapshot();
        let _ = collect(&mut s, 5);
        assert_eq!(s.refs_emitted(), 15);
        s.restore(&snap);
        assert_eq!(s.refs_emitted(), 10);
    }
}
