//! Synthetic SPLASH-like shared-memory reference generators.
//!
//! The paper drives its simulator with execution-driven traces of four
//! SPLASH applications (Barnes-Hut, Cholesky, Mp3d, Water) instrumented
//! with Abstract Execution. We cannot re-run those 1996 binaries, so this
//! crate substitutes statistically matched generators (see DESIGN.md §4):
//! each preset reproduces the application's Table 3 characteristics —
//! instruction/read/write mix, shared-access fractions, relative
//! working-set size — and its qualitative sharing style:
//!
//! * **Barnes-Hut** — mostly-read shared tree data, small working set;
//! * **Cholesky** — blocked panel reuse, large working set;
//! * **Mp3d** — migratory molecule records, high shared-write rate, the
//!   largest working set (≈9× Barnes);
//! * **Water** — partitioned molecules with neighbour exchange, very low
//!   shared-write rate.
//!
//! Each per-node stream implements [`RefStream`], whose
//! [`snapshot`](RefStream::snapshot)/[`restore`](RefStream::restore) pair is
//! what lets the machine model true backward error recovery: the stream
//! state is saved with every recovery point and re-wound on rollback, so the
//! node genuinely re-executes from the checkpoint.
//!
//! # Example
//!
//! ```
//! use ftcoma_workloads::{presets, NodeStream, RefStream};
//!
//! let cfg = presets::barnes();
//! let mut stream = NodeStream::new(&cfg, 0, 16, 42);
//! let r = stream.next_ref();
//! assert!(r.pre_cycles < 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod presets;
pub mod stream;
pub mod trace;
pub mod zipf;

pub use presets::{SharingStyle, SplashConfig};
pub use stream::{MemRef, NodeStream, RefStream, StreamSnapshot};
