//! Workload configurations and the four SPLASH-like presets.
//!
//! The numeric mixes come from Table 3 of the paper (fractions of all
//! instructions); working-set sizes are scaled down proportionally so that
//! scaled runs of 10⁵–10⁶ references per node exercise the same relative
//! pressure (Mp3d's working set stays ≈9× Barnes'; see DESIGN.md §4).

/// Qualitative sharing behaviour of an application's shared data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SharingStyle {
    /// Mostly-read shared structures (Barnes-Hut's tree): reads spread over
    /// the whole shared set with strong popularity skew; each node writes
    /// only its own small slice.
    MostlyRead,
    /// Migratory records (Mp3d's molecules): a node picks an object and
    /// performs a read-modify burst on it before moving on, so objects
    /// migrate from writer to writer.
    Migratory {
        /// Consecutive accesses to an object before moving on (min, max).
        burst: (u32, u32),
        /// Object size in 128-byte items.
        object_items: u32,
    },

    /// Blocked panel reuse (Cholesky): reads hit popularity-skewed panels,
    /// writes update the node's own panel range.
    Blocked {
        /// Panel size in pages.
        panel_pages: u32,
    },
    /// Spatial partition with neighbour exchange (Water): most accesses in
    /// the node's own partition, boundary reads in the ring neighbours'.
    NeighborExchange {
        /// Probability that a shared access stays in the local partition.
        local_prob: f64,
    },
    /// Micro-benchmark: uniformly random shared accesses — the worst case
    /// for any locality-exploiting mechanism, used for stress testing.
    Uniform,
    /// Micro-benchmark: a small globally hot set absorbs most shared
    /// accesses — maximal coherence contention on few items.
    HotSpot {
        /// Size of the hot set in items.
        hot_items: u32,
        /// Probability a shared access targets the hot set.
        hot_prob: f64,
    },
    /// Micro-benchmark: each node writes its own slice and reads its ring
    /// predecessor's — a software pipeline, all shared data migratory
    /// between exactly two nodes.
    ProducerConsumer,
}

/// Configuration of one synthetic application.
///
/// Fractions are of *all instructions*, exactly as Table 3 reports them;
/// `read_frac` includes `shared_read_frac` (likewise for writes).
///
/// # Example
///
/// ```
/// use ftcoma_workloads::presets;
///
/// let mp3d = presets::mp3d();
/// assert!(mp3d.shared_write_frac > presets::water().shared_write_frac);
/// mp3d.validate();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SplashConfig {
    /// Application name, as printed in tables.
    pub name: String,
    /// Instruction count of the real run, in millions (Table 3) — used to
    /// keep the relative run lengths of the four applications.
    pub instr_millions: f64,
    /// Fraction of instructions that are loads.
    pub read_frac: f64,
    /// Fraction of instructions that are stores.
    pub write_frac: f64,
    /// Fraction of instructions that are loads of *shared* data.
    pub shared_read_frac: f64,
    /// Fraction of instructions that are stores to *shared* data.
    pub shared_write_frac: f64,
    /// Size of the shared region in 16 KB pages.
    pub shared_pages: u64,
    /// Per-node private region size in 16 KB pages.
    pub private_pages_per_node: u64,
    /// Zipf exponent for shared-read popularity.
    pub zipf_theta: f64,
    /// Probability that a private *read* stays near the write window
    /// (the remainder spreads uniformly over the private region).
    pub private_hot_prob: f64,
    /// Width of the private write window in items. Stores cluster in a
    /// small sliding window (stack frames, per-body records), which is
    /// what bounds the recovery data produced per checkpoint interval.
    pub write_window_items: u32,
    /// Writes between one-item advances of the write window: larger means
    /// stronger locality and fewer distinct items modified per interval.
    pub write_drift_period: u32,
    /// Sharing behaviour.
    pub style: SharingStyle,
    /// Global barrier every N references per node (`None` = no barriers).
    /// SPLASH applications are iterative, barrier-synchronised programs;
    /// enable this to model the phase structure.
    pub barrier_interval_refs: Option<u64>,
}

impl SplashConfig {
    /// Fraction of instructions that reference memory.
    pub fn mem_frac(&self) -> f64 {
        self.read_frac + self.write_frac
    }

    /// Checks configuration consistency.
    ///
    /// # Panics
    ///
    /// Panics if fractions are out of range or inconsistent (e.g. shared
    /// fractions exceeding their totals), or regions are empty.
    pub fn validate(&self) {
        let in01 = |x: f64| (0.0..=1.0).contains(&x);
        assert!(
            in01(self.read_frac) && in01(self.write_frac),
            "fractions must be in [0,1]"
        );
        assert!(
            self.shared_read_frac <= self.read_frac && self.shared_write_frac <= self.write_frac,
            "shared fractions cannot exceed totals"
        );
        assert!(
            self.mem_frac() > 0.0 && self.mem_frac() < 1.0,
            "memory fraction must be in (0,1)"
        );
        assert!(self.shared_pages > 0, "shared region must be non-empty");
        assert!(
            self.private_pages_per_node > 0,
            "private region must be non-empty"
        );
        assert!(
            in01(self.private_hot_prob),
            "hot probability must be in [0,1]"
        );
        assert!(
            self.write_window_items >= 1,
            "write window must be non-empty"
        );
        assert!(
            self.write_drift_period >= 1,
            "drift period must be positive"
        );
        if let SharingStyle::Migratory {
            burst: (lo, hi),
            object_items,
        } = self.style
        {
            assert!(lo >= 1 && hi >= lo, "burst range must be non-empty");
            assert!(object_items >= 1);
        }
        if let SharingStyle::Blocked { panel_pages } = self.style {
            assert!(
                u64::from(panel_pages) <= self.shared_pages,
                "panel larger than shared set"
            );
        }
        if let SharingStyle::NeighborExchange { local_prob } = self.style {
            assert!(in01(local_prob));
        }
        if let SharingStyle::HotSpot {
            hot_items,
            hot_prob,
        } = self.style
        {
            assert!(hot_items >= 1, "hot set must be non-empty");
            assert!(in01(hot_prob));
        }
    }

    /// Adds a global barrier every `refs` references per node.
    ///
    /// # Panics
    ///
    /// Panics if `refs == 0`.
    pub fn with_barriers(mut self, refs: u64) -> Self {
        assert!(refs > 0, "barrier interval must be positive");
        self.barrier_interval_refs = Some(refs);
        self
    }

    /// Scales both working-set regions by `factor` (≥ 1 page each).
    pub fn scale_working_set(mut self, factor: f64) -> Self {
        self.shared_pages = ((self.shared_pages as f64 * factor).round() as u64).max(1);
        self.private_pages_per_node =
            ((self.private_pages_per_node as f64 * factor).round() as u64).max(1);
        self
    }
}

/// Barnes-Hut: 190 M instructions; 18.4 % reads / 10.7 % writes;
/// 4.2 % / 0.1 % shared; small mostly-read working set.
pub fn barnes() -> SplashConfig {
    SplashConfig {
        name: "Barnes".into(),
        instr_millions: 190.0,
        read_frac: 0.184,
        write_frac: 0.107,
        shared_read_frac: 0.042,
        shared_write_frac: 0.001,
        shared_pages: 4,
        private_pages_per_node: 3,
        zipf_theta: 0.9,
        private_hot_prob: 0.9,
        write_window_items: 4,
        write_drift_period: 384,
        style: SharingStyle::MostlyRead,
        barrier_interval_refs: None,
    }
}

/// Cholesky (bcsstk14): 53.1 M instructions; 23.3 % / 6.2 %;
/// 18.8 % / 3.3 % shared; large blocked working set.
pub fn cholesky() -> SplashConfig {
    SplashConfig {
        name: "Cholesky".into(),
        instr_millions: 53.1,
        read_frac: 0.233,
        write_frac: 0.062,
        shared_read_frac: 0.188,
        shared_write_frac: 0.033,
        shared_pages: 24,
        private_pages_per_node: 4,
        zipf_theta: 0.6,
        private_hot_prob: 0.85,
        write_window_items: 6,
        write_drift_period: 128,
        style: SharingStyle::Blocked { panel_pages: 4 },
        barrier_interval_refs: None,
    }
}

/// Mp3d (50 K molecules): 48.3 M instructions; 16.3 % / 9.7 %;
/// 13.1 % / 8.3 % shared; migratory molecules, working set ≈9× Barnes.
pub fn mp3d() -> SplashConfig {
    SplashConfig {
        name: "Mp3d".into(),
        instr_millions: 48.3,
        read_frac: 0.163,
        write_frac: 0.097,
        shared_read_frac: 0.131,
        shared_write_frac: 0.083,
        shared_pages: 36,
        private_pages_per_node: 3,
        zipf_theta: 0.2,
        private_hot_prob: 0.9,
        write_window_items: 6,
        write_drift_period: 256,
        style: SharingStyle::Migratory {
            burst: (64, 192),
            object_items: 1,
        },
        barrier_interval_refs: None,
    }
}

/// Water (120/144 molecules): 78.6 M instructions; 23.7 % / 6.9 %;
/// 4.3 % / 0.5 % shared; partitioned with neighbour exchange.
pub fn water() -> SplashConfig {
    SplashConfig {
        name: "Water".into(),
        instr_millions: 78.6,
        read_frac: 0.237,
        write_frac: 0.069,
        shared_read_frac: 0.043,
        shared_write_frac: 0.005,
        shared_pages: 8,
        private_pages_per_node: 3,
        zipf_theta: 0.5,
        private_hot_prob: 0.9,
        write_window_items: 4,
        write_drift_period: 384,
        style: SharingStyle::NeighborExchange { local_prob: 0.85 },
        barrier_interval_refs: None,
    }
}

/// The four presets in the paper's order.
pub fn all() -> Vec<SplashConfig> {
    vec![barnes(), cholesky(), mp3d(), water()]
}

fn micro_base(name: &str, style: SharingStyle) -> SplashConfig {
    SplashConfig {
        name: name.into(),
        instr_millions: 1.0,
        read_frac: 0.20,
        write_frac: 0.10,
        shared_read_frac: 0.15,
        shared_write_frac: 0.06,
        shared_pages: 16,
        private_pages_per_node: 2,
        zipf_theta: 0.0,
        private_hot_prob: 0.9,
        write_window_items: 4,
        write_drift_period: 128,
        style,
        barrier_interval_refs: None,
    }
}

/// Micro-benchmark: uniformly random shared accesses (locality worst case).
pub fn micro_uniform() -> SplashConfig {
    micro_base("uniform", SharingStyle::Uniform)
}

/// Micro-benchmark: contention on a small global hot set.
pub fn micro_hotspot() -> SplashConfig {
    micro_base(
        "hotspot",
        SharingStyle::HotSpot {
            hot_items: 32,
            hot_prob: 0.8,
        },
    )
}

/// Micro-benchmark: producer/consumer pipeline around the ring.
pub fn micro_producer_consumer() -> SplashConfig {
    micro_base("prodcons", SharingStyle::ProducerConsumer)
}

/// The micro-benchmark presets (stress tests beyond the paper's four
/// applications).
pub fn micros() -> Vec<SplashConfig> {
    vec![micro_uniform(), micro_hotspot(), micro_producer_consumer()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in all() {
            cfg.validate();
        }
        for cfg in micros() {
            cfg.validate();
        }
    }

    #[test]
    #[should_panic(expected = "hot set")]
    fn hotspot_requires_nonempty_hot_set() {
        let mut cfg = micro_hotspot();
        cfg.style = SharingStyle::HotSpot {
            hot_items: 0,
            hot_prob: 0.5,
        };
        cfg.validate();
    }

    #[test]
    fn table3_mixes() {
        let b = barnes();
        assert!((b.mem_frac() - 0.291).abs() < 1e-9);
        let m = mp3d();
        // Mp3d has the highest shared-write rate of the four.
        for other in [barnes(), cholesky(), water()] {
            assert!(m.shared_write_frac > other.shared_write_frac);
        }
    }

    #[test]
    fn mp3d_working_set_is_9x_barnes() {
        assert_eq!(mp3d().shared_pages, 9 * barnes().shared_pages);
    }

    #[test]
    fn scale_working_set_rounds_and_floors() {
        let tiny = barnes().scale_working_set(0.001);
        assert_eq!(tiny.shared_pages, 1);
        assert_eq!(tiny.private_pages_per_node, 1);
        let big = barnes().scale_working_set(2.0);
        assert_eq!(big.shared_pages, 8);
    }

    #[test]
    #[should_panic(expected = "shared fractions")]
    fn validate_rejects_inconsistent_shared_fraction() {
        let mut cfg = barnes();
        cfg.shared_read_frac = cfg.read_frac + 0.01;
        cfg.validate();
    }
}
