//! Zipf-distributed sampling over a finite population.
//!
//! Memory-access locality in the generators is modelled with a Zipf law:
//! rank `k` (1-based) is drawn with probability proportional to
//! `1 / k^theta`. A precomputed CDF table makes sampling an `O(log n)`
//! binary search, cheap enough for the simulator's hot loop.

use ftcoma_sim::DetRng;

/// A sampler for Zipf-distributed ranks over `0..n`.
///
/// # Example
///
/// ```
/// use ftcoma_workloads::zipf::Zipf;
/// use ftcoma_sim::DetRng;
///
/// let z = Zipf::new(100, 0.8);
/// let mut rng = DetRng::seeded(1);
/// let k = z.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    /// Guide table: `guide[j]` is the first rank whose CDF value is
    /// `>= j / GUIDE_BUCKETS`, so a draw `u` in bucket `j` only searches
    /// `cdf[guide[j] ..= guide[j+1]]` — one or two cache lines instead of
    /// a full binary search. The mapping `u -> rank` is bit-identical to
    /// the plain search (the bucket bounds `j / GUIDE_BUCKETS` are exact
    /// dyadic rationals, so the bracket is exact).
    guide: Vec<u32>,
}

/// Guide-table resolution; a power of two so `u * GUIDE_BUCKETS` and
/// `j / GUIDE_BUCKETS` are exact in `f64`.
const GUIDE_BUCKETS: usize = 1024;

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`.
    ///
    /// `theta == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        assert!(
            n < u32::MAX as usize,
            "population too large for guide table"
        );
        let mut guide = Vec::with_capacity(GUIDE_BUCKETS + 1);
        for j in 0..=GUIDE_BUCKETS {
            let bound = j as f64 / GUIDE_BUCKETS as f64;
            guide.push(cdf.partition_point(|&p| p < bound) as u32);
        }
        Self { cdf, guide }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the population is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..len()`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        // The result is the first rank with cdf >= u. `u` lies in guide
        // bucket `j`, so the rank lies in `guide[j] ..= guide[j+1]`.
        let j = (u * GUIDE_BUCKETS as f64) as usize;
        let lo = self.guide[j] as usize;
        let hi = (self.guide[j + 1] as usize + 1).min(self.cdf.len());
        let i = lo + self.cdf[lo..hi].partition_point(|&p| p < u);
        i.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = DetRng::seeded(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn low_ranks_are_hotter() {
        let z = Zipf::new(100, 1.0);
        let mut rng = DetRng::seeded(11);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "rank 0 ({}) vs rank 50 ({})",
            counts[0],
            counts[50]
        );
        assert!(counts[0] > counts[99] * 10);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = DetRng::seeded(13);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn guide_table_matches_plain_binary_search() {
        // The guide table is a pure accelerator: for every draw it must
        // return exactly the rank the original full binary search would
        // have — reference streams (and thus all reports) depend on it.
        for &(n, theta) in &[
            (1usize, 0.8),
            (7, 0.0),
            (512, 0.6),
            (4608, 0.8),
            (10_000, 1.2),
        ] {
            let z = Zipf::new(n, theta);
            let mut rng = DetRng::seeded(29);
            let mut shadow = rng.clone();
            for _ in 0..20_000 {
                let got = z.sample(&mut rng);
                let u = shadow.unit();
                let want = match z
                    .cdf
                    .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
                {
                    Ok(i) | Err(i) => i.min(z.cdf.len() - 1),
                };
                assert_eq!(got, want, "n={n} theta={theta} u={u}");
            }
        }
    }

    #[test]
    fn singleton_population() {
        let z = Zipf::new(1, 1.5);
        let mut rng = DetRng::seeded(17);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
