//! Zipf-distributed sampling over a finite population.
//!
//! Memory-access locality in the generators is modelled with a Zipf law:
//! rank `k` (1-based) is drawn with probability proportional to
//! `1 / k^theta`. A precomputed CDF table makes sampling an `O(log n)`
//! binary search, cheap enough for the simulator's hot loop.

use ftcoma_sim::DetRng;

/// A sampler for Zipf-distributed ranks over `0..n`.
///
/// # Example
///
/// ```
/// use ftcoma_workloads::zipf::Zipf;
/// use ftcoma_sim::DetRng;
///
/// let z = Zipf::new(100, 0.8);
/// let mut rng = DetRng::seeded(1);
/// let k = z.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`.
    ///
    /// `theta == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the population is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..len()`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite probabilities"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = DetRng::seeded(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn low_ranks_are_hotter() {
        let z = Zipf::new(100, 1.0);
        let mut rng = DetRng::seeded(11);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "rank 0 ({}) vs rank 50 ({})",
            counts[0],
            counts[50]
        );
        assert!(counts[0] > counts[99] * 10);
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = DetRng::seeded(13);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn singleton_population() {
        let z = Zipf::new(1, 1.5);
        let mut rng = DetRng::seeded(17);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
