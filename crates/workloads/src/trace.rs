//! Reference-trace recording and replay.
//!
//! The paper drives its simulator with traces produced by Abstract
//! Execution. This module provides the equivalent interface for users who
//! have real traces: record any [`RefStream`] to a compact line-oriented
//! text format, and replay a trace file as a [`RefStream`] — including the
//! snapshot/restore support backward error recovery needs (a replayed
//! trace rewinds by position).
//!
//! Format: one reference per line, `pre_cycles kind addr shared`, where
//! `kind` is `R`/`W` and `shared` is `s`/`p`. Lines starting with `#` are
//! comments.
//!
//! # Example
//!
//! ```
//! use ftcoma_workloads::trace::{parse_trace, write_trace, TraceStream};
//! use ftcoma_workloads::{presets, NodeStream, RefStream};
//!
//! let mut gen = NodeStream::new(&presets::water(), 0, 4, 1);
//! let refs: Vec<_> = (0..100).map(|_| gen.next_ref()).collect();
//! let text = write_trace(&refs);
//! let parsed = parse_trace(&text).unwrap();
//! let mut replay = TraceStream::new(parsed);
//! assert_eq!(replay.next_ref(), refs[0]);
//! ```

use ftcoma_mem::Addr;

use crate::stream::{MemRef, RefStream, StreamSnapshot};

/// Serialises references to the trace text format.
pub fn write_trace(refs: &[MemRef]) -> String {
    let mut out = String::with_capacity(refs.len() * 16);
    out.push_str("# ft-coma reference trace v1: pre_cycles kind addr shared\n");
    for r in refs {
        out.push_str(&format!(
            "{} {} {:#x} {}\n",
            r.pre_cycles,
            if r.is_write { 'W' } else { 'R' },
            r.addr.raw(),
            if r.shared { 's' } else { 'p' },
        ));
    }
    out
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses the trace text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<MemRef>, ParseTraceError> {
    let mut refs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: &str| ParseTraceError {
            line: i + 1,
            reason: reason.to_string(),
        };
        let mut parts = line.split_whitespace();
        let pre = parts
            .next()
            .ok_or_else(|| err("missing pre_cycles"))?
            .parse::<u32>()
            .map_err(|_| err("bad pre_cycles"))?;
        let kind = parts.next().ok_or_else(|| err("missing kind"))?;
        let is_write = match kind {
            "R" | "r" => false,
            "W" | "w" => true,
            _ => return Err(err("kind must be R or W")),
        };
        let addr_s = parts.next().ok_or_else(|| err("missing addr"))?;
        let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| err("bad hex addr"))?
        } else {
            addr_s.parse::<u64>().map_err(|_| err("bad addr"))?
        };
        let shared = match parts.next().ok_or_else(|| err("missing shared flag"))? {
            "s" => true,
            "p" => false,
            _ => return Err(err("shared flag must be s or p")),
        };
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        refs.push(MemRef {
            pre_cycles: pre,
            is_write,
            addr: Addr::new(addr),
            shared,
        });
    }
    Ok(refs)
}

/// Replays a recorded trace as a [`RefStream`], looping when exhausted
/// (so a short trace can drive an arbitrarily long run).
#[derive(Debug, Clone)]
pub struct TraceStream {
    refs: Vec<MemRef>,
    pos: usize,
    emitted: u64,
}

impl TraceStream {
    /// Wraps a parsed trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(refs: Vec<MemRef>) -> Self {
        assert!(
            !refs.is_empty(),
            "trace must contain at least one reference"
        );
        Self {
            refs,
            pos: 0,
            emitted: 0,
        }
    }

    /// Number of recorded references before the trace loops.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Always false (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl RefStream for TraceStream {
    fn next_ref(&mut self) -> MemRef {
        let r = self.refs[self.pos];
        self.pos = (self.pos + 1) % self.refs.len();
        self.emitted += 1;
        r
    }

    fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot::for_position(self.pos as u64, self.emitted)
    }

    fn restore(&mut self, snap: &StreamSnapshot) {
        let (pos, emitted) = snap.position();
        self.pos = pos as usize % self.refs.len();
        self.emitted = emitted;
    }

    fn refs_emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::NodeStream;

    fn sample(n: usize) -> Vec<MemRef> {
        let mut s = NodeStream::new(&presets::mp3d(), 1, 4, 9);
        (0..n).map(|_| s.next_ref()).collect()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let refs = sample(500);
        let text = write_trace(&refs);
        assert_eq!(parse_trace(&text).unwrap(), refs);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let parsed = parse_trace("# header\n\n3 W 0x80 s\n  \n0 R 64 p\n").unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].is_write && parsed[0].shared);
        assert_eq!(parsed[0].addr.raw(), 0x80);
        assert!(!parsed[1].is_write && !parsed[1].shared);
        assert_eq!(parsed[1].addr.raw(), 64);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("0 R 0x40 p\n5 X 0x40 p\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("kind"));
        let err = parse_trace("0 R 0x40 p extra\n").unwrap_err();
        assert!(err.reason.contains("trailing"));
    }

    #[test]
    fn replay_loops_and_rewinds() {
        let refs = sample(10);
        let mut t = TraceStream::new(refs.clone());
        for _ in 0..25 {
            t.next_ref();
        }
        assert_eq!(t.refs_emitted(), 25);
        let snap = t.snapshot();
        let a: Vec<_> = (0..15).map(|_| t.next_ref()).collect();
        t.restore(&snap);
        let b: Vec<_> = (0..15).map(|_| t.next_ref()).collect();
        assert_eq!(a, b);
        assert_eq!(a[0], refs[25 % 10]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_trace_rejected() {
        let _ = TraceStream::new(Vec::new());
    }
}
