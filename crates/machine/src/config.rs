//! Machine configuration.

use ftcoma_core::FtConfig;
use ftcoma_mem::{AmGeometry, CacheGeometry};
use ftcoma_net::{NetConfig, NetFaultPlan};
use ftcoma_protocol::transport::RetryPolicy;
use ftcoma_protocol::MemTiming;
use ftcoma_workloads::{presets, SplashConfig};

/// Kind of injected node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The node stops, loses its running computation, and rejoins after
    /// the global rollback with its memory contents intact.
    Transient,
    /// The node is lost for good: memory gone, removed from the ring;
    /// recovery additionally reconfigures (re-replicates orphaned recovery
    /// copies) and the node's work is adopted by its ring successor.
    Permanent,
}

/// Full configuration of a simulated machine run.
///
/// The defaults are the paper's: KSR1-like node (20 MHz, 256 KB cache,
/// 8 MB AM), 4×4-capable mesh parameters, standard protocol, Water
/// workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes (the paper evaluates 9–56; default 16 = 4×4).
    pub nodes: u16,
    /// Memory references each node must complete.
    pub refs_per_node: u64,
    /// The synthetic application driving each node.
    pub workload: SplashConfig,
    /// Fault-tolerance mode and checkpoint frequency.
    pub ft: FtConfig,
    /// Node-local memory timings.
    pub timing: MemTiming,
    /// Network timings (used when `bus` is `None`: the mesh fabric).
    pub net: NetConfig,
    /// Replace the mesh with a split-transaction shared bus (snooping-style
    /// fabric; see `ftcoma_net::bus`). `None` = the paper's mesh.
    pub bus: Option<ftcoma_net::BusConfig>,
    /// Deterministic message-level fault plan (drop/duplicate/delay).
    /// `Some` activates the reliable transport (sequence numbers, acks,
    /// bounded-backoff retries); `None` keeps the exact fault-free fast
    /// path, byte-identical to a machine without this feature.
    pub net_fault: Option<NetFaultPlan>,
    /// Retransmission policy of the reliable transport (RTO base/cap and
    /// the retry budget before escalation). The default reproduces the
    /// historical constants, so fault-free runs — and faulted runs that
    /// don't override it — are byte-identical to before it was a knob.
    pub retry: RetryPolicy,
    /// Attraction-memory geometry.
    pub am: AmGeometry,
    /// Cache geometry.
    pub cache: CacheGeometry,
    /// References per node executed before measurement starts. The paper
    /// collects statistics "during the parallel phase" only; warmup skips
    /// the cold-start where every access is a machine-wide first touch.
    pub warmup_refs_per_node: u64,
    /// Master RNG seed; paired standard/ECP runs must share it.
    pub seed: u64,
    /// Track a committed-value oracle and verify every recovery against it
    /// (costs memory; on by default in tests, off in benches).
    pub verify: bool,
    /// Retain the last N protocol events for post-mortem inspection
    /// (`0` = tracing off; see [`crate::tracelog`]). Also bounds the causal
    /// span ring (see `ftcoma_sim::span`).
    pub trace_capacity: usize,
    /// Emit one time-series sample row every N cycles (`0` = off). Sampling
    /// is pure observation: it never schedules events and cannot perturb
    /// the simulation.
    pub timeseries_every: ftcoma_sim::Cycles,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            refs_per_node: 10_000,
            workload: presets::water(),
            ft: FtConfig::disabled(),
            timing: MemTiming::ksr1(),
            net: NetConfig::default(),
            bus: None,
            net_fault: None,
            retry: RetryPolicy::default(),
            am: AmGeometry::ksr1(),
            cache: CacheGeometry::ksr1(),
            warmup_refs_per_node: 0,
            seed: 0xF7C0_3A11,
            verify: false,
            trace_capacity: 0,
            timeseries_every: 0,
        }
    }
}

impl MachineConfig {
    /// The interconnect selection implied by this configuration.
    pub fn fabric(&self) -> ftcoma_net::FabricConfig {
        match self.bus {
            Some(bus) => ftcoma_net::FabricConfig::Bus(bus),
            None => ftcoma_net::FabricConfig::Mesh(self.net),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two nodes (the ECP needs a second AM
    /// for every recovery copy), no references to run, or inconsistent
    /// sub-configurations.
    pub fn validate(&self) {
        assert!(self.nodes >= 2, "the machine needs at least two nodes");
        // "Four copies are necessary during the create phase" — a modified
        // item needs its two old Inv-CK copies, the Pre-Commit1 original
        // and a Pre-Commit2 replica on four *distinct* nodes (an AM holds
        // at most one copy of an item).
        assert!(
            !self.ft.mode.is_enabled() || self.nodes >= 4,
            "the ECP needs at least four nodes (four copies per modified              item during establishment)"
        );
        assert!(self.refs_per_node > 0, "refs_per_node must be positive");
        if let Err(e) = self.retry.validate() {
            panic!("{e}");
        }
        self.workload.validate();
        self.timing.validate();
        self.am.validate();
        self.cache.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        MachineConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn rejects_single_node() {
        MachineConfig {
            nodes: 1,
            ..Default::default()
        }
        .validate();
    }
}
