//! Protocol event tracing.
//!
//! When enabled ([`crate::MachineConfig::trace_capacity`] > 0), the machine
//! records the last N protocol-level events in a bounded ring buffer —
//! message deliveries, checkpoint phases, failures and repairs — for
//! post-mortem inspection. Tracing never affects simulated timing.
//!
//! # Example
//!
//! ```
//! use ftcoma_machine::{Machine, MachineConfig};
//! use ftcoma_machine::tracelog::TraceEvent;
//! use ftcoma_core::FtConfig;
//! use ftcoma_workloads::presets;
//!
//! let mut m = Machine::new(MachineConfig {
//!     nodes: 4,
//!     refs_per_node: 20_000,
//!     workload: presets::water(),
//!     ft: FtConfig::enabled(400.0),
//!     trace_capacity: 200_000,
//!     ..MachineConfig::default()
//! });
//! m.run();
//! let ckpts = m
//!     .trace()
//!     .iter()
//!     .filter(|e| matches!(e, TraceEvent::CheckpointCommitted { .. }))
//!     .count();
//! assert!(ckpts > 0);
//! ```

use std::collections::VecDeque;

use ftcoma_mem::{ItemId, NodeId};
use ftcoma_sim::Cycles;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A coherence message was delivered.
    Delivery {
        /// Delivery time.
        at: Cycles,
        /// Receiving node.
        to: NodeId,
        /// Message kind (see `Msg::kind`).
        kind: &'static str,
        /// Item concerned.
        item: ItemId,
    },
    /// A recovery-point establishment entered its create phase (all
    /// processors quiesced; item securing begins).
    CheckpointBegun {
        /// Create-phase start time.
        at: Cycles,
        /// Generation number being established.
        gen: u64,
    },
    /// A recovery point committed.
    CheckpointCommitted {
        /// Commit time.
        at: Cycles,
        /// Generation number.
        gen: u64,
    },
    /// One node's commit scan during a recovery-point commit.
    NodeCommit {
        /// Commit start time (shared by all nodes of the checkpoint).
        at: Cycles,
        /// The node.
        node: NodeId,
        /// Scan duration in cycles.
        dur: Cycles,
    },
    /// One node's rollback scan after a failure.
    NodeRollback {
        /// Rollback start time (the failure instant).
        at: Cycles,
        /// The node.
        node: NodeId,
        /// Scan duration in cycles.
        dur: Cycles,
    },
    /// A mesh link was cut (both directions).
    LinkCut {
        /// Cut time.
        at: Cycles,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A mesh router went down (its node becomes unreachable).
    RouterDown {
        /// Failure time.
        at: Cycles,
        /// The node whose router died.
        node: NodeId,
    },
    /// A failure was injected.
    Failure {
        /// Failure time.
        at: Cycles,
        /// Failed node.
        node: NodeId,
        /// Whether the node is gone for good.
        permanent: bool,
    },
    /// A fault landed inside an open recovery window: the in-flight
    /// recovery was abandoned and restarted with the new victim folded
    /// into the failure set. Follows the victim's own `Failure` event.
    RecoveryRestarted {
        /// Restart time (the nested fault's injection time).
        at: Cycles,
        /// The nested fault's victim.
        node: NodeId,
        /// Faults folded into the episode so far (2 = first restart).
        depth: u64,
    },
    /// Recovery (rollback + any reconfiguration) finished.
    Recovered {
        /// Completion time.
        at: Cycles,
    },
    /// A replacement node rejoined.
    Repaired {
        /// Rejoin time.
        at: Cycles,
        /// The node.
        node: NodeId,
    },
    /// A severed mesh link was restored (both directions).
    LinkRepaired {
        /// Repair time.
        at: Cycles,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl TraceEvent {
    /// Event timestamp.
    pub fn at(&self) -> Cycles {
        match self {
            TraceEvent::Delivery { at, .. }
            | TraceEvent::CheckpointBegun { at, .. }
            | TraceEvent::CheckpointCommitted { at, .. }
            | TraceEvent::NodeCommit { at, .. }
            | TraceEvent::NodeRollback { at, .. }
            | TraceEvent::LinkCut { at, .. }
            | TraceEvent::RouterDown { at, .. }
            | TraceEvent::Failure { at, .. }
            | TraceEvent::RecoveryRestarted { at, .. }
            | TraceEvent::Recovered { at }
            | TraceEvent::Repaired { at, .. }
            | TraceEvent::LinkRepaired { at, .. } => *at,
        }
    }

    /// Stable lowercase kind tag, used by the structured exporters.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            TraceEvent::Delivery { .. } => "delivery",
            TraceEvent::CheckpointBegun { .. } => "checkpoint_begun",
            TraceEvent::CheckpointCommitted { .. } => "checkpoint_committed",
            TraceEvent::NodeCommit { .. } => "node_commit",
            TraceEvent::NodeRollback { .. } => "node_rollback",
            TraceEvent::LinkCut { .. } => "link_cut",
            TraceEvent::RouterDown { .. } => "router_down",
            TraceEvent::Failure { .. } => "failure",
            TraceEvent::RecoveryRestarted { .. } => "recovery_restarted",
            TraceEvent::Recovered { .. } => "recovered",
            TraceEvent::Repaired { .. } => "repaired",
            TraceEvent::LinkRepaired { .. } => "link_repaired",
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Delivery { at, to, kind, item } => {
                write!(f, "{at:>12} {to}  <- {kind} {item}")
            }
            TraceEvent::CheckpointBegun { at, gen } => {
                write!(f, "{at:>12} recovery point {gen} create phase begun")
            }
            TraceEvent::CheckpointCommitted { at, gen } => {
                write!(f, "{at:>12} recovery point {gen} committed")
            }
            TraceEvent::NodeCommit { at, node, dur } => {
                write!(f, "{at:>12} {node} commit scan ({dur} cycles)")
            }
            TraceEvent::NodeRollback { at, node, dur } => {
                write!(f, "{at:>12} {node} rollback scan ({dur} cycles)")
            }
            TraceEvent::LinkCut { at, a, b } => {
                write!(f, "{at:>12} link {a}<->{b} cut")
            }
            TraceEvent::RouterDown { at, node } => {
                write!(f, "{at:>12} {node} router down")
            }
            TraceEvent::Failure {
                at,
                node,
                permanent,
            } => {
                write!(
                    f,
                    "{at:>12} {node} failed ({})",
                    if *permanent { "permanent" } else { "transient" }
                )
            }
            TraceEvent::RecoveryRestarted { at, node, depth } => {
                write!(f, "{at:>12} recovery restarted for {node} (depth {depth})")
            }
            TraceEvent::Recovered { at } => write!(f, "{at:>12} recovery complete"),
            TraceEvent::Repaired { at, node } => write!(f, "{at:>12} {node} repaired"),
            TraceEvent::LinkRepaired { at, a, b } => {
                write!(f, "{at:>12} link {a}<->{b} repaired")
            }
        }
    }
}

/// Bounded ring buffer of [`TraceEvent`]s (oldest evicted first).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    cap: usize,
    events: VecDeque<TraceEvent>,
}

impl TraceLog {
    /// Creates a log holding up to `cap` events (`0` disables tracing).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            events: VecDeque::with_capacity(cap.min(4096)),
        }
    }

    /// Is tracing enabled?
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, e: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(e);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the retained events, one per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Cycles) -> TraceEvent {
        TraceEvent::Recovered { at }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for t in 0..5 {
            log.push(ev(t));
        }
        let times: Vec<_> = log.events().map(TraceEvent::at).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn ring_buffer_wraps_exactly_at_capacity() {
        let cap = 4;
        let mut log = TraceLog::new(cap);
        // Fill to exactly `cap`: nothing evicted yet.
        for t in 0..cap as Cycles {
            log.push(ev(t));
        }
        assert_eq!(log.len(), cap);
        assert_eq!(log.events().next().map(TraceEvent::at), Some(0));
        // The (cap+1)-th push evicts exactly the oldest event.
        log.push(ev(cap as Cycles));
        assert_eq!(log.len(), cap);
        let times: Vec<_> = log.events().map(TraceEvent::at).collect();
        assert_eq!(times, vec![1, 2, 3, 4]);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(0);
        log.push(ev(1));
        assert!(log.is_empty());
        assert!(!log.enabled());
    }

    #[test]
    fn render_is_line_per_event() {
        let mut log = TraceLog::new(8);
        log.push(TraceEvent::Failure {
            at: 5,
            node: NodeId::new(2),
            permanent: true,
        });
        log.push(TraceEvent::CheckpointCommitted { at: 9, gen: 3 });
        let text = log.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("n2 failed (permanent)"));
        assert!(text.contains("recovery point 3 committed"));
    }
}
