//! Continuous MTBF/MTTR failure–repair processes.
//!
//! The one-shot injection APIs on [`crate::Machine`] (`schedule_failure`,
//! `schedule_repair`, `schedule_link_cut`, …) model a *scripted* fault: the
//! caller decides exactly when each event happens. Long-horizon
//! availability studies need the opposite: an **unbounded stochastic
//! schedule** where every node and link fails and is repaired over and over
//! with configurable mean-time-between-failures (MTBF) and mean-time-to-
//! repair (MTTR), including overlapping faults and repair-then-refail
//! cycles.
//!
//! [`FaultProcess`] is that schedule generator. It is pure bookkeeping —
//! the machine asks it *when* the next fault-model event is due
//! ([`FaultProcess::next_at`]) and *what* happens there
//! ([`FaultProcess::fire`]), then applies the returned [`FaultAction`]s
//! through the same failure/repair machinery the scripted APIs use. All
//! randomness comes from per-component [`DetRng`] streams derived from the
//! machine seed, drawn with the integer-safe [`DetRng::exp_with`] sampler,
//! so a run is a pure function of its configuration: byte-identical across
//! hosts and `--jobs` levels.
//!
//! Semantics worth knowing:
//!
//! * Node failures are **permanent** (memory lost, ring departure); the
//!   paired repair re-integrates a fresh replacement through the machine's
//!   full rejoin path (router restored, homes migrated back, work
//!   reclaimed). This exercises the interesting ECP machinery; a transient
//!   blip is strictly weaker.
//! * A failure sampled while its target *structurally* cannot fail (the
//!   node is still down awaiting a deferred repair, failing it would
//!   leave fewer than the ECP's four-node establishment floor, or the
//!   kill would partition the live mesh) is **deferred**: the machine
//!   calls [`FaultProcess::defer_node_fail`] and the clock re-arms with a
//!   fresh MTBF draw. Deferral consumes the same single draw a real
//!   failure would, keeping sibling streams aligned. A draw landing
//!   inside an open recovery window is **not** deferred: recovery is
//!   restartable, so the nested fault fires and folds into the episode —
//!   the sampled failure distribution is no longer skewed around
//!   reconfiguration windows.
//! * Link faults pick a random *currently intact* mesh link, cut it, and
//!   schedule its repair one MTTR draw later. With no intact link left the
//!   draw is burned and the process re-arms.

use ftcoma_mem::NodeId;
use ftcoma_sim::{Cycles, DetRng};

/// Which distribution inter-event times are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultDist {
    /// Memoryless exponential inter-arrival times with the configured
    /// mean — the classic MTBF/MTTR failure-repair process (default).
    #[default]
    Exponential,
    /// Every interval is exactly the configured mean. Useful for tests
    /// and worst-case phasing studies (all clocks aligned).
    Fixed,
}

/// Configuration of the continuous failure processes. A mean of `0`
/// disables that process; at least one process must be enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProcessConfig {
    /// Mean cycles between failures of each node (`0` = no node process).
    pub node_mtbf: Cycles,
    /// Mean cycles a failed node stays down before its repair is
    /// requested.
    pub node_mttr: Cycles,
    /// Mean cycles between link cuts, machine-wide (`0` = no link
    /// process).
    pub link_mtbf: Cycles,
    /// Mean cycles a cut link stays down before it is restored.
    pub link_mttr: Cycles,
    /// Inter-event time distribution.
    pub dist: FaultDist,
    /// Absolute cycle the processes start at (first draws are offsets
    /// from here). `0` = from the beginning of the run.
    pub start: Cycles,
}

impl Default for FaultProcessConfig {
    fn default() -> Self {
        Self {
            node_mtbf: 0,
            node_mttr: 0,
            link_mtbf: 0,
            link_mttr: 0,
            dist: FaultDist::Exponential,
            start: 0,
        }
    }
}

impl FaultProcessConfig {
    /// Checks the configuration is usable: every enabled process has a
    /// positive repair mean, and at least one process is enabled.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_mtbf == 0 && self.link_mtbf == 0 {
            return Err(
                "fault process: no process enabled (node_mtbf and link_mtbf both 0)".into(),
            );
        }
        if self.node_mtbf > 0 && self.node_mttr == 0 {
            return Err("fault process: node_mtbf set but node_mttr is 0".into());
        }
        if self.link_mtbf > 0 && self.link_mttr == 0 {
            return Err("fault process: link_mtbf set but link_mttr is 0".into());
        }
        Ok(())
    }
}

/// One fault-model event produced by [`FaultProcess::fire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Permanently fail this node.
    FailNode(NodeId),
    /// Request the repair (rejoin) of this previously failed node.
    RepairNode(NodeId),
    /// Cut this mesh link (both directions).
    CutLink(NodeId, NodeId),
    /// Restore this previously cut mesh link.
    RepairLink(NodeId, NodeId),
}

/// Per-node alternating failure/repair clock.
#[derive(Debug, Clone, Copy)]
enum NodeClock {
    Up { fail_at: Cycles },
    Down { repair_at: Cycles },
}

/// The deterministic continuous failure-process generator. See the module
/// docs for the contract.
#[derive(Debug, Clone)]
pub struct FaultProcess {
    cfg: FaultProcessConfig,
    /// One independent stream per node, so adding or disabling one node's
    /// process never shifts another's schedule.
    node_rng: Vec<DetRng>,
    node_clock: Vec<NodeClock>,
    /// The machine-wide link process stream.
    link_rng: DetRng,
    /// Next link cut (`None` = link process disabled).
    link_fail_at: Option<Cycles>,
    /// The mesh's link universe, as index pairs into `links`.
    links: Vec<(NodeId, NodeId)>,
    /// Which links the *process* has cut (indices into `links`).
    link_down: Vec<bool>,
    /// Pending link repairs: `(repair_at, link index)`.
    link_repairs: Vec<(Cycles, usize)>,
}

impl FaultProcess {
    /// Builds the process for a machine of `nodes` nodes whose mesh links
    /// are `links` (empty when the link process is disabled or the fabric
    /// has no links). `seed` should be derived from the machine seed on a
    /// dedicated stream.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate, or the link process
    /// is enabled with an empty link universe.
    pub fn new(
        cfg: FaultProcessConfig,
        seed: u64,
        nodes: u16,
        links: Vec<(NodeId, NodeId)>,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        assert!(
            cfg.link_mtbf == 0 || !links.is_empty(),
            "link fault process needs a link universe"
        );
        let root = DetRng::seeded(seed);
        let mut node_rng: Vec<DetRng> = (0..nodes).map(|i| root.split(i as u64)).collect();
        let mut link_rng = root.split(0x4C49_4E4B); // "LINK"
        let node_clock = if cfg.node_mtbf > 0 {
            node_rng
                .iter_mut()
                .map(|rng| NodeClock::Up {
                    fail_at: cfg.start + sample(rng, cfg.dist, cfg.node_mtbf),
                })
                .collect()
        } else {
            Vec::new()
        };
        let link_fail_at =
            (cfg.link_mtbf > 0).then(|| cfg.start + sample(&mut link_rng, cfg.dist, cfg.link_mtbf));
        let link_down = vec![false; links.len()];
        Self {
            cfg,
            node_rng,
            node_clock,
            link_rng,
            link_fail_at,
            links,
            link_down,
            link_repairs: Vec::new(),
        }
    }

    /// The absolute time of the earliest pending fault-model event, or
    /// `None` if nothing is armed (cannot happen under a validated
    /// configuration, but kept total for safety).
    pub fn next_at(&self) -> Option<Cycles> {
        let mut next: Option<Cycles> = None;
        let mut consider = |t: Cycles| next = Some(next.map_or(t, |n: Cycles| n.min(t)));
        for clock in &self.node_clock {
            match *clock {
                NodeClock::Up { fail_at } => consider(fail_at),
                NodeClock::Down { repair_at } => consider(repair_at),
            }
        }
        if let Some(t) = self.link_fail_at {
            consider(t);
        }
        for &(t, _) in &self.link_repairs {
            consider(t);
        }
        next
    }

    /// Pops every event due at or before `now`, in deterministic order
    /// (nodes by ascending index, then link repairs by ascending link
    /// index, then the link cut), advancing each popped clock by a fresh
    /// draw. The machine applies the returned actions in order.
    pub fn fire(&mut self, now: Cycles) -> Vec<FaultAction> {
        let mut actions = Vec::new();
        for i in 0..self.node_clock.len() {
            match self.node_clock[i] {
                NodeClock::Up { fail_at } if fail_at <= now => {
                    self.node_clock[i] = NodeClock::Down {
                        repair_at: now
                            + sample(&mut self.node_rng[i], self.cfg.dist, self.cfg.node_mttr),
                    };
                    actions.push(FaultAction::FailNode(NodeId::new(i as u16)));
                }
                NodeClock::Down { repair_at } if repair_at <= now => {
                    self.node_clock[i] = NodeClock::Up {
                        fail_at: now
                            + sample(&mut self.node_rng[i], self.cfg.dist, self.cfg.node_mtbf),
                    };
                    actions.push(FaultAction::RepairNode(NodeId::new(i as u16)));
                }
                _ => {}
            }
        }
        // Due link repairs, by ascending link index for determinism.
        let mut due: Vec<usize> = self
            .link_repairs
            .iter()
            .filter(|&&(t, _)| t <= now)
            .map(|&(_, idx)| idx)
            .collect();
        due.sort_unstable();
        self.link_repairs.retain(|&(t, _)| t > now);
        for idx in due {
            self.link_down[idx] = false;
            let (a, b) = self.links[idx];
            actions.push(FaultAction::RepairLink(a, b));
        }
        if let Some(fail_at) = self.link_fail_at {
            if fail_at <= now {
                // Choose among the still-intact links. The draw happens
                // even when every link is down (the cut is then skipped),
                // so the stream never depends on machine state timing.
                let up: Vec<usize> = (0..self.links.len())
                    .filter(|&i| !self.link_down[i])
                    .collect();
                let pick = self.link_rng.below(self.links.len() as u64) as usize;
                if !up.is_empty() {
                    let idx = up[pick % up.len()];
                    self.link_down[idx] = true;
                    self.link_repairs.push((
                        now + sample(&mut self.link_rng, self.cfg.dist, self.cfg.link_mttr),
                        idx,
                    ));
                    let (a, b) = self.links[idx];
                    actions.push(FaultAction::CutLink(a, b));
                } else {
                    // Burn the MTTR draw a real cut would have consumed.
                    let _ = sample(&mut self.link_rng, self.cfg.dist, self.cfg.link_mttr);
                }
                self.link_fail_at =
                    Some(now + sample(&mut self.link_rng, self.cfg.dist, self.cfg.link_mtbf));
            }
        }
        actions
    }

    /// The machine could not apply a [`FaultAction::FailNode`] for `node`
    /// (it is still down awaiting a deferred repair, failing it would
    /// drop the machine below the ECP's establishment floor, or the kill
    /// would partition the live mesh): put the node
    /// back in the `Up` state and re-arm its failure clock from `now`,
    /// discarding the repair time `fire` had armed for the aborted
    /// failure. Uses the node's own stream, so the deferral stays a pure
    /// function of that node's event sequence.
    pub fn defer_node_fail(&mut self, node: NodeId, now: Cycles) {
        let i = node.index();
        self.node_clock[i] = NodeClock::Up {
            fail_at: now + sample(&mut self.node_rng[i], self.cfg.dist, self.cfg.node_mtbf),
        };
    }

    /// The configuration this process was built from.
    pub fn config(&self) -> &FaultProcessConfig {
        &self.cfg
    }
}

/// One inter-event draw: exponential or fixed, never zero (a zero delay
/// would re-fire in the same cycle forever).
fn sample(rng: &mut DetRng, dist: FaultDist, mean: Cycles) -> Cycles {
    match dist {
        FaultDist::Exponential => rng.exp_with(mean).max(1),
        FaultDist::Fixed => {
            // Fixed mode still consumes one draw so switching distributions
            // never shifts sibling streams.
            let _ = rng.next_u64();
            mean.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn cfg() -> FaultProcessConfig {
        FaultProcessConfig {
            node_mtbf: 10_000,
            node_mttr: 2_000,
            link_mtbf: 8_000,
            link_mttr: 1_000,
            ..FaultProcessConfig::default()
        }
    }

    fn links() -> Vec<(NodeId, NodeId)> {
        vec![(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]
    }

    #[test]
    fn validation_rejects_missing_repair_means() {
        assert!(FaultProcessConfig::default().validate().is_err());
        assert!(FaultProcessConfig {
            node_mtbf: 100,
            ..FaultProcessConfig::default()
        }
        .validate()
        .is_err());
        assert!(FaultProcessConfig {
            link_mtbf: 100,
            ..FaultProcessConfig::default()
        }
        .validate()
        .is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn schedule_alternates_failures_and_repairs_deterministically() {
        let mut a = FaultProcess::new(cfg(), 42, 4, links());
        let mut b = FaultProcess::new(cfg(), 42, 4, links());
        let mut trail = Vec::new();
        for _ in 0..200 {
            let at = a.next_at().expect("always armed");
            assert_eq!(b.next_at(), Some(at));
            let acts = a.fire(at);
            assert_eq!(b.fire(at), acts);
            assert!(!acts.is_empty(), "a due clock must produce its action");
            trail.extend(acts);
        }
        // Every node alternates strictly: fail, repair, fail, ...
        for node in 0..4u16 {
            let mine: Vec<_> = trail
                .iter()
                .filter(|a| {
                    matches!(a, FaultAction::FailNode(x) | FaultAction::RepairNode(x) if *x == n(node))
                })
                .collect();
            assert!(mine.len() > 2, "node {node} saw fault/repair cycles");
            for pair in mine.windows(2) {
                match pair[0] {
                    FaultAction::FailNode(_) => {
                        assert!(matches!(pair[1], FaultAction::RepairNode(_)))
                    }
                    FaultAction::RepairNode(_) => {
                        assert!(matches!(pair[1], FaultAction::FailNode(_)))
                    }
                    _ => unreachable!(),
                }
            }
        }
        // Link cuts only ever hit intact links, repairs only cut ones.
        let mut down = std::collections::BTreeSet::new();
        for act in &trail {
            match act {
                FaultAction::CutLink(a, b) => assert!(down.insert((*a, *b))),
                FaultAction::RepairLink(a, b) => assert!(down.remove(&(*a, *b))),
                _ => {}
            }
        }
    }

    #[test]
    fn deferring_a_failure_rearms_without_a_repair() {
        let mut fp = FaultProcess::new(
            FaultProcessConfig {
                node_mtbf: 1_000,
                node_mttr: 100,
                ..FaultProcessConfig::default()
            },
            7,
            2,
            Vec::new(),
        );
        let at = fp.next_at().unwrap();
        let acts = fp.fire(at);
        let victim = match acts[0] {
            FaultAction::FailNode(v) => v,
            ref other => panic!("expected a failure first, got {other:?}"),
        };
        fp.defer_node_fail(victim, at);
        // The node is Up again: its next event is another failure, not the
        // repair `fire` had armed.
        loop {
            let t = fp.next_at().unwrap();
            let acts = fp.fire(t);
            if let Some(act) = acts
                .iter()
                .find(|a| matches!(a, FaultAction::FailNode(v) | FaultAction::RepairNode(v) if *v == victim))
            {
                assert!(matches!(act, FaultAction::FailNode(_)));
                break;
            }
        }
    }

    #[test]
    fn start_offset_delays_the_first_draws() {
        let base = FaultProcess::new(cfg(), 9, 4, links());
        let offset = FaultProcess::new(
            FaultProcessConfig {
                start: 50_000,
                ..cfg()
            },
            9,
            4,
            links(),
        );
        assert_eq!(offset.next_at().unwrap(), base.next_at().unwrap() + 50_000);
        assert!(offset.next_at().unwrap() >= 50_000);
    }

    #[test]
    fn fixed_distribution_fires_at_exact_multiples() {
        let mut fp = FaultProcess::new(
            FaultProcessConfig {
                node_mtbf: 1_000,
                node_mttr: 200,
                dist: FaultDist::Fixed,
                ..FaultProcessConfig::default()
            },
            1,
            1,
            Vec::new(),
        );
        assert_eq!(fp.next_at(), Some(1_000));
        assert_eq!(fp.fire(1_000), vec![FaultAction::FailNode(n(0))]);
        assert_eq!(fp.next_at(), Some(1_200));
        assert_eq!(fp.fire(1_200), vec![FaultAction::RepairNode(n(0))]);
        assert_eq!(fp.next_at(), Some(2_200));
    }
}
