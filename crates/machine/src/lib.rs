//! The full-system ft-coma machine simulator.
//!
//! This crate assembles every substrate into the machine the paper
//! evaluates: processors driving synthetic SPLASH-like reference streams,
//! sectored caches, attraction memories, the COMA-F coherence engine (in
//! standard or ECP mode), a wormhole-mesh interconnect and the checkpoint /
//! failure machinery — all advanced by one deterministic discrete-event
//! loop.
//!
//! # Quick start
//!
//! ```
//! use ftcoma_machine::{Machine, MachineConfig};
//! use ftcoma_core::FtConfig;
//! use ftcoma_workloads::presets;
//!
//! let cfg = MachineConfig {
//!     nodes: 4,
//!     refs_per_node: 20_000,
//!     workload: presets::water(),
//!     ft: FtConfig::enabled(400.0),
//!     ..MachineConfig::default()
//! };
//! let mut machine = Machine::new(cfg);
//! let metrics = machine.run();
//! assert!(metrics.total_cycles > 0);
//! assert!(metrics.checkpoints > 0);
//! machine.assert_invariants();
//! ```
//!
//! The same configuration with [`FtConfig::disabled`] is the paper's
//! baseline; the harness in `ftcoma-bench` runs both with identical seeds
//! and decomposes the difference into `T_create`, `T_commit` and
//! `T_pollution` exactly as Fig. 3 does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod export;
pub mod faultproc;
pub mod machine;
pub mod metrics;
pub mod probe;
pub mod tracelog;

pub use config::{FailureKind, MachineConfig};
pub use faultproc::{FaultDist, FaultProcess, FaultProcessConfig};
pub use ftcoma_protocol::transport::RetryPolicy;
pub use machine::{Machine, Snapshot};
pub use metrics::{NodeMetrics, PhaseLatency, RunMetrics, TsSample};
