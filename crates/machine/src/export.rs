//! Structured exporters: run metrics as versioned JSON, protocol traces as
//! JSONL and as Chrome trace-event files.
//!
//! Every export carries [`SCHEMA_VERSION`] so downstream tooling can detect
//! incompatible changes. The JSON model is the order-stable
//! [`Json`](ftcoma_sim::Json) tree, so exports are byte-for-byte
//! deterministic for a given run.
//!
//! # Example
//!
//! ```
//! use ftcoma_machine::{export, Machine, MachineConfig};
//! use ftcoma_core::FtConfig;
//! use ftcoma_workloads::presets;
//!
//! let mut m = Machine::new(MachineConfig {
//!     nodes: 4,
//!     refs_per_node: 5_000,
//!     workload: presets::water(),
//!     ft: FtConfig::enabled(400.0),
//!     trace_capacity: 100_000,
//!     ..MachineConfig::default()
//! });
//! let metrics = m.run();
//! let doc = export::metrics_json(&metrics, &m.link_report());
//! assert_eq!(doc.get("schema_version").and_then(|v| v.as_u64()), Some(7));
//! let trace = export::chrome_trace_with_spans(&m.trace(), &m.spans(), 20_000_000.0);
//! assert!(!trace.get("traceEvents").unwrap().as_array().unwrap().is_empty());
//! ```

use ftcoma_net::LinkReport;
use ftcoma_sim::json::Json;
use ftcoma_sim::registry::MetricsRegistry;
use ftcoma_sim::span::{SpanPhase, SpanRecord};
use ftcoma_sim::Cycles;

use crate::metrics::{NodeMetrics, RunMetrics, TsSample};
use crate::tracelog::TraceEvent;

/// Version of the exported JSON schemas. Bump on any breaking change to
/// the key set or meaning of [`metrics_json`], [`trace_jsonl`], the bench
/// harness documents built from [`registry_from`], or the campaign report
/// produced by `ftcoma-campaign`.
///
/// Version history:
/// * 1 — per-run metrics document, JSONL trace, bench documents.
/// * 2 — adds the campaign document (`"kind": "campaign"`, per-cell
///   embedded metrics documents with derived seeds and decompositions);
///   the per-run document keys are unchanged.
/// * 3 — adds structured recovery outcomes: campaign cells gain an
///   `"outcome"` object ([`outcome_json`]), the chaos report
///   (`"kind": "chaos"`) and its counterexample artifacts are introduced,
///   and `ftcoma run --json` gains a top-level `"outcome"` field.
/// * 4 — interconnect fault tolerance: the machine `"net"` object gains
///   `retries`, `timeouts`, `detour_hops` and `dropped_msgs`; per-link rows
///   gain `"alive"`; traces gain `link_cut`/`router_down` events; outcomes
///   gain the `partitioned_network` status.
/// * 5 — causal observability: the per-run document gains `"phases"`
///   (per-phase latency percentiles of the transaction and recovery paths)
///   and `"availability"` (per-node up intervals, MTTR, availability
///   fraction); span ([`spans_jsonl`]) and time-series
///   ([`timeseries_jsonl`]) JSONL exports and Chrome-trace flow events
///   ([`chrome_trace_with_spans`]) are introduced; wall-clock timing moves
///   out of campaign/chaos documents into a `*.timing.json` sidecar, so
///   every document is byte-deterministic without post-processing.
/// * 6 — continuous fault model: the `"availability"` section gains
///   `steady_mttr_cycles` (mean of closed down intervals only) and
///   `curve` (bucketed availability-vs-time rows `{"to", "availability"}`);
///   the `"machine"` section gains `faults_survived` and
///   `faults_unsurvivable`; per-node rows gain `repairs`; traces gain
///   `link_repaired` events; the `continuous` campaign scenario and the
///   chaos report's `"soak"` config flag are introduced.
/// * 7 — restartable recovery: the `unrecoverable_second_fault` outcome is
///   replaced by `unrecoverable_data_loss` (fields `at`/`item`, certified
///   by the per-item copy audit); the `"machine"` section gains
///   `recovery_restarts` and `recovery_max_depth`; the `"phases"` section
///   gains the `restart` histogram (abandoned recovery windows); traces
///   gain `recovery_restarted` events; the `nested` campaign scenario and
///   the chaos report's `"nested"` config flag are introduced.
pub const SCHEMA_VERSION: u64 = 7;

/// Serializes a [`RecoveryOutcome`](ftcoma_core::RecoveryOutcome) as a JSON
/// object: `{"status": <label>}` plus the variant's fields (`at`/`item` for
/// a certified data loss, `at`/`problems` for a violation).
pub fn outcome_json(o: &ftcoma_core::RecoveryOutcome) -> Json {
    use ftcoma_core::RecoveryOutcome;
    let mut pairs = vec![("status".to_string(), Json::from(o.label()))];
    match o {
        RecoveryOutcome::Recovered => {}
        RecoveryOutcome::UnrecoverableDataLoss { at, item } => {
            pairs.push(("at".to_string(), Json::from(*at)));
            pairs.push(("item".to_string(), Json::from(item.index())));
        }
        RecoveryOutcome::InvariantViolation { at, problems } => {
            pairs.push(("at".to_string(), Json::from(*at)));
            pairs.push((
                "problems".to_string(),
                Json::arr(problems.iter().map(|p| Json::from(p.as_str()))),
            ));
        }
        RecoveryOutcome::PartitionedNetwork { at, from, to } => {
            pairs.push(("at".to_string(), Json::from(*at)));
            pairs.push(("from".to_string(), Json::from(from.index())));
            pairs.push(("to".to_string(), Json::from(to.index())));
        }
    }
    Json::Obj(pairs)
}

/// Serializes a full run as one versioned JSON document with machine-wide,
/// per-node and per-link sections.
///
/// `links` comes from [`Machine::link_report`](crate::Machine::link_report)
/// (pass `&[]` when only aggregate network stats are wanted — e.g. for bus
/// fabrics, which have no per-link breakdown).
pub fn metrics_json(m: &RunMetrics, links: &[LinkReport]) -> Json {
    Json::obj([
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("machine", machine_section(m)),
        ("access_latency", latency_section(m)),
        ("phases", phases_section(m)),
        ("availability", availability_section(m)),
        (
            "per_node",
            Json::arr(m.per_node.iter().enumerate().map(|(i, n)| node_row(i, n))),
        ),
        (
            "per_link",
            Json::arr(links.iter().map(|l| link_row(l, m.total_cycles))),
        ),
    ])
}

/// Per-phase latency summaries (p50/p90/p99/mean/max per causal phase).
fn phases_section(m: &RunMetrics) -> Json {
    Json::obj(
        m.phases
            .named()
            .into_iter()
            .map(|(name, h)| (name, h.summary().to_json())),
    )
}

/// The availability timeline: machine-wide MTTR/availability plus per-node
/// up intervals derived from the recorded down intervals.
fn availability_section(m: &RunMetrics) -> Json {
    let down_cycles: u64 = m.per_node.iter().map(|n| n.down_cycles).sum();
    let down_count: u64 = m.per_node.iter().map(|n| n.down_count).sum();
    let per_node = m.per_node.iter().enumerate().map(|(i, n)| {
        let empty = Vec::new();
        let down = m.down_intervals.get(i).unwrap_or(&empty);
        let mut up: Vec<Json> = Vec::new();
        let mut cursor: Cycles = 0;
        for &(from, to) in down {
            if from > cursor {
                up.push(Json::arr([Json::from(cursor), Json::from(from)]));
            }
            cursor = cursor.max(to);
        }
        if cursor < m.total_cycles || down.is_empty() {
            up.push(Json::arr([Json::from(cursor), Json::from(m.total_cycles)]));
        }
        let avail = if m.total_cycles == 0 {
            1.0
        } else {
            1.0 - n.down_cycles as f64 / m.total_cycles as f64
        };
        Json::obj([
            ("node", Json::from(i)),
            ("down_count", Json::from(n.down_count)),
            ("down_cycles", Json::from(n.down_cycles)),
            ("availability", Json::from(avail)),
            ("up", Json::arr(up)),
        ])
    });
    Json::obj([
        ("availability", Json::from(m.availability())),
        ("mttr_cycles", Json::from(m.mttr_cycles())),
        ("steady_mttr_cycles", Json::from(m.steady_mttr_cycles())),
        ("down_count", Json::from(down_count)),
        ("down_cycles", Json::from(down_cycles)),
        (
            "curve",
            Json::arr(
                m.availability_curve(AVAILABILITY_CURVE_BUCKETS)
                    .into_iter()
                    .map(|(to, a)| {
                        Json::obj([("to", Json::from(to)), ("availability", Json::from(a))])
                    }),
            ),
        ),
        ("per_node", Json::arr(per_node)),
    ])
}

/// Windows in the exported availability-vs-time curve. Fixed rather than
/// configurable so documents from different runs line up row-for-row.
const AVAILABILITY_CURVE_BUCKETS: usize = 16;

fn machine_section(m: &RunMetrics) -> Json {
    Json::obj([
        ("nodes", Json::from(m.nodes)),
        ("total_cycles", Json::from(m.total_cycles)),
        ("instructions", Json::from(m.instructions)),
        ("refs", Json::from(m.refs)),
        ("reads", Json::from(m.reads)),
        ("read_misses", Json::from(m.read_misses)),
        ("writes", Json::from(m.writes)),
        ("write_misses", Json::from(m.write_misses)),
        ("cache_read_hits", Json::from(m.cache_read_hits)),
        ("shared_ck_reads", Json::from(m.shared_ck_reads)),
        ("read_miss_rate", Json::from(m.read_miss_rate())),
        ("write_miss_rate", Json::from(m.write_miss_rate())),
        ("checkpoints", Json::from(m.checkpoints)),
        ("t_create", Json::from(m.t_create)),
        ("t_commit", Json::from(m.t_commit)),
        ("t_recovery", Json::from(m.t_recovery)),
        ("failures", Json::from(m.failures)),
        ("repairs", Json::from(m.repairs)),
        ("faults_survived", Json::from(m.faults_survived)),
        ("faults_unsurvivable", Json::from(m.faults_unsurvivable)),
        ("recovery_restarts", Json::from(m.recovery_restarts)),
        ("recovery_max_depth", Json::from(m.recovery_max_depth)),
        ("items_checkpointed", Json::from(m.items_checkpointed)),
        ("reused_replicas", Json::from(m.reused_replicas)),
        ("replication_bytes", Json::from(m.replication_bytes)),
        (
            "injections",
            Json::obj([
                ("replacement", Json::from(m.injections_replacement)),
                ("on_read", Json::from(m.injections_on_read)),
                ("write_inv_ck", Json::from(m.injections_write_inv_ck)),
                ("write_shared_ck", Json::from(m.injections_write_shared_ck)),
                ("total", Json::from(m.injections_total())),
            ]),
        ),
        ("pages_allocated", Json::from(m.pages_allocated)),
        ("pages_peak", Json::from(m.pages_peak)),
        (
            "net",
            Json::obj([
                ("messages", Json::from(m.net_messages)),
                ("contention_cycles", Json::from(m.net_contention_cycles)),
                ("retries", Json::from(m.net_retries)),
                ("timeouts", Json::from(m.net_timeouts)),
                ("detour_hops", Json::from(m.net_detour_hops)),
                ("dropped_msgs", Json::from(m.net_dropped_msgs)),
            ]),
        ),
    ])
}

fn latency_section(m: &RunMetrics) -> Json {
    let mut doc = m.access_latency.summary().to_json();
    if let Json::Obj(pairs) = &mut doc {
        pairs.push((
            "buckets".to_string(),
            Json::arr(
                m.access_latency
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(ub, n)| Json::arr([Json::from(ub), Json::from(n)])),
            ),
        ));
    }
    doc
}

fn node_row(i: usize, n: &NodeMetrics) -> Json {
    Json::obj([
        ("node", Json::from(i)),
        ("refs", Json::from(n.refs)),
        ("read_misses", Json::from(n.read_misses)),
        ("write_misses", Json::from(n.write_misses)),
        ("injections", Json::from(n.injections)),
        ("items_checkpointed", Json::from(n.items_checkpointed)),
        ("replication_bytes", Json::from(n.replication_bytes)),
        ("ckpt_stall_cycles", Json::from(n.ckpt_stall_cycles)),
        ("rollback_cycles", Json::from(n.rollback_cycles)),
        ("pages_allocated", Json::from(n.pages_allocated)),
        ("pages_peak", Json::from(n.pages_peak)),
        ("down_cycles", Json::from(n.down_cycles)),
        ("down_count", Json::from(n.down_count)),
        ("repairs", Json::from(n.repairs)),
    ])
}

fn link_row(l: &LinkReport, total_cycles: Cycles) -> Json {
    Json::obj([
        (
            "from",
            Json::arr([Json::from(l.from.0), Json::from(l.from.1)]),
        ),
        ("to", Json::arr([Json::from(l.to.0), Json::from(l.to.1)])),
        ("class", Json::from(l.class.name())),
        ("alive", Json::from(l.alive)),
        ("messages", Json::from(l.stats.messages)),
        ("busy_cycles", Json::from(l.stats.busy_cycles)),
        ("contention_cycles", Json::from(l.stats.contention_cycles)),
        ("utilization", Json::from(l.utilization(total_cycles))),
    ])
}

/// Flattens a run into labeled counter/gauge series — the uniform
/// representation the bench harness stores alongside its decomposition
/// documents.
pub fn registry_from(m: &RunMetrics) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.counter_add("refs_total", &[], m.refs);
    reg.counter_add("instructions_total", &[], m.instructions);
    reg.counter_add("read_misses_total", &[], m.read_misses);
    reg.counter_add("write_misses_total", &[], m.write_misses);
    reg.counter_add("checkpoints_total", &[], m.checkpoints);
    reg.counter_add("failures_total", &[], m.failures);
    reg.counter_add("repairs_total", &[], m.repairs);
    reg.counter_add("faults_survived_total", &[], m.faults_survived);
    reg.counter_add("faults_unsurvivable_total", &[], m.faults_unsurvivable);
    reg.counter_add("recovery_restarts_total", &[], m.recovery_restarts);
    reg.counter_add("items_checkpointed_total", &[], m.items_checkpointed);
    reg.counter_add("replication_bytes_total", &[], m.replication_bytes);
    reg.counter_add("net_messages_total", &[], m.net_messages);
    reg.counter_add("net_retries_total", &[], m.net_retries);
    reg.counter_add("net_timeouts_total", &[], m.net_timeouts);
    reg.counter_add("net_detour_hops_total", &[], m.net_detour_hops);
    reg.counter_add("net_dropped_msgs_total", &[], m.net_dropped_msgs);
    for (cause, v) in [
        ("replacement", m.injections_replacement),
        ("on_read", m.injections_on_read),
        ("write_inv_ck", m.injections_write_inv_ck),
        ("write_shared_ck", m.injections_write_shared_ck),
    ] {
        reg.counter_add("injections_total", &[("cause", cause)], v);
    }
    reg.gauge_set("read_miss_rate", &[], m.read_miss_rate());
    reg.gauge_set("write_miss_rate", &[], m.write_miss_rate());
    reg.gauge_set("pages_allocated", &[], m.pages_allocated as f64);
    reg.gauge_set("pages_peak", &[], m.pages_peak as f64);
    let s = m.access_latency.summary();
    reg.gauge_set("access_latency_p50", &[], s.p50);
    reg.gauge_set("access_latency_p90", &[], s.p90);
    reg.gauge_set("access_latency_p99", &[], s.p99);
    reg.gauge_set("availability", &[], m.availability());
    reg.gauge_set("mttr_cycles", &[], m.mttr_cycles());
    for (name, h) in m.phases.named() {
        let labels: &[(&str, &str)] = &[("phase", name)];
        let ps = h.summary();
        reg.counter_add("phase_samples_total", labels, ps.count);
        reg.gauge_set("phase_latency_p50", labels, ps.p50);
        reg.gauge_set("phase_latency_p99", labels, ps.p99);
    }
    for (i, n) in m.per_node.iter().enumerate() {
        let id = i.to_string();
        let labels: &[(&str, &str)] = &[("node", id.as_str())];
        reg.counter_add("refs_total", labels, n.refs);
        reg.counter_add("read_misses_total", labels, n.read_misses);
        reg.counter_add("write_misses_total", labels, n.write_misses);
        reg.counter_add("node_injections_total", labels, n.injections);
        reg.counter_add("ckpt_stall_cycles_total", labels, n.ckpt_stall_cycles);
        reg.counter_add("rollback_cycles_total", labels, n.rollback_cycles);
        reg.gauge_set("pages_allocated", labels, n.pages_allocated as f64);
    }
    reg
}

/// One trace event as a flat JSON object (`type` + `at` + variant fields).
pub fn trace_event_json(e: &TraceEvent) -> Json {
    let mut pairs = vec![
        ("type".to_string(), Json::from(e.kind_tag())),
        ("at".to_string(), Json::from(e.at())),
    ];
    match e {
        TraceEvent::Delivery { to, kind, item, .. } => {
            pairs.push(("to".to_string(), Json::from(to.index())));
            pairs.push(("kind".to_string(), Json::from(*kind)));
            pairs.push(("item".to_string(), Json::from(item.index())));
        }
        TraceEvent::CheckpointBegun { gen, .. } | TraceEvent::CheckpointCommitted { gen, .. } => {
            pairs.push(("gen".to_string(), Json::from(*gen)));
        }
        TraceEvent::NodeCommit { node, dur, .. } | TraceEvent::NodeRollback { node, dur, .. } => {
            pairs.push(("node".to_string(), Json::from(node.index())));
            pairs.push(("dur".to_string(), Json::from(*dur)));
        }
        TraceEvent::LinkCut { a, b, .. } | TraceEvent::LinkRepaired { a, b, .. } => {
            pairs.push(("a".to_string(), Json::from(a.index())));
            pairs.push(("b".to_string(), Json::from(b.index())));
        }
        TraceEvent::RouterDown { node, .. } => {
            pairs.push(("node".to_string(), Json::from(node.index())));
        }
        TraceEvent::Failure {
            node, permanent, ..
        } => {
            pairs.push(("node".to_string(), Json::from(node.index())));
            pairs.push(("permanent".to_string(), Json::from(*permanent)));
        }
        TraceEvent::RecoveryRestarted { node, depth, .. } => {
            pairs.push(("node".to_string(), Json::from(node.index())));
            pairs.push(("depth".to_string(), Json::from(*depth)));
        }
        TraceEvent::Recovered { .. } => {}
        TraceEvent::Repaired { node, .. } => {
            pairs.push(("node".to_string(), Json::from(node.index())));
        }
    }
    Json::Obj(pairs)
}

/// Renders a trace as JSON Lines: a `meta` header line carrying
/// [`SCHEMA_VERSION`], then one compact object per event.
pub fn trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("type", Json::from("meta")),
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("events", Json::from(events.len())),
    ]);
    out.push_str(&header.to_string_compact());
    out.push('\n');
    for e in events {
        out.push_str(&trace_event_json(e).to_string_compact());
        out.push('\n');
    }
    out
}

/// One span record as a flat JSON object.
pub fn span_json(s: &SpanRecord) -> Json {
    Json::obj([
        ("id", Json::from(s.id)),
        ("parent", Json::from(s.parent)),
        ("phase", Json::from(s.phase.name())),
        ("node", Json::from(s.node as u64)),
        ("start", Json::from(s.start)),
        ("end", Json::from(s.end)),
    ])
}

/// Renders causal span records as JSON Lines: a `meta` header carrying
/// [`SCHEMA_VERSION`], then one compact object per span ([`span_json`]).
/// This is the input format of `ftcoma trace summarize`.
pub fn spans_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("type", Json::from("meta")),
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("spans", Json::from(spans.len())),
    ]);
    out.push_str(&header.to_string_compact());
    out.push('\n');
    for s in spans {
        out.push_str(&span_json(s).to_string_compact());
        out.push('\n');
    }
    out
}

/// Renders time-series samples as JSON Lines: a `meta` header carrying
/// [`SCHEMA_VERSION`], then one compact row per sample.
pub fn timeseries_jsonl(rows: &[TsSample]) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("type", Json::from("meta")),
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("rows", Json::from(rows.len())),
    ]);
    out.push_str(&header.to_string_compact());
    out.push('\n');
    for r in rows {
        let row = Json::obj([
            ("cycle", Json::from(r.cycle)),
            ("refs", Json::from(r.refs)),
            ("refs_delta", Json::from(r.refs_delta)),
            ("read_misses", Json::from(r.read_misses)),
            ("write_misses", Json::from(r.write_misses)),
            ("in_flight", Json::from(r.in_flight)),
            ("queue_depth", Json::from(r.queue_depth)),
            ("nodes_up", Json::from(r.nodes_up)),
            (
                "nodes_down",
                Json::arr(r.nodes_down.iter().map(|&n| Json::from(n as u64))),
            ),
            ("checkpoints", Json::from(r.checkpoints)),
            ("failures", Json::from(r.failures)),
            ("ckpt_stall_cycles", Json::from(r.ckpt_stall_cycles)),
            ("rollback_cycles", Json::from(r.rollback_cycles)),
        ]);
        out.push_str(&row.to_string_compact());
        out.push('\n');
    }
    out
}

/// The `tid` of the synthetic "network" track carrying per-hop spans.
const NET_TID: u64 = 1_000_000;

/// Converts a trace into the Chrome trace-event format (the JSON object
/// form, `{"traceEvents": [...]}`), viewable in Perfetto or
/// `chrome://tracing`. Equivalent to [`chrome_trace_with_spans`] with no
/// spans.
///
/// Track layout: one process (`pid` 0) with `tid` 0 as the machine-wide
/// coordinator track and `tid` *n*+1 as node *n*'s track. Timestamps are
/// microseconds of simulated time (`cycles / clock_hz * 1e6`). Create and
/// recovery phases become complete (`"X"`) spans by pairing their begin /
/// end events; per-node commit and rollback scans become `"X"` spans on
/// the node tracks; deliveries, failures and repairs are instants (`"i"`).
pub fn chrome_trace(events: &[TraceEvent], clock_hz: f64) -> Json {
    chrome_trace_with_spans(events, &[], clock_hz)
}

/// [`chrome_trace`] plus causal span records: each span becomes a complete
/// (`"X"`) slice — roots on their node's track, network hops on a synthetic
/// "network" track — and every root span additionally emits a flow
/// (`"s"`/`"t"`/`"f"` rows sharing the span id), so Perfetto draws
/// end-to-end arrows from a transaction's start through each leg to its
/// completion (and likewise across a recovery's phases).
pub fn chrome_trace_with_spans(events: &[TraceEvent], spans: &[SpanRecord], clock_hz: f64) -> Json {
    let us = |c: Cycles| c as f64 * 1e6 / clock_hz;
    let mut rows: Vec<Json> = Vec::new();
    let mut tids_seen: Vec<u64> = Vec::new();
    let note_tid = |t: u64, v: &mut Vec<u64>| {
        if !v.contains(&t) {
            v.push(t);
        }
    };
    let complete = |name: &str, ts: f64, dur: f64, tid: u64, args: Json| {
        Json::obj([
            ("name", Json::from(name)),
            ("ph", Json::from("X")),
            ("ts", Json::from(ts)),
            ("dur", Json::from(dur)),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(tid)),
            ("args", args),
        ])
    };
    let instant = |name: &str, ts: f64, tid: u64, args: Json| {
        Json::obj([
            ("name", Json::from(name)),
            ("ph", Json::from("i")),
            ("ts", Json::from(ts)),
            ("s", Json::from("t")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(tid)),
            ("args", args),
        ])
    };

    // Open create/recovery spans are closed by their matching end events;
    // a begin whose end fell outside the ring buffer degrades to nothing,
    // an end without a begin degrades to an instant.
    let mut open_create: Option<(f64, u64)> = None;
    let mut open_recovery: Option<f64> = None;
    for e in events {
        match e {
            TraceEvent::Delivery { at, to, kind, item } => {
                let tid = to.index() as u64 + 1;
                note_tid(tid, &mut tids_seen);
                rows.push(instant(
                    kind,
                    us(*at),
                    tid,
                    Json::obj([("item", Json::from(item.index()))]),
                ));
            }
            TraceEvent::CheckpointBegun { at, gen } => {
                open_create = Some((us(*at), *gen));
            }
            TraceEvent::CheckpointCommitted { at, gen } => {
                note_tid(0, &mut tids_seen);
                let args = Json::obj([("gen", Json::from(*gen))]);
                match open_create.take() {
                    Some((ts, g)) if g == *gen => {
                        rows.push(complete("checkpoint create", ts, us(*at) - ts, 0, args));
                    }
                    _ => rows.push(instant("checkpoint committed", us(*at), 0, args)),
                }
            }
            TraceEvent::NodeCommit { at, node, dur } => {
                let tid = node.index() as u64 + 1;
                note_tid(tid, &mut tids_seen);
                rows.push(complete(
                    "commit scan",
                    us(*at),
                    us(*dur),
                    tid,
                    Json::Obj(Vec::new()),
                ));
            }
            TraceEvent::NodeRollback { at, node, dur } => {
                let tid = node.index() as u64 + 1;
                note_tid(tid, &mut tids_seen);
                rows.push(complete(
                    "rollback scan",
                    us(*at),
                    us(*dur),
                    tid,
                    Json::Obj(Vec::new()),
                ));
            }
            TraceEvent::LinkCut { at, a, b } => {
                note_tid(0, &mut tids_seen);
                rows.push(instant(
                    "link cut",
                    us(*at),
                    0,
                    Json::obj([("a", Json::from(a.index())), ("b", Json::from(b.index()))]),
                ));
            }
            TraceEvent::RouterDown { at, node } => {
                let tid = node.index() as u64 + 1;
                note_tid(tid, &mut tids_seen);
                rows.push(instant("router down", us(*at), tid, Json::Obj(Vec::new())));
            }
            TraceEvent::Failure {
                at,
                node,
                permanent,
            } => {
                note_tid(0, &mut tids_seen);
                // A failure with a recovery window still open is a nested
                // fault: the in-flight recovery is abandoned here and the
                // follow-up `RecoveryRestarted` event opens a fresh window.
                if let Some(ts) = open_recovery.take() {
                    rows.push(complete(
                        "recovery (abandoned)",
                        ts,
                        us(*at) - ts,
                        0,
                        Json::Obj(Vec::new()),
                    ));
                }
                open_recovery = Some(us(*at));
                rows.push(instant(
                    "failure",
                    us(*at),
                    0,
                    Json::obj([
                        ("node", Json::from(node.index())),
                        ("permanent", Json::from(*permanent)),
                    ]),
                ));
            }
            TraceEvent::RecoveryRestarted { at, node, depth } => {
                note_tid(0, &mut tids_seen);
                rows.push(instant(
                    "recovery restarted",
                    us(*at),
                    0,
                    Json::obj([
                        ("node", Json::from(node.index())),
                        ("depth", Json::from(*depth)),
                    ]),
                ));
            }
            TraceEvent::Recovered { at } => {
                note_tid(0, &mut tids_seen);
                match open_recovery.take() {
                    Some(ts) => rows.push(complete(
                        "recovery",
                        ts,
                        us(*at) - ts,
                        0,
                        Json::Obj(Vec::new()),
                    )),
                    None => rows.push(instant("recovered", us(*at), 0, Json::Obj(Vec::new()))),
                }
            }
            TraceEvent::Repaired { at, node } => {
                let tid = node.index() as u64 + 1;
                note_tid(tid, &mut tids_seen);
                rows.push(instant("repaired", us(*at), tid, Json::Obj(Vec::new())));
            }
            TraceEvent::LinkRepaired { at, a, b } => {
                note_tid(0, &mut tids_seen);
                rows.push(instant(
                    "link repaired",
                    us(*at),
                    0,
                    Json::obj([("a", Json::from(a.index())), ("b", Json::from(b.index()))]),
                ));
            }
        }
    }

    // Causal spans: one complete slice per record, plus a flow per root
    // span so viewers draw arrows across the decomposition.
    let span_tid = |s: &SpanRecord| {
        if s.phase == SpanPhase::NetHop {
            NET_TID
        } else {
            s.node as u64 + 1
        }
    };
    for s in spans {
        let tid = span_tid(s);
        note_tid(tid, &mut tids_seen);
        rows.push(complete(
            s.phase.name(),
            us(s.start),
            us(s.end - s.start),
            tid,
            Json::obj([("span", Json::from(s.id)), ("parent", Json::from(s.parent))]),
        ));
    }
    let flow = |ph: &str, name: &str, id: u64, ts: f64, tid: u64| {
        let mut pairs = vec![
            ("name".to_string(), Json::from(name)),
            ("cat".to_string(), Json::from(name)),
            ("ph".to_string(), Json::from(ph)),
            ("id".to_string(), Json::from(id)),
            ("ts".to_string(), Json::from(ts)),
            ("pid".to_string(), Json::from(0u64)),
            ("tid".to_string(), Json::from(tid)),
        ];
        if ph == "f" {
            // Bind the arrow to the enclosing slice's end.
            pairs.push(("bp".to_string(), Json::from("e")));
        }
        Json::Obj(pairs)
    };
    for root in spans.iter().filter(|s| s.parent == 0) {
        let name = root.phase.name();
        let root_tid = span_tid(root);
        rows.push(flow("s", name, root.id, us(root.start), root_tid));
        for child in spans.iter().filter(|c| c.parent == root.id) {
            rows.push(flow("t", name, root.id, us(child.end), span_tid(child)));
        }
        rows.push(flow("f", name, root.id, us(root.end), root_tid));
    }

    // Metadata rows name the tracks; emitted first so viewers label
    // every track before its first event.
    tids_seen.sort_unstable();
    let mut all: Vec<Json> = Vec::with_capacity(rows.len() + tids_seen.len() + 1);
    all.push(Json::obj([
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::from(0u64)),
        ("args", Json::obj([("name", Json::from("ftcoma"))])),
    ]));
    for tid in tids_seen {
        let label = if tid == 0 {
            "machine".to_string()
        } else if tid == NET_TID {
            "network".to_string()
        } else {
            format!("node {}", tid - 1)
        };
        all.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(tid)),
            ("args", Json::obj([("name", Json::from(label))])),
        ]));
    }
    all.extend(rows);
    Json::obj([
        ("traceEvents", Json::arr(all)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj([("schema_version", Json::from(SCHEMA_VERSION))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_mem::{ItemId, NodeId};

    fn sample_metrics() -> RunMetrics {
        let mut m = RunMetrics {
            total_cycles: 10_000,
            refs: 5_000,
            reads: 3_000,
            read_misses: 300,
            writes: 2_000,
            write_misses: 100,
            checkpoints: 4,
            nodes: 2,
            per_node: vec![
                NodeMetrics {
                    refs: 2_500,
                    read_misses: 150,
                    ..Default::default()
                },
                NodeMetrics {
                    refs: 2_500,
                    read_misses: 150,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        for v in [1, 10, 100, 1000] {
            m.access_latency.record(v);
        }
        m
    }

    #[test]
    fn metrics_json_has_versioned_sections() {
        let doc = metrics_json(&sample_metrics(), &[]);
        assert_eq!(
            doc.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
        let machine = doc.get("machine").unwrap();
        assert_eq!(machine.get("refs").and_then(|v| v.as_u64()), Some(5_000));
        assert!(
            machine
                .get("read_miss_rate")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
        assert_eq!(doc.get("per_node").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("per_link").unwrap().as_array().unwrap().is_empty());
        let lat = doc.get("access_latency").unwrap();
        for k in ["count", "mean", "p50", "p90", "p99", "max", "buckets"] {
            assert!(lat.get(k).is_some(), "missing latency key {k}");
        }
        // Round-trips through the parser.
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
    }

    #[test]
    fn registry_covers_machine_and_node_series() {
        let reg = registry_from(&sample_metrics());
        assert_eq!(reg.counter("refs_total", &[]), Some(5_000));
        assert_eq!(reg.counter("refs_total", &[("node", "1")]), Some(2_500));
        assert!(reg.gauge("access_latency_p99", &[]).is_some());
    }

    #[test]
    fn trace_jsonl_is_one_object_per_line() {
        let events = vec![
            TraceEvent::Delivery {
                at: 5,
                to: NodeId::new(1),
                kind: "ReadReq",
                item: ItemId::new(7),
            },
            TraceEvent::CheckpointCommitted { at: 9, gen: 1 },
        ];
        let text = trace_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // meta header + 2 events
        for line in &lines {
            let obj = Json::parse(line).unwrap();
            assert!(obj.get("type").is_some());
        }
        assert_eq!(
            Json::parse(lines[0])
                .unwrap()
                .get("schema_version")
                .and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            Json::parse(lines[1])
                .unwrap()
                .get("to")
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn chrome_trace_pairs_phase_spans() {
        let events = vec![
            TraceEvent::CheckpointBegun { at: 100, gen: 1 },
            TraceEvent::NodeCommit {
                at: 140,
                node: NodeId::new(0),
                dur: 20,
            },
            TraceEvent::CheckpointCommitted { at: 140, gen: 1 },
            TraceEvent::Failure {
                at: 500,
                node: NodeId::new(1),
                permanent: false,
            },
            TraceEvent::Recovered { at: 900 },
        ];
        let doc = chrome_trace(&events, 20_000_000.0);
        let rows = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Every row has the mandatory keys.
        for r in rows {
            assert!(r.get("ph").is_some() && r.get("pid").is_some());
        }
        let spans: Vec<_> = rows
            .iter()
            .filter(|r| r.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .collect();
        let names: Vec<_> = spans
            .iter()
            .map(|r| r.get("name").and_then(|v| v.as_str()).unwrap())
            .collect();
        assert!(names.contains(&"checkpoint create"));
        assert!(names.contains(&"commit scan"));
        assert!(names.contains(&"recovery"));
        // 100 cycles at 20 MHz = 5 µs.
        let create = spans
            .iter()
            .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("checkpoint create"))
            .unwrap();
        assert_eq!(create.get("ts").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(create.get("dur").and_then(|v| v.as_f64()), Some(2.0));
        // Metadata names both tracks.
        assert!(rows.iter().any(|r| {
            r.get("ph").and_then(|v| v.as_str()) == Some("M")
                && r.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    == Some("node 0")
        }));
    }

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: 0,
                phase: SpanPhase::Transaction,
                node: 0,
                start: 100,
                end: 300,
            },
            SpanRecord {
                id: 2,
                parent: 1,
                phase: SpanPhase::DirLookup,
                node: 1,
                start: 100,
                end: 180,
            },
            SpanRecord {
                id: 3,
                parent: 1,
                phase: SpanPhase::NetHop,
                node: 1,
                start: 105,
                end: 120,
            },
            SpanRecord {
                id: 4,
                parent: 1,
                phase: SpanPhase::DataReply,
                node: 0,
                start: 180,
                end: 300,
            },
        ]
    }

    #[test]
    fn metrics_json_reports_phases_and_availability() {
        let mut m = sample_metrics();
        m.phases.dir_lookup.record(80);
        m.phases.data_reply.record(120);
        m.per_node[1].down_cycles = 2_000;
        m.per_node[1].down_count = 1;
        m.down_intervals = vec![Vec::new(), vec![(3_000, 5_000)]];
        let doc = metrics_json(&m, &[]);
        let phases = doc.get("phases").unwrap();
        for k in [
            "dir_lookup",
            "home_fwd",
            "data_reply",
            "detection",
            "rollback",
            "reconfiguration",
            "replay",
            "restart",
        ] {
            let p = phases.get(k).unwrap_or_else(|| panic!("missing phase {k}"));
            for stat in ["count", "p50", "p90", "p99", "max"] {
                assert!(p.get(stat).is_some(), "phase {k} missing {stat}");
            }
        }
        assert_eq!(
            phases
                .get("dir_lookup")
                .and_then(|p| p.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        let avail = doc.get("availability").unwrap();
        assert_eq!(avail.get("down_count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            avail.get("mttr_cycles").and_then(|v| v.as_f64()),
            Some(2_000.0)
        );
        let rows = avail.get("per_node").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        // Node 1 was down in [3000, 5000): two up intervals around it.
        let ups = rows[1].get("up").unwrap().as_array().unwrap();
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[0].as_array().unwrap()[1].as_u64(), Some(3_000));
        assert_eq!(ups[1].as_array().unwrap()[0].as_u64(), Some(5_000));
        // Node 0 never went down: one full-run up interval.
        let ups0 = rows[0].get("up").unwrap().as_array().unwrap();
        assert_eq!(ups0.len(), 1);
        assert_eq!(ups0[0].as_array().unwrap()[0].as_u64(), Some(0));
        assert_eq!(ups0[0].as_array().unwrap()[1].as_u64(), Some(10_000));
    }

    #[test]
    fn spans_jsonl_round_trips() {
        let text = spans_jsonl(&sample_spans());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // meta + 4 spans
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(
            meta.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
        let first = Json::parse(lines[1]).unwrap();
        assert_eq!(
            first.get("phase").and_then(|v| v.as_str()),
            Some("transaction")
        );
        assert_eq!(first.get("id").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(first.get("parent").and_then(|v| v.as_u64()), Some(0));
    }

    #[test]
    fn timeseries_jsonl_emits_one_row_per_sample() {
        let rows = vec![
            TsSample {
                cycle: 5_000,
                refs: 120,
                refs_delta: 120,
                nodes_up: 4,
                ..Default::default()
            },
            TsSample {
                cycle: 10_000,
                refs: 260,
                refs_delta: 140,
                nodes_up: 3,
                nodes_down: vec![2],
                failures: 1,
                ..Default::default()
            },
        ];
        let text = timeseries_jsonl(&rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let second = Json::parse(lines[2]).unwrap();
        assert_eq!(second.get("refs_delta").and_then(|v| v.as_u64()), Some(140));
        assert_eq!(
            second.get("nodes_down").unwrap().as_array().unwrap()[0].as_u64(),
            Some(2)
        );
    }

    #[test]
    fn chrome_trace_with_spans_emits_slices_and_flows() {
        let doc = chrome_trace_with_spans(&[], &sample_spans(), 20_000_000.0);
        let rows = doc.get("traceEvents").unwrap().as_array().unwrap();
        let slices: Vec<_> = rows
            .iter()
            .filter(|r| r.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 4, "one slice per span");
        // The NetHop slice lands on the synthetic network track.
        let hop = slices
            .iter()
            .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("net_hop"))
            .unwrap();
        assert_eq!(hop.get("tid").and_then(|v| v.as_u64()), Some(NET_TID));
        // One flow per root: start + one step per child + finish.
        let phs = |p: &str| {
            rows.iter()
                .filter(|r| r.get("ph").and_then(|v| v.as_str()) == Some(p))
                .count()
        };
        assert_eq!(phs("s"), 1);
        assert_eq!(phs("t"), 3);
        assert_eq!(phs("f"), 1);
        let finish = rows
            .iter()
            .find(|r| r.get("ph").and_then(|v| v.as_str()) == Some("f"))
            .unwrap();
        assert_eq!(finish.get("bp").and_then(|v| v.as_str()), Some("e"));
        assert_eq!(finish.get("id").and_then(|v| v.as_u64()), Some(1));
        // The network track is named.
        assert!(rows.iter().any(|r| {
            r.get("ph").and_then(|v| v.as_str()) == Some("M")
                && r.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
                    == Some("network")
        }));
    }

    #[test]
    fn chrome_trace_unpaired_end_degrades_to_instant() {
        let events = vec![TraceEvent::CheckpointCommitted { at: 200, gen: 3 }];
        let doc = chrome_trace(&events, 20_000_000.0);
        let rows = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(rows.iter().any(|r| {
            r.get("ph").and_then(|v| v.as_str()) == Some("i")
                && r.get("name").and_then(|v| v.as_str()) == Some("checkpoint committed")
        }));
    }
}
