//! Run metrics: everything the paper's figures report.

use ftcoma_sim::stats::Histogram;
use ftcoma_sim::Cycles;

/// Per-node breakdown of one machine run.
///
/// One entry per node slot (dead nodes keep their entry so indices stay
/// aligned with [`NodeId`](ftcoma_mem::NodeId) indices). Counters follow the
/// node's processor and attraction memory; machine-global costs (create
/// stalls, recovery) are charged to every node that stalled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Memory references issued by this node's processor.
    pub refs: u64,
    /// Load misses that stalled this processor.
    pub read_misses: u64,
    /// Store misses/upgrades that stalled this processor.
    pub write_misses: u64,
    /// Runtime injections this node originated (all causes).
    pub injections: u64,
    /// Items this node secured during create phases.
    pub items_checkpointed: u64,
    /// Recovery bytes this node physically sent during create phases.
    pub replication_bytes: u64,
    /// Cycles this node's processor was stopped for checkpoint
    /// establishment (create stall + its own commit scan).
    pub ckpt_stall_cycles: Cycles,
    /// Cycles this node's processor was stopped rolling back after
    /// failures (its own rollback scan).
    pub rollback_cycles: Cycles,
    /// Pages allocated in this node's attraction memory at the end of the
    /// run (0 for dead nodes).
    pub pages_allocated: u64,
    /// Peak page allocation in this node's attraction memory.
    pub pages_peak: u64,
    /// Cycles this node spent down (from failure injection until the end of
    /// the recovery that revived it, or until repair / end of run for
    /// permanent failures).
    pub down_cycles: Cycles,
    /// Failures injected on this node.
    pub down_count: u64,
    /// Times this node was repaired and re-integrated after a permanent
    /// failure.
    pub repairs: u64,
}

impl NodeMetrics {
    /// Counters accumulated since `base`; the page-allocation gauges keep
    /// their current values.
    pub fn delta_since(&self, base: &NodeMetrics) -> NodeMetrics {
        NodeMetrics {
            refs: self.refs - base.refs,
            read_misses: self.read_misses - base.read_misses,
            write_misses: self.write_misses - base.write_misses,
            injections: self.injections - base.injections,
            items_checkpointed: self.items_checkpointed - base.items_checkpointed,
            replication_bytes: self.replication_bytes - base.replication_bytes,
            ckpt_stall_cycles: self.ckpt_stall_cycles - base.ckpt_stall_cycles,
            rollback_cycles: self.rollback_cycles - base.rollback_cycles,
            pages_allocated: self.pages_allocated,
            pages_peak: self.pages_peak,
            down_cycles: self.down_cycles - base.down_cycles,
            down_count: self.down_count - base.down_count,
            repairs: self.repairs - base.repairs,
        }
    }

    /// Total misses (loads + stores).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }
}

/// One sample row of the streaming time-series telemetry
/// ([`MachineConfig::timeseries_every`](crate::MachineConfig)).
///
/// Counters (`refs`, misses, `checkpoints`, …) are cumulative machine-wide
/// totals as of `cycle`; `refs_delta` is the per-interval difference so a
/// rate needs no neighbouring row. Rows are pure observation: sampling
/// never schedules events, so enabling it cannot perturb the simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TsSample {
    /// Sample time (absolute cycles).
    pub cycle: Cycles,
    /// Memory references completed so far.
    pub refs: u64,
    /// References completed since the previous sample.
    pub refs_delta: u64,
    /// Load misses so far.
    pub read_misses: u64,
    /// Store misses so far.
    pub write_misses: u64,
    /// Coherence transactions in flight (stalled processors + undelivered
    /// messages).
    pub in_flight: u64,
    /// Events pending in the simulation queue.
    pub queue_depth: u64,
    /// Live nodes.
    pub nodes_up: u64,
    /// Node ids currently down (failed and not yet recovered/repaired).
    pub nodes_down: Vec<u16>,
    /// Recovery points committed so far.
    pub checkpoints: u64,
    /// Failures injected so far.
    pub failures: u64,
    /// Total processor cycles lost to checkpoint stalls so far.
    pub ckpt_stall_cycles: Cycles,
    /// Total processor cycles lost to rollback scans so far.
    pub rollback_cycles: Cycles,
}

/// Per-phase latency distributions of the transaction and recovery paths.
///
/// Each histogram records the duration (in cycles) of one causal phase:
/// the three legs of a remote coherence transaction (request travelling to
/// the item's home, a forward to the current owner, and the data reply) and
/// the four stages of failure handling (detection, per-node rollback scans,
/// reconfiguration, and the replay window until the next commit). These are
/// always recorded — they are part of [`RunMetrics`] and therefore covered
/// by the zero-cost-tracing invariant (identical whether span capture is on
/// or off).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseLatency {
    /// Request leg: requester → home (localization-pointer lookup).
    pub dir_lookup: Histogram,
    /// Forward leg: home → current owner.
    pub home_fwd: Histogram,
    /// Data leg: owner/home → requester.
    pub data_reply: Histogram,
    /// Failure-detection time (zero under the fail-stop model).
    pub detection: Histogram,
    /// Per-node rollback scans (one sample per surviving node per failure).
    pub rollback: Histogram,
    /// Reconfiguration window (failure → machine ready to resume).
    pub reconfiguration: Histogram,
    /// Replay window (recovery end → next commit re-covers lost work).
    pub replay: Histogram,
    /// Abandoned recovery windows: one sample per restart, recording how
    /// far the abandoned attempt had progressed (its failure → the nested
    /// fault that restarted it).
    pub restart: Histogram,
}

impl PhaseLatency {
    /// Per-histogram [`Histogram::delta_since`].
    pub fn delta_since(&self, base: &PhaseLatency) -> PhaseLatency {
        PhaseLatency {
            dir_lookup: self.dir_lookup.delta_since(&base.dir_lookup),
            home_fwd: self.home_fwd.delta_since(&base.home_fwd),
            data_reply: self.data_reply.delta_since(&base.data_reply),
            detection: self.detection.delta_since(&base.detection),
            rollback: self.rollback.delta_since(&base.rollback),
            reconfiguration: self.reconfiguration.delta_since(&base.reconfiguration),
            replay: self.replay.delta_since(&base.replay),
            restart: self.restart.delta_since(&base.restart),
        }
    }

    /// (name, histogram) pairs in stable export order.
    pub fn named(&self) -> [(&'static str, &Histogram); 8] {
        [
            ("dir_lookup", &self.dir_lookup),
            ("home_fwd", &self.home_fwd),
            ("data_reply", &self.data_reply),
            ("detection", &self.detection),
            ("rollback", &self.rollback),
            ("reconfiguration", &self.reconfiguration),
            ("replay", &self.replay),
            ("restart", &self.restart),
        ]
    }

    /// Merges another run's distributions into this one (bucket-wise).
    pub fn merge(&mut self, other: &PhaseLatency) {
        self.dir_lookup.merge(&other.dir_lookup);
        self.home_fwd.merge(&other.home_fwd);
        self.data_reply.merge(&other.data_reply);
        self.detection.merge(&other.detection);
        self.rollback.merge(&other.rollback);
        self.reconfiguration.merge(&other.reconfiguration);
        self.replay.merge(&other.replay);
        self.restart.merge(&other.restart);
    }
}

/// Aggregated measurements of one machine run.
///
/// The execution-time decomposition follows §4.2.3 of the paper:
/// `T_ft = T_standard + T_create + T_commit + T_pollution`, where the first
/// three terms are measured directly ([`RunMetrics::total_cycles`],
/// [`RunMetrics::t_create`], [`RunMetrics::t_commit`]) and `T_pollution` is
/// computed by the harness from a paired standard-protocol run with the
/// same seed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Total simulated execution time.
    pub total_cycles: Cycles,
    /// Instructions executed (memory references + compute gaps, including
    /// any re-execution after rollbacks).
    pub instructions: u64,
    /// Memory references completed.
    pub refs: u64,
    /// Loads issued / load misses (stalled loads).
    pub reads: u64,
    /// Load misses requiring a coherence transaction.
    pub read_misses: u64,
    /// Stores issued.
    pub writes: u64,
    /// Store misses/upgrades requiring a coherence transaction.
    pub write_misses: u64,
    /// Loads served by the processor cache.
    pub cache_read_hits: u64,
    /// Loads served by a local `Shared-CK` recovery copy.
    pub shared_ck_reads: u64,

    /// Recovery points committed.
    pub checkpoints: u64,
    /// Total cycles spent in create phases (global stall windows).
    pub t_create: Cycles,
    /// Total cycles spent in commit phases (worst node per checkpoint).
    pub t_commit: Cycles,
    /// Total cycles spent recovering from failures.
    pub t_recovery: Cycles,
    /// Failures injected.
    pub failures: u64,
    /// Permanently failed nodes repaired and re-integrated.
    pub repairs: u64,
    /// Failures whose recovery ran to completion (reconfiguration done,
    /// verification — when enabled — passed). A restarted recovery
    /// credits every fault folded into the episode when it completes.
    pub faults_survived: u64,
    /// Failures whose copy-accounting audit certified a data loss (some
    /// written committed item retained zero live copies) and halted the
    /// machine. At most 1 per run, since such a fault is terminal.
    pub faults_unsurvivable: u64,
    /// Recovery restarts: faults that landed inside an open recovery
    /// window, abandoned the in-flight recovery and re-entered it with
    /// the new victim folded in.
    pub recovery_restarts: u64,
    /// Deepest recovery episode of the run: the most faults ever folded
    /// into one recovery before it completed (1 = no nesting, 0 = no
    /// faults). A gauge — kept intact by [`RunMetrics::delta_since`].
    pub recovery_max_depth: u64,

    /// Items secured per create phase, totalled.
    pub items_checkpointed: u64,
    /// Items secured by re-labelling an existing replica (no transfer).
    pub reused_replicas: u64,
    /// Bytes of recovery data physically transferred during create phases.
    pub replication_bytes: u64,

    /// Runtime injections by trigger.
    pub injections_replacement: u64,
    /// Injections caused by read faults on `Inv-CK` copies.
    pub injections_on_read: u64,
    /// Injections caused by write faults on `Inv-CK` copies.
    pub injections_write_inv_ck: u64,
    /// Injections caused by write faults on `Shared-CK` copies.
    pub injections_write_shared_ck: u64,

    /// Sum over nodes of pages allocated at the end of the run (Fig. 7's
    /// memory-overhead numerator).
    pub pages_allocated: u64,
    /// Sum over nodes of the peak page allocation.
    pub pages_peak: u64,

    /// Network messages sent.
    pub net_messages: u64,
    /// Cycles messages spent waiting for busy links.
    pub net_contention_cycles: Cycles,
    /// Transport retransmissions (timer expired, packet resent).
    pub net_retries: u64,
    /// Transport retry-timer expirations with the ack still outstanding
    /// (counts the final, escalating expiration too, unlike `net_retries`).
    pub net_timeouts: u64,
    /// Extra hops taken beyond the Manhattan distance because fault-aware
    /// routing detoured around failed links or routers.
    pub net_detour_hops: u64,
    /// Messages the fault plan dropped in flight, plus send attempts
    /// refused because no healthy route existed.
    pub net_dropped_msgs: u64,

    /// Number of nodes in the run (for per-node normalisation).
    pub nodes: u64,

    /// Per-node breakdown, indexed by node id (empty when the machine has
    /// not run; one entry per node slot afterwards, dead nodes included).
    pub per_node: Vec<NodeMetrics>,

    /// Distribution of memory-access completion latencies (cycles), from
    /// 1-cycle cache hits to stalled coherence transactions.
    pub access_latency: Histogram,

    /// Per-phase latency distributions of the transaction and recovery
    /// paths (always on; see [`PhaseLatency`]).
    pub phases: PhaseLatency,

    /// Per-node down intervals `(from, to)` in absolute cycles, indexed by
    /// node id (empty until the machine has run). Like the page gauges,
    /// these describe the whole run's timeline and are kept intact by
    /// [`RunMetrics::delta_since`].
    pub down_intervals: Vec<Vec<(Cycles, Cycles)>>,
}

impl RunMetrics {
    /// Counters accumulated since `base` (used to discard warmup): every
    /// monotone counter is subtracted; `nodes` and the page-allocation
    /// gauges keep their current values.
    pub fn delta_since(&self, base: &RunMetrics) -> RunMetrics {
        RunMetrics {
            total_cycles: self.total_cycles - base.total_cycles,
            instructions: self.instructions - base.instructions,
            refs: self.refs - base.refs,
            reads: self.reads - base.reads,
            read_misses: self.read_misses - base.read_misses,
            writes: self.writes - base.writes,
            write_misses: self.write_misses - base.write_misses,
            cache_read_hits: self.cache_read_hits - base.cache_read_hits,
            shared_ck_reads: self.shared_ck_reads - base.shared_ck_reads,
            checkpoints: self.checkpoints - base.checkpoints,
            t_create: self.t_create - base.t_create,
            t_commit: self.t_commit - base.t_commit,
            t_recovery: self.t_recovery - base.t_recovery,
            failures: self.failures - base.failures,
            repairs: self.repairs - base.repairs,
            faults_survived: self.faults_survived - base.faults_survived,
            faults_unsurvivable: self.faults_unsurvivable - base.faults_unsurvivable,
            recovery_restarts: self.recovery_restarts - base.recovery_restarts,
            recovery_max_depth: self.recovery_max_depth,
            items_checkpointed: self.items_checkpointed - base.items_checkpointed,
            reused_replicas: self.reused_replicas - base.reused_replicas,
            replication_bytes: self.replication_bytes - base.replication_bytes,
            injections_replacement: self.injections_replacement - base.injections_replacement,
            injections_on_read: self.injections_on_read - base.injections_on_read,
            injections_write_inv_ck: self.injections_write_inv_ck - base.injections_write_inv_ck,
            injections_write_shared_ck: self.injections_write_shared_ck
                - base.injections_write_shared_ck,
            pages_allocated: self.pages_allocated,
            pages_peak: self.pages_peak,
            net_messages: self.net_messages - base.net_messages,
            net_contention_cycles: self.net_contention_cycles - base.net_contention_cycles,
            net_retries: self.net_retries - base.net_retries,
            net_timeouts: self.net_timeouts - base.net_timeouts,
            net_detour_hops: self.net_detour_hops - base.net_detour_hops,
            net_dropped_msgs: self.net_dropped_msgs - base.net_dropped_msgs,
            nodes: self.nodes,
            per_node: self
                .per_node
                .iter()
                .enumerate()
                .map(|(i, n)| match base.per_node.get(i) {
                    Some(b) => n.delta_since(b),
                    None => *n,
                })
                .collect(),
            access_latency: self.access_latency.delta_since(&base.access_latency),
            phases: self.phases.delta_since(&base.phases),
            down_intervals: self.down_intervals.clone(),
        }
    }

    /// Mean time to repair, in cycles (total down time / failure count over
    /// all nodes). 0.0 when no failure occurred.
    pub fn mttr_cycles(&self) -> f64 {
        let (down, count) = self.per_node.iter().fold((0u64, 0u64), |(d, c), n| {
            (d + n.down_cycles, c + n.down_count)
        });
        if count == 0 {
            0.0
        } else {
            down as f64 / count as f64
        }
    }

    /// Fraction of node-cycles the machine's nodes were up:
    /// `1 - Σ down_cycles / (nodes × total_cycles)`. 1.0 for an empty run.
    pub fn availability(&self) -> f64 {
        if self.nodes == 0 || self.total_cycles == 0 {
            return 1.0;
        }
        let down: u64 = self.per_node.iter().map(|n| n.down_cycles).sum();
        1.0 - down as f64 / (self.nodes as f64 * self.total_cycles as f64)
    }

    /// Availability-vs-time curve: the run's timeline split into `buckets`
    /// equal windows, each reporting `(window end, availability within the
    /// window)` computed from the overlap of every down interval with the
    /// window. Empty when the machine has not run (`total_cycles == 0`) or
    /// `buckets == 0`. The long-horizon soak reports use this to show
    /// availability settling around its steady state as fault/repair
    /// cycles accumulate.
    pub fn availability_curve(&self, buckets: usize) -> Vec<(Cycles, f64)> {
        if self.total_cycles == 0 || self.nodes == 0 || buckets == 0 {
            return Vec::new();
        }
        let mut curve = Vec::with_capacity(buckets);
        // Integer bucket edges: the last bucket absorbs the remainder.
        let width = (self.total_cycles / buckets as u64).max(1);
        for k in 0..buckets {
            let from = k as u64 * width;
            if from >= self.total_cycles {
                break;
            }
            let to = if k == buckets - 1 {
                self.total_cycles
            } else {
                ((k as u64 + 1) * width).min(self.total_cycles)
            };
            let mut down = 0u64;
            for intervals in &self.down_intervals {
                for &(s, e) in intervals {
                    down += e.min(to).saturating_sub(s.max(from));
                }
            }
            let node_cycles = self.nodes as f64 * (to - from) as f64;
            curve.push((to, 1.0 - down as f64 / node_cycles));
        }
        curve
    }

    /// Steady-state mean time to repair, in cycles: the mean length of the
    /// *closed* down intervals (failure → recovery end or repair). Unlike
    /// [`RunMetrics::mttr_cycles`] it excludes nodes still down at the end
    /// of the run, whose truncated intervals understate the repair time.
    /// 0.0 when no interval closed before the run ended.
    pub fn steady_mttr_cycles(&self) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for intervals in &self.down_intervals {
            for &(s, e) in intervals {
                // An interval ending exactly at the run's end is the
                // end-of-run force-close of a node that was still down,
                // not a completed repair: exclude it.
                if e == self.total_cycles {
                    continue;
                }
                total += e - s;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Injections triggered by processor writes on recovery copies.
    pub fn injections_on_write(&self) -> u64 {
        self.injections_write_inv_ck + self.injections_write_shared_ck
    }

    /// All runtime injections.
    pub fn injections_total(&self) -> u64 {
        self.injections_replacement + self.injections_on_read + self.injections_on_write()
    }

    /// Events per 10 000 memory references (the paper's unit).
    pub fn per_10k_refs(&self, events: u64) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            events as f64 * 10_000.0 / self.refs as f64
        }
    }

    /// Per-node average of `events` per 10 000 *machine-wide* references:
    /// the machine-wide rate divided by the node count, i.e. each node's
    /// share of the event rate.
    pub fn per_node_per_10k_refs(&self, events: u64) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.per_10k_refs(events) / self.nodes as f64
        }
    }

    /// Read miss rate (misses / loads).
    pub fn read_miss_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_misses as f64 / self.reads as f64
        }
    }

    /// Write miss rate (transactions / stores).
    pub fn write_miss_rate(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_misses as f64 / self.writes as f64
        }
    }

    /// Mean per-node replication throughput during create phases, in bytes
    /// per simulated second, counting only physically transferred bytes.
    pub fn replication_throughput_bps(&self, clock_hz: f64) -> f64 {
        if self.t_create == 0 || self.nodes == 0 {
            0.0
        } else {
            let secs = self.t_create as f64 / clock_hz;
            self.replication_bytes as f64 / secs / self.nodes as f64
        }
    }

    /// Like [`RunMetrics::replication_throughput_bps`] but counting every
    /// checkpointed item (including re-labelled replicas that moved no
    /// data) — the paper's "effective" throughput that rises to ~30 MB/s
    /// for Barnes.
    pub fn effective_replication_throughput_bps(&self, clock_hz: f64) -> f64 {
        if self.t_create == 0 || self.nodes == 0 {
            0.0
        } else {
            let secs = self.t_create as f64 / clock_hz;
            let bytes = self.items_checkpointed as f64 * 128.0;
            bytes / secs / self.nodes as f64
        }
    }

    /// Aggregate (machine-wide) replication throughput in bytes/second.
    pub fn aggregate_replication_throughput_bps(&self, clock_hz: f64) -> f64 {
        self.replication_throughput_bps(clock_hz) * self.nodes as f64
    }

    /// Fraction of checkpointed items that reused an existing replica.
    pub fn replica_reuse_fraction(&self) -> f64 {
        if self.items_checkpointed == 0 {
            0.0
        } else {
            self.reused_replicas as f64 / self.items_checkpointed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_runs() {
        let m = RunMetrics::default();
        assert_eq!(m.read_miss_rate(), 0.0);
        assert_eq!(m.per_10k_refs(5), 0.0);
        assert_eq!(m.replication_throughput_bps(20e6), 0.0);
    }

    #[test]
    fn injection_totals() {
        let m = RunMetrics {
            injections_replacement: 1,
            injections_on_read: 2,
            injections_write_inv_ck: 3,
            injections_write_shared_ck: 4,
            ..Default::default()
        };
        assert_eq!(m.injections_on_write(), 7);
        assert_eq!(m.injections_total(), 10);
    }

    #[test]
    fn throughput_math() {
        let m = RunMetrics {
            t_create: 20_000_000, // 1 simulated second at 20 MHz
            replication_bytes: 40_000_000,
            items_checkpointed: 312_500 * 2, // 2x the transferred items
            nodes: 2,
            ..Default::default()
        };
        assert!((m.replication_throughput_bps(20e6) - 20_000_000.0).abs() < 1.0);
        assert!((m.aggregate_replication_throughput_bps(20e6) - 40_000_000.0).abs() < 1.0);
        assert!((m.effective_replication_throughput_bps(20e6) - 40_000_000.0).abs() < 1.0);
    }

    #[test]
    fn per_node_rate_divides_by_nodes() {
        let m = RunMetrics {
            refs: 10_000,
            nodes: 4,
            ..Default::default()
        };
        // 8 events over 10k machine-wide refs = 8 per 10k refs, 2 per node.
        assert!((m.per_10k_refs(8) - 8.0).abs() < 1e-12);
        assert!((m.per_node_per_10k_refs(8) - 2.0).abs() < 1e-12);
        let empty = RunMetrics::default();
        assert_eq!(empty.per_node_per_10k_refs(8), 0.0);
    }

    #[test]
    fn per_node_delta_subtracts_counters_keeps_gauges() {
        let base = RunMetrics {
            refs: 50,
            per_node: vec![NodeMetrics {
                refs: 50,
                read_misses: 3,
                ckpt_stall_cycles: 100,
                pages_allocated: 7,
                pages_peak: 9,
                ..Default::default()
            }],
            ..Default::default()
        };
        let now = RunMetrics {
            refs: 120,
            per_node: vec![NodeMetrics {
                refs: 120,
                read_misses: 10,
                ckpt_stall_cycles: 250,
                pages_allocated: 8,
                pages_peak: 11,
                ..Default::default()
            }],
            ..Default::default()
        };
        let d = now.delta_since(&base);
        assert_eq!(d.per_node[0].refs, 70);
        assert_eq!(d.per_node[0].read_misses, 7);
        assert_eq!(d.per_node[0].ckpt_stall_cycles, 150);
        // Gauges keep their current values.
        assert_eq!(d.per_node[0].pages_allocated, 8);
        assert_eq!(d.per_node[0].pages_peak, 11);
        assert_eq!(d.per_node[0].misses(), 7);
    }

    #[test]
    fn availability_and_mttr() {
        let m = RunMetrics {
            total_cycles: 1000,
            nodes: 4,
            per_node: vec![
                NodeMetrics {
                    down_cycles: 300,
                    down_count: 2,
                    ..Default::default()
                },
                NodeMetrics {
                    down_cycles: 100,
                    down_count: 1,
                    ..Default::default()
                },
                NodeMetrics::default(),
                NodeMetrics::default(),
            ],
            ..Default::default()
        };
        // 400 down node-cycles out of 4000.
        assert!((m.availability() - 0.9).abs() < 1e-12);
        assert!((m.mttr_cycles() - 400.0 / 3.0).abs() < 1e-9);
        let empty = RunMetrics::default();
        assert_eq!(empty.availability(), 1.0);
        assert_eq!(empty.mttr_cycles(), 0.0);
    }

    #[test]
    fn availability_curve_buckets_the_down_intervals() {
        let m = RunMetrics {
            total_cycles: 1_000,
            nodes: 2,
            per_node: vec![NodeMetrics::default(); 2],
            // Node 0 down for the whole second quarter; node 1 down for a
            // stretch closing exactly at end of run (still down).
            down_intervals: vec![vec![(250, 500)], vec![(900, 1_000)]],
            ..Default::default()
        };
        let curve = m.availability_curve(4);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0], (250, 1.0));
        // Bucket [250, 500): node 0 fully down = half the node-cycles.
        assert!((curve[1].1 - 0.5).abs() < 1e-12);
        assert!((curve[2].1 - 1.0).abs() < 1e-12);
        // Bucket [750, 1000): node 1 down for 100 of 2×250 node-cycles.
        assert!((curve[3].1 - 0.8).abs() < 1e-12);
        assert!(RunMetrics::default().availability_curve(4).is_empty());
        // Only the closed interval counts toward the steady-state MTTR.
        assert!((m.steady_mttr_cycles() - 250.0).abs() < 1e-12);
        let none = RunMetrics {
            total_cycles: 1_000,
            down_intervals: vec![vec![(900, 1_000)]],
            ..Default::default()
        };
        assert_eq!(none.steady_mttr_cycles(), 0.0);
    }

    #[test]
    fn phase_delta_and_merge() {
        let mut a = PhaseLatency::default();
        a.dir_lookup.record(10);
        a.replay.record(100);
        let base = a.clone();
        a.dir_lookup.record(20);
        let d = a.delta_since(&base);
        assert_eq!(d.dir_lookup.summary().count, 1);
        assert_eq!(d.replay.summary().count, 0);
        let mut b = PhaseLatency::default();
        b.dir_lookup.record(5);
        b.merge(&a);
        assert_eq!(b.dir_lookup.summary().count, 3);
        assert_eq!(b.replay.summary().count, 1);
        assert_eq!(b.named().len(), 8);
        assert_eq!(b.named()[7].0, "restart");
    }

    #[test]
    fn reuse_fraction() {
        let m = RunMetrics {
            items_checkpointed: 100,
            reused_replicas: 52,
            ..Default::default()
        };
        assert!((m.replica_reuse_fraction() - 0.52).abs() < 1e-12);
    }
}
