//! The machine: nodes + engine + mesh + checkpoint coordinator + failures,
//! advanced by one deterministic event loop.

use std::collections::VecDeque;

use ftcoma_core::{
    ckpt, invariants, recovery, AccessOutcome, AccessReq, Ctx, Effect, Engine, HitSource,
    RecoveryOutcome,
};
use ftcoma_mem::{ItemId, ItemState, NodeId};
use ftcoma_net::{Fabric, FaultDecision, LogicalRing, NetClass, NetFaultPlan};
use ftcoma_protocol::msg::{InjectCause, Msg, TxnLeg};
use ftcoma_protocol::transport::{DedupFilter, SeqSpace};
use ftcoma_protocol::NodeState;
use ftcoma_sim::span::{SpanId, SpanLog, SpanPhase, SpanRecord};
use ftcoma_sim::{derive_seed, Cycles, EventQueue, FxHashMap};
use ftcoma_workloads::{MemRef, NodeStream, RefStream, StreamSnapshot};

use crate::config::{FailureKind, MachineConfig};
use crate::faultproc::{FaultAction, FaultProcess, FaultProcessConfig};
use crate::metrics::{NodeMetrics, RunMetrics, TsSample};
use crate::tracelog::{TraceEvent, TraceLog};

#[derive(Debug, Clone)]
enum Event {
    /// Processor of `node` issues its buffered reference (valid only for
    /// the matching epoch).
    Proc { node: NodeId, epoch: u64 },
    /// Network delivery. `sent` is the departure time, kept so delivery
    /// can attribute the end-to-end leg latency to its causal phase.
    Deliver { to: NodeId, msg: Msg, sent: Cycles },
    /// Stalled access of `node` completed.
    Resume { node: NodeId, epoch: u64 },
    /// Periodic recovery-point establishment.
    CkptTimer,
    /// Injected failure.
    Failure { node: NodeId, kind: FailureKind },
    /// A replacement node rejoins in place of a permanently failed one.
    Repair { node: NodeId },
    /// Reliable-transport delivery attempt: one physical copy of packet
    /// `(src, seq)` arriving at `to`.
    NetDeliver {
        src: NodeId,
        to: NodeId,
        seq: u64,
        msg: Msg,
    },
    /// Transport acknowledgement for `(src, dst, seq)` arriving back at
    /// `src`.
    NetAck { src: NodeId, dst: NodeId, seq: u64 },
    /// Retransmission timer for in-flight packet `(src, dst, seq)`.
    NetRetry { src: NodeId, dst: NodeId, seq: u64 },
    /// Scheduled interconnect fault: a mesh link is cut.
    LinkCut { a: NodeId, b: NodeId },
    /// Scheduled interconnect fault: a mesh router dies.
    RouterDown { node: NodeId },
    /// The continuous fault process has events due ([`FaultProcess`]);
    /// exactly one tick is in flight whenever a process is installed.
    FaultTick,
}

/// An unacknowledged transport packet awaiting its ack or next retry.
#[derive(Debug, Clone)]
struct InFlight {
    msg: Msg,
    attempts: u32,
    /// Original departure time of the logical message (retransmissions keep
    /// it, so the measured leg latency includes retry delays).
    sent: Cycles,
}

/// Ceiling on retained time-series rows: when reached, every other row is
/// dropped and the sampling stride doubles, keeping memory bounded on
/// arbitrarily long runs while staying deterministic.
const MAX_TS_ROWS: usize = 8192;

/// Seed stream for the message-loss plan installed by
/// [`Machine::set_message_loss`] (decorrelates it from workload streams).
const NET_PLAN_STREAM: u64 = 0xD1A5_7E2C_0FF3_1D07;

/// Seed stream for the continuous fault process installed by
/// [`Machine::install_fault_process`].
const FAULT_PROC_STREAM: u64 = 0x8F17_0C55_C0D1_2ED9;

/// The continuous fault process never sinks the machine below this many
/// live nodes: the ECP's establishment needs four distinct copy holders
/// per modified item, so a sampled failure that would breach the floor is
/// deferred by a fresh MTBF draw instead.
const FAULT_PROC_MIN_ALIVE: usize = 4;

/// How long a [`Machine::set_message_loss`] window stays open. Bounded so
/// a lossy episode behaves like a transient network fault rather than a
/// permanently degraded mesh (which would escalate into node failures with
/// probability approaching 1 as the run grows).
const LOSS_WINDOW: Cycles = 16_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Will issue at its scheduled `Proc` event.
    Ready,
    /// Blocked on a coherence transaction.
    Stalled,
    /// Stopped for a checkpoint or recovery.
    Paused,
    /// Waiting at a global barrier.
    AtBarrier,
    /// Completed its reference quota.
    Done,
    /// Permanently failed.
    Dead,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    /// Waiting for in-flight transactions to finish before `create`.
    Draining,
    /// Create phase of a recovery point establishment in progress.
    Create,
    /// Post-failure reconfiguration in progress.
    Recovering,
}

/// The simulated ft-coma machine. See the crate docs for an example.
///
/// `Clone` is deep and deterministic: the clone replays exactly like the
/// original (see [`Machine::snapshot`]).
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    nodes: Vec<NodeState>,
    engine: Engine,
    mesh: Fabric,
    ring: LogicalRing,
    queue: EventQueue<Event>,

    streams: Vec<NodeStream>,
    snapshots: Vec<StreamSnapshot>,
    /// Per-stream buffered-but-unissued reference at the recovery point.
    /// The stream snapshot already counts such a reference as emitted, so
    /// a rollback must re-inject it explicitly or it is lost forever.
    pending_snap: Vec<Option<MemRef>>,
    /// References re-injected by a rollback, drained before the streams.
    carryover: Vec<VecDeque<(usize, MemRef)>>,
    /// Stream indices each node executes (grows when adopting a dead
    /// node's work).
    assigned: Vec<Vec<usize>>,
    rr: Vec<usize>,
    pending_ref: Vec<Option<(usize, MemRef)>>,
    proc: Vec<ProcState>,
    epochs: Vec<u64>,
    stall_start: Vec<Cycles>,
    refs_since_barrier: Vec<u64>,

    phase: Phase,
    gen: u64,
    deliver_pending: usize,
    ckpt_start: Cycles,
    create_done: usize,
    reconfig_done: usize,
    reconfig_expected: usize,
    recovery_start: Cycles,
    recovery_scan_end: Cycles,
    /// Failures folded into the recovery episode currently in flight (1
    /// for a plain fault, +1 per nested fault that restarted the episode;
    /// 0 outside recovery). Credited to `faults_survived` in one lump when
    /// the episode's reconfiguration finally completes.
    episode_faults: u64,
    timer_in_queue: bool,
    pending_repair: Option<NodeId>,
    /// Continuous MTBF/MTTR failure–repair schedule generator
    /// ([`Machine::install_fault_process`]; `None` = scripted faults only).
    fault_process: Option<FaultProcess>,

    /// Reliable transport active? Flips on when a fault plan is installed
    /// or an interconnect fault is scheduled; off = the exact legacy
    /// fire-and-forget path (mesh sends cannot fail on a healthy fabric).
    transport_active: bool,
    /// Deterministic drop/duplicate/delay plan consulted per physical send.
    net_plan: Option<NetFaultPlan>,
    /// Per-source send sequence spaces (indexed by sender).
    seqs: Vec<SeqSpace>,
    /// Per-receiver duplicate suppression (indexed by receiver).
    dedup: Vec<DedupFilter>,
    /// Unacked packets by `(src, dst, seq)`.
    in_flight: FxHashMap<(NodeId, NodeId, u64), InFlight>,

    committed_values: FxHashMap<ItemId, u64>,
    trace: TraceLog,

    /// Causal span sink (inert when `trace_capacity` is 0).
    spans: SpanLog,
    /// Open root Transaction span per node (0 = none).
    open_txn: Vec<SpanId>,
    /// Open root Recovery span: `(id, failure time, failed node)`.
    open_recovery: Option<(SpanId, Cycles, u16)>,
    /// Open Replay child span: `(id, recovery-end time)`.
    open_replay: Option<(SpanId, Cycles)>,
    /// Start of the current replay window (always on; feeds the replay
    /// phase histogram independently of span capture).
    replay_start: Option<Cycles>,
    /// Per-node down-interval opening time (always on; availability).
    down_since: Vec<Option<Cycles>>,

    /// Time-series sampling stride (0 = off; doubles when thinning).
    ts_every: Cycles,
    /// Next sample time.
    ts_next: Cycles,
    /// `refs` as of the previous sample (for per-interval deltas).
    ts_last_refs: u64,
    ts_rows: Vec<TsSample>,

    metrics: RunMetrics,
    /// Metrics snapshot taken when warmup completed.
    baseline: Option<(RunMetrics, Cycles)>,
    finished: bool,
    outcome: RecoveryOutcome,
    /// Set when the machine stopped early on a terminal outcome.
    halted: bool,
}

/// A frozen, deeply-cloned [`Machine`] state, cheap to fork from.
///
/// Produced by [`Machine::snapshot`]; turned back into a runnable machine
/// by [`Snapshot::to_machine`] (any number of times — each fork is
/// independent) or applied over an existing machine by
/// [`Machine::restore`]. Forked runs are byte-identical to straight runs:
/// the event calendar's two-band sequence numbering makes scenario
/// injection into a resumed snapshot tie-break exactly like
/// construction-time injection.
#[derive(Debug, Clone)]
pub struct Snapshot(Box<Machine>);

impl Snapshot {
    /// Forks an independent runnable machine from the captured state.
    pub fn to_machine(&self) -> Machine {
        (*self.0).clone()
    }

    /// Simulation time at which the state was captured.
    pub fn at(&self) -> Cycles {
        self.0.queue.now()
    }
}

impl Machine {
    /// Builds a machine from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// ([`MachineConfig::validate`]).
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let n = cfg.nodes as usize;
        let nodes: Vec<NodeState> = (0..cfg.nodes)
            .map(|i| NodeState::new(NodeId::new(i), cfg.am, cfg.cache))
            .collect();
        let streams: Vec<NodeStream> = (0..cfg.nodes)
            .map(|i| NodeStream::new(&cfg.workload, i, cfg.nodes, cfg.seed))
            .collect();
        let snapshots = streams.iter().map(NodeStream::snapshot).collect();
        let mesh = Fabric::new(cfg.fabric(), n);
        let engine = Engine::new(cfg.ft, cfg.timing, n);
        let mut machine = Self {
            nodes,
            engine,
            mesh,
            ring: LogicalRing::new(n),
            queue: EventQueue::new(),
            streams,
            snapshots,
            pending_snap: vec![None; n],
            carryover: (0..n).map(|_| VecDeque::new()).collect(),
            assigned: (0..n).map(|i| vec![i]).collect(),
            rr: vec![0; n],
            pending_ref: vec![None; n],
            proc: vec![ProcState::Ready; n],
            epochs: vec![0; n],
            stall_start: vec![0; n],
            refs_since_barrier: vec![0; n],
            phase: Phase::Running,
            gen: 0,
            deliver_pending: 0,
            ckpt_start: 0,
            create_done: 0,
            reconfig_done: 0,
            reconfig_expected: 0,
            recovery_start: 0,
            recovery_scan_end: 0,
            episode_faults: 0,
            timer_in_queue: false,
            pending_repair: None,
            fault_process: None,
            transport_active: cfg.net_fault.is_some(),
            net_plan: cfg.net_fault.clone(),
            seqs: vec![SeqSpace::new(); n],
            dedup: vec![DedupFilter::new(); n],
            in_flight: FxHashMap::default(),
            committed_values: FxHashMap::default(),
            trace: TraceLog::new(cfg.trace_capacity),
            spans: SpanLog::new(cfg.trace_capacity),
            open_txn: vec![0; n],
            open_recovery: None,
            open_replay: None,
            replay_start: None,
            down_since: vec![None; n],
            ts_every: cfg.timeseries_every,
            ts_next: cfg.timeseries_every,
            ts_last_refs: 0,
            ts_rows: Vec::new(),
            metrics: RunMetrics {
                nodes: n as u64,
                per_node: vec![NodeMetrics::default(); n],
                down_intervals: vec![Vec::new(); n],
                ..RunMetrics::default()
            },
            baseline: None,
            finished: false,
            outcome: RecoveryOutcome::Recovered,
            halted: false,
            cfg,
        };
        if machine.spans.enabled() {
            // Pure observation on the mesh side; timing is unchanged.
            machine.mesh.set_hop_trace(true);
        }
        for i in 0..n {
            machine.prepare_and_schedule(NodeId::new(i as u16), 0, true);
        }
        if let Some(period) = machine.cfg.ft.ckpt_period_cycles() {
            machine.queue.schedule(period, Event::CkptTimer);
            machine.timer_in_queue = true;
        }
        machine
    }

    /// Schedules a node failure at an absolute simulation time.
    ///
    /// # Panics
    ///
    /// Panics if fault tolerance is disabled (the baseline machine cannot
    /// recover) or the node index is out of range.
    pub fn schedule_failure(&mut self, at: Cycles, node: NodeId, kind: FailureKind) {
        assert!(
            self.cfg.ft.mode.is_enabled(),
            "failures require the ECP; the standard protocol cannot recover"
        );
        assert!(node.index() < self.nodes.len(), "no such node");
        self.queue.schedule_pre(at, Event::Failure { node, kind });
    }

    /// Schedules the repair of a permanently failed node: a fresh
    /// replacement (empty memory) rejoins the ring at `at`, takes its
    /// static home range back and resumes the node's share of the work.
    ///
    /// # Panics
    ///
    /// Panics if fault tolerance is disabled or the node index is out of
    /// range. Repairing a node that is still alive at `at` is a no-op.
    pub fn schedule_repair(&mut self, at: Cycles, node: NodeId) {
        assert!(
            self.cfg.ft.mode.is_enabled(),
            "repair requires the ECP machine"
        );
        assert!(node.index() < self.nodes.len(), "no such node");
        self.queue.schedule_pre(at, Event::Repair { node });
    }

    /// Schedules a mesh link cut at `at`: both directions of the `a`–`b`
    /// link die, forcing traffic to detour (or, if the cut severs the mesh,
    /// escalating through the reliable transport). Activates the transport.
    ///
    /// # Panics
    ///
    /// Panics if fault tolerance is disabled, the fabric is a bus (no
    /// per-link topology), or a node index is out of range; `a` and `b`
    /// must be mesh-adjacent (checked when the cut is applied).
    pub fn schedule_link_cut(&mut self, at: Cycles, a: NodeId, b: NodeId) {
        assert!(
            self.cfg.ft.mode.is_enabled(),
            "interconnect faults require the ECP machine"
        );
        assert!(self.cfg.bus.is_none(), "link cuts need a mesh fabric");
        assert!(
            a.index() < self.nodes.len() && b.index() < self.nodes.len(),
            "no such node"
        );
        self.transport_active = true;
        self.queue.schedule_pre(at, Event::LinkCut { a, b });
    }

    /// Schedules a mesh router failure at `at`: the node's router stops
    /// switching, making the node unreachable while its processor keeps
    /// running. Its peers' transports time out and escalate, turning the
    /// router loss into a permanent node failure. Activates the transport.
    ///
    /// # Panics
    ///
    /// Panics if fault tolerance is disabled, the fabric is a bus, or the
    /// node index is out of range.
    pub fn schedule_router_down(&mut self, at: Cycles, node: NodeId) {
        assert!(
            self.cfg.ft.mode.is_enabled(),
            "interconnect faults require the ECP machine"
        );
        assert!(self.cfg.bus.is_none(), "router faults need a mesh fabric");
        assert!(node.index() < self.nodes.len(), "no such node");
        self.transport_active = true;
        self.queue.schedule_pre(at, Event::RouterDown { node });
    }

    /// Installs a seeded message-loss episode: starting at `at`, each
    /// physical packet is dropped with probability `rate_per_mille`/1000
    /// for a bounded window ([`LOSS_WINDOW`] cycles). The reliable
    /// transport masks the losses with retransmissions. Activates the
    /// transport.
    ///
    /// # Panics
    ///
    /// Panics if fault tolerance is disabled, a plan is already installed,
    /// or the rate exceeds 1000 per-mille.
    pub fn set_message_loss(&mut self, at: Cycles, rate_per_mille: u32) {
        assert!(
            self.cfg.ft.mode.is_enabled(),
            "interconnect faults require the ECP machine"
        );
        match &mut self.net_plan {
            None => {
                let plan = NetFaultPlan::message_loss(
                    derive_seed(self.cfg.seed, NET_PLAN_STREAM),
                    rate_per_mille,
                )
                .with_window(at, at + LOSS_WINDOW);
                self.net_plan = Some(plan);
            }
            // A zero-rate standby plan ([`Machine::preactivate_transport`])
            // arms in place, keeping its seed and send ordinal so a forked
            // run rolls the same per-packet dice as a straight one.
            Some(plan) if plan.rate_per_mille() == 0 => {
                plan.arm_message_loss(rate_per_mille, at, at + LOSS_WINDOW);
            }
            Some(_) => panic!("one message fault plan per machine"),
        }
        self.transport_active = true;
    }

    /// Switches the machine onto the reliable-transport path from cycle 0
    /// with an inert (zero-rate) fault plan, without changing behavior:
    /// every packet is delivered, merely through the sequenced/acked path
    /// an armed plan would use. A prefix run snapshotted for later
    /// network-fault injection must run pre-activated so the fork point
    /// inherits transport state (and the plan's send ordinal) identical to
    /// a straight run's.
    ///
    /// # Panics
    ///
    /// Panics if a (non-inert) fault plan is already installed.
    pub fn preactivate_transport(&mut self) {
        if let Some(plan) = &self.net_plan {
            assert!(plan.rate_per_mille() == 0, "a fault plan is already armed");
        } else {
            self.net_plan = Some(NetFaultPlan::new(derive_seed(
                self.cfg.seed,
                NET_PLAN_STREAM,
            )));
        }
        self.transport_active = true;
    }

    /// Installs the continuous MTBF/MTTR failure–repair process
    /// ([`crate::faultproc`]): from `cfg.start` on, nodes permanently
    /// fail and rejoin — and, when the link process is enabled, mesh
    /// links are cut and restored — on an unbounded seeded stochastic
    /// schedule. Node repairs re-enter through the full rejoin path
    /// (router restored, home ranges migrated back, work reclaimed);
    /// enabling the link process activates the reliable transport, since
    /// a cut may sever the mesh.
    ///
    /// # Panics
    ///
    /// Panics if fault tolerance is disabled, a process is already
    /// installed, the configuration does not validate, or a link process
    /// is requested on a bus fabric.
    pub fn install_fault_process(&mut self, cfg: FaultProcessConfig) {
        assert!(
            self.cfg.ft.mode.is_enabled(),
            "continuous faults require the ECP; the standard protocol cannot recover"
        );
        assert!(
            self.fault_process.is_none(),
            "one fault process per machine"
        );
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let links = if cfg.link_mtbf > 0 {
            assert!(self.cfg.bus.is_none(), "link faults need a mesh fabric");
            self.transport_active = true;
            mesh_links(self.nodes.len())
        } else {
            Vec::new()
        };
        let fp = FaultProcess::new(
            cfg,
            derive_seed(self.cfg.seed, FAULT_PROC_STREAM),
            self.cfg.nodes,
            links,
        );
        let first = fp.next_at().expect("a validated process is always armed");
        self.queue.schedule_pre(first.max(1), Event::FaultTick);
        self.fault_process = Some(fp);
    }

    /// Dispatches queued events in order until a terminal condition —
    /// halt, quiescent completion, or (when `limit` is set) the next
    /// event not being strictly before `limit`.
    ///
    /// The termination checks run *before* each pop, so an event queued
    /// past the natural end of the run (e.g. a fault injected into a
    /// resumed snapshot at a cycle the straight run never reached) is
    /// left undelivered exactly as a straight run would leave it.
    fn advance(&mut self, limit: Option<Cycles>) {
        self.queue.seal();
        loop {
            if self.halted {
                return;
            }
            if self.all_done() && self.deliver_pending == 0 && self.phase == Phase::Running {
                return;
            }
            if let Some(l) = limit {
                match self.queue.peek_time() {
                    Some(t) if t < l => {}
                    _ => return,
                }
            }
            let Some((at, ev)) = self.queue.pop() else {
                return;
            };
            if self.ts_every > 0 {
                self.sample_timeseries_until(at);
            }
            self.dispatch(ev);
        }
    }

    /// Runs the machine up to (but not including) simulation time `limit`,
    /// then stops with all state intact: every event strictly before
    /// `limit` is dispatched, nothing at or after it. The machine can
    /// continue via another [`Machine::run_until`] or finish with
    /// [`Machine::run`] — the composite run is byte-identical to an
    /// uninterrupted one. This is the prefix half of snapshot-fork
    /// execution: run to an injection cycle once, snapshot, fork many.
    ///
    /// # Panics
    ///
    /// Panics if the machine already finished.
    pub fn run_until(&mut self, limit: Cycles) {
        assert!(!self.finished, "machine already ran");
        self.advance(Some(limit));
    }

    /// Runs the machine to completion and returns the metrics.
    pub fn run(&mut self) -> RunMetrics {
        assert!(!self.finished, "machine already ran");
        self.advance(None);
        self.finished = true;
        self.finalize_observability();
        self.metrics.total_cycles = self.queue.now();
        self.metrics.pages_allocated = self
            .live_nodes()
            .map(|n| n.am.allocated_pages() as u64)
            .sum();
        self.metrics.pages_peak = self
            .live_nodes()
            .map(|n| n.am.peak_allocated_pages() as u64)
            .sum();
        for i in 0..self.nodes.len() {
            // Dead nodes report their peak up to the failure (the wipe
            // evicts pages but keeps the high-water mark) and zero current
            // pages, consistent with the live_nodes() aggregates above.
            self.metrics.per_node[i].pages_allocated = if self.nodes[i].alive {
                self.nodes[i].am.allocated_pages() as u64
            } else {
                0
            };
            self.metrics.per_node[i].pages_peak = self.nodes[i].am.peak_allocated_pages() as u64;
        }
        self.metrics.net_messages = self.mesh.stats().messages;
        self.metrics.net_contention_cycles = self.mesh.stats().contention_cycles;
        self.metrics.net_detour_hops = self.mesh.stats().detour_hops;
        if let Some((base, base_cycles)) = self.baseline.take() {
            self.metrics = self.metrics.delta_since(&base);
            self.metrics.total_cycles = self.queue.now() - base_cycles;
        }
        self.metrics.clone()
    }

    /// Captures the machine's complete state — engine, attraction
    /// memories, caches, directory/home tables, transport, mesh, fault
    /// plan, workload streams, RNG streams, metrics/trace/span/time-series
    /// sinks and the event calendar with both sequence bands — as a
    /// deterministic snapshot. A machine restored from the snapshot and
    /// run to completion produces a report byte-identical to running the
    /// original straight through.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(Box::new(self.clone()))
    }

    /// Replaces this machine's state with the snapshot's.
    pub fn restore(&mut self, snap: &Snapshot) {
        *self = (*snap.0).clone();
    }

    /// The metrics collected so far (complete after [`Machine::run`]).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The structured recovery verdict of the run so far. Stays
    /// [`RecoveryOutcome::Recovered`] unless the run degraded into a
    /// terminal state (second fault inside a recovery window, or a failed
    /// post-recovery verification), in which case the machine halted early.
    pub fn outcome(&self) -> &RecoveryOutcome {
        &self.outcome
    }

    /// Per-stream emitted-reference counts, indexed by stream (= home
    /// node) number. After a complete run every entry reaches the quota
    /// `warmup_refs_per_node + refs_per_node` even when streams were
    /// adopted by an heir — the liveness signal chaos oracles check.
    pub fn stream_progress(&self) -> Vec<u64> {
        self.streams.iter().map(RefStream::refs_emitted).collect()
    }

    /// The owner-visible memory image: `(item index, value)` for every
    /// owner-state copy on a live node, sorted by item index. The
    /// invariants guarantee at most one owner per item, so this is a
    /// well-defined snapshot of current memory contents.
    pub fn owner_image(&self) -> Vec<(u64, u64)> {
        let mut image: Vec<(u64, u64)> = Vec::new();
        for ns in self.live_nodes() {
            for (item, slot) in ns.am.iter_present() {
                if slot.state.is_owner() {
                    image.push((item.index(), slot.value));
                }
            }
        }
        image.sort_unstable();
        image
    }

    /// The retained protocol trace (empty unless
    /// [`MachineConfig::trace_capacity`] was set).
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace.events().cloned().collect()
    }

    /// The retained causal span records, oldest first (empty unless
    /// [`MachineConfig::trace_capacity`] was set). Spans share the trace
    /// ring's capacity; the newest closes survive wraparound.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.records()
    }

    /// The sampled time-series rows (empty unless
    /// [`MachineConfig::timeseries_every`] was set).
    pub fn timeseries(&self) -> &[TsSample] {
        &self.ts_rows
    }

    /// Per-link interconnect traffic breakdown (empty for bus fabrics).
    pub fn link_report(&self) -> Vec<ftcoma_net::LinkReport> {
        self.mesh.link_report()
    }

    /// The paper's four-irreplaceable-pages capacity check (§4.1) for this
    /// configuration: necessary (not sufficient) for injections to always
    /// find space. Violations make `run` likely to abort with an
    /// AM-capacity panic.
    pub fn capacity_report(&self) -> ftcoma_core::capacity::CapacityReport {
        ftcoma_core::capacity::check(
            &self.cfg.am,
            self.cfg.nodes,
            ftcoma_core::capacity::workload_pages(
                self.cfg.workload.shared_pages,
                self.cfg.workload.private_pages_per_node,
                self.cfg.nodes,
            ),
        )
    }

    /// The per-node states (read-only, for tests and tools).
    pub fn nodes(&self) -> &[NodeState] {
        &self.nodes
    }

    /// The logical ring (liveness view).
    pub fn ring(&self) -> &LogicalRing {
        &self.ring
    }

    /// Checks all protocol invariants on the (quiescent) machine.
    ///
    /// # Panics
    ///
    /// Panics with a readable report if an invariant is violated.
    pub fn assert_invariants(&self) {
        let scope = invariants::CheckScope {
            allow_precommit: self.phase == Phase::Create,
            check_homes: self.deliver_pending == 0,
        };
        invariants::assert_consistent(&self.nodes, &self.ring, scope);
    }

    /// Checks all protocol invariants and returns the violations (empty =
    /// consistent). Non-panicking form of [`Machine::assert_invariants`]
    /// for harnesses that report rather than abort.
    pub fn check_invariants(&self) -> Vec<String> {
        let scope = invariants::CheckScope {
            allow_precommit: self.phase == Phase::Create,
            check_homes: self.deliver_pending == 0,
        };
        invariants::check(&self.nodes, &self.ring, scope)
    }

    /// Verifies that the memory image matches the last committed recovery
    /// point (meaningful right after a recovery, before computation
    /// resumes; requires `verify` in the configuration).
    pub fn verify_against_oracle(&self) -> Result<(), Vec<String>> {
        assert!(
            self.cfg.verify,
            "oracle tracking disabled in this configuration"
        );
        let mut problems = Vec::new();
        let mut seen: FxHashMap<ItemId, Vec<u64>> = FxHashMap::default();
        for ns in self.live_nodes() {
            for (item, slot) in ns.am.iter_present() {
                if slot.state.is_committed_recovery() {
                    seen.entry(item).or_default().push(slot.value);
                }
            }
        }
        for (&item, &value) in &self.committed_values {
            match seen.get(&item) {
                Some(vals) if vals.len() == 2 && vals.iter().all(|&v| v == value) => {}
                other => problems.push(format!(
                    "{item}: expected 2 recovery copies of value {value}, found {other:?}"
                )),
            }
        }
        for item in seen.keys() {
            if !self.committed_values.contains_key(item) {
                problems.push(format!("{item}: recovery copies for an uncommitted item"));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Re-runs the data-loss certification audit against the current
    /// memory image: `Some(item)` iff some *written* committed item has
    /// zero live copies (the lowest such item, matching the one a
    /// [`RecoveryOutcome::UnrecoverableDataLoss`] outcome names).
    /// Available on every machine — unlike
    /// [`Machine::verify_against_oracle`] it does not require `verify`,
    /// because the committed-value oracle is always maintained.
    pub fn audit_data_loss(&self) -> Option<ItemId> {
        recovery::audit_copies(
            &self.nodes,
            self.committed_values.iter().map(|(&i, &v)| (i, v)),
        )
        .lost
        .first()
        .copied()
    }

    // -- internals ---------------------------------------------------------

    fn live_nodes(&self) -> impl Iterator<Item = &NodeState> {
        self.nodes.iter().filter(|n| n.alive)
    }

    fn all_done(&self) -> bool {
        self.proc
            .iter()
            .all(|&p| matches!(p, ProcState::Done | ProcState::Dead))
    }

    /// Emits every due sample row up to (and including) simulation time
    /// `t`. Pure observation: reads counters, schedules nothing.
    fn sample_timeseries_until(&mut self, t: Cycles) {
        while self.ts_next <= t {
            let in_flight = self
                .proc
                .iter()
                .filter(|&&p| p == ProcState::Stalled)
                .count()
                + self.deliver_pending;
            let nodes_down: Vec<u16> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, n)| !n.alive || self.down_since[*i].is_some())
                .map(|(i, _)| i as u16)
                .collect();
            let row = TsSample {
                cycle: self.ts_next,
                refs: self.metrics.refs,
                refs_delta: self.metrics.refs - self.ts_last_refs,
                read_misses: self.metrics.read_misses,
                write_misses: self.metrics.write_misses,
                in_flight: in_flight as u64,
                queue_depth: self.queue.len() as u64,
                nodes_up: self.ring.alive_count() as u64,
                nodes_down,
                checkpoints: self.metrics.checkpoints,
                failures: self.metrics.failures,
                ckpt_stall_cycles: self
                    .metrics
                    .per_node
                    .iter()
                    .map(|n| n.ckpt_stall_cycles)
                    .sum(),
                rollback_cycles: self
                    .metrics
                    .per_node
                    .iter()
                    .map(|n| n.rollback_cycles)
                    .sum(),
            };
            self.ts_last_refs = self.metrics.refs;
            self.ts_rows.push(row);
            self.ts_next += self.ts_every;
            if self.ts_rows.len() >= MAX_TS_ROWS {
                // Thin deterministically: keep every other row, double the
                // stride. Long runs stay bounded without a config knob.
                let mut idx = 0;
                self.ts_rows.retain(|_| {
                    idx += 1;
                    idx % 2 == 1
                });
                self.ts_every *= 2;
            }
        }
    }

    /// Closes every still-open span and down interval at the end of the
    /// run (or at a halt), so exported timelines never dangle.
    fn finalize_observability(&mut self) {
        let now = self.queue.now();
        for i in 0..self.nodes.len() {
            if let Some(from) = self.down_since[i].take() {
                self.metrics.per_node[i].down_cycles += now - from;
                self.metrics.down_intervals[i].push((from, now));
            }
        }
        if let Some(start) = self.replay_start.take() {
            // The window can open at a recovery end scheduled past the
            // final event; a window that never opened has no duration to
            // record (a zero would pollute the replay p50).
            if now >= start {
                self.metrics.phases.replay.record(now - start);
            }
        }
        if self.spans.enabled() {
            self.close_open_txn_spans(now);
            let (parent, victim) = self
                .open_recovery
                .map(|(id, _, node)| (id, node))
                .unwrap_or((0, 0));
            if let Some((id, start)) = self.open_replay.take() {
                self.spans.push(SpanRecord {
                    id,
                    parent,
                    phase: SpanPhase::Replay,
                    node: victim,
                    start: start.min(now),
                    end: now,
                });
            }
            if let Some((id, start, node)) = self.open_recovery.take() {
                self.spans.push(SpanRecord {
                    id,
                    parent: 0,
                    phase: SpanPhase::Recovery,
                    node,
                    start,
                    end: now,
                });
            }
        }
    }

    /// Closes every open root Transaction span at `end` (normal closes
    /// happen on resume; this handles rollback aborts and end-of-run).
    fn close_open_txn_spans(&mut self, end: Cycles) {
        for i in 0..self.open_txn.len() {
            let id = std::mem::take(&mut self.open_txn[i]);
            if id != 0 {
                self.spans.push(SpanRecord {
                    id,
                    parent: 0,
                    phase: SpanPhase::Transaction,
                    node: i as u16,
                    start: self.stall_start[i],
                    end,
                });
            }
        }
    }

    /// Attributes a delivered message to its transaction leg: records the
    /// end-to-end latency in the always-on phase histogram and, when span
    /// capture is enabled, emits a leg span parented to the requester's
    /// open Transaction span.
    fn record_leg(&mut self, to: NodeId, msg: &Msg, sent: Cycles) {
        let Some(leg) = msg.txn_leg() else {
            return;
        };
        let now = self.queue.now();
        let dur = now - sent;
        match leg {
            TxnLeg::DirLookup => self.metrics.phases.dir_lookup.record(dur),
            TxnLeg::HomeFwd => self.metrics.phases.home_fwd.record(dur),
            TxnLeg::DataReply => self.metrics.phases.data_reply.record(dur),
        }
        if self.spans.enabled() {
            let requester = msg.requester().map(NodeId::index).unwrap_or(to.index());
            let parent = self.open_txn.get(requester).copied().unwrap_or(0);
            if parent != 0 {
                let phase = match leg {
                    TxnLeg::DirLookup => SpanPhase::DirLookup,
                    TxnLeg::HomeFwd => SpanPhase::HomeFwd,
                    TxnLeg::DataReply => SpanPhase::DataReply,
                };
                let id = self.spans.alloc_id();
                self.spans.push(SpanRecord {
                    id,
                    parent,
                    phase,
                    node: to.index() as u16,
                    start: sent,
                    end: now,
                });
            }
        }
    }

    /// Emits NetHop spans for the hop segments of the send just issued on
    /// the mesh, parented to the requester's open Transaction span.
    fn record_hop_spans(&mut self, msg: &Msg, to: NodeId) {
        if !self.spans.enabled() || msg.txn_leg().is_none() {
            return;
        }
        let requester = msg.requester().map(NodeId::index).unwrap_or(to.index());
        let parent = self.open_txn.get(requester).copied().unwrap_or(0);
        if parent == 0 {
            return;
        }
        let hops: Vec<ftcoma_net::HopSegment> = self.mesh.last_hops().to_vec();
        for h in hops {
            let id = self.spans.alloc_id();
            self.spans.push(SpanRecord {
                id,
                parent,
                phase: SpanPhase::NetHop,
                node: to.index() as u16,
                start: h.start,
                end: h.end,
            });
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Proc { node, epoch } => self.on_proc(node, epoch),
            Event::Deliver { to, msg, sent } => self.on_deliver(to, msg, sent),
            Event::Resume { node, epoch } => self.on_resume(node, epoch),
            Event::CkptTimer => self.on_ckpt_timer(),
            Event::Failure { node, kind } => self.on_failure(node, kind),
            Event::Repair { node } => self.on_repair_request(node),
            Event::NetDeliver { src, to, seq, msg } => self.on_net_deliver(src, to, seq, msg),
            Event::NetAck { src, dst, seq } => {
                self.in_flight.remove(&(src, dst, seq));
            }
            Event::NetRetry { src, dst, seq } => self.on_net_retry(src, dst, seq),
            Event::LinkCut { a, b } => {
                self.trace.push(TraceEvent::LinkCut {
                    at: self.queue.now(),
                    a,
                    b,
                });
                self.mesh.fail_link(a, b);
            }
            Event::RouterDown { node } => {
                self.trace.push(TraceEvent::RouterDown {
                    at: self.queue.now(),
                    node,
                });
                self.mesh.fail_router(node);
            }
            Event::FaultTick => self.on_fault_tick(),
        }
        if self.halted {
            return; // terminal outcome: no phase may make progress
        }
        if self.cfg.workload.barrier_interval_refs.is_some() && self.phase == Phase::Running {
            self.try_release_barrier();
        }
        // Phase progress checks after every event.
        if self.phase == Phase::Draining {
            self.try_begin_create();
        }
        if self.phase == Phase::Create
            && self.create_done == self.ring.alive_count()
            && self.deliver_pending == 0
        {
            self.do_commit();
        }
        if self.phase == Phase::Recovering
            && self.reconfig_done == self.reconfig_expected
            && self.deliver_pending == 0
        {
            self.finish_recovery();
        }
    }

    /// Releases the global barrier once every eligible node has arrived.
    fn try_release_barrier(&mut self) {
        let eligible = self
            .proc
            .iter()
            .filter(|p| !matches!(p, ProcState::Done | ProcState::Dead))
            .count();
        let waiting = self
            .proc
            .iter()
            .filter(|&&p| p == ProcState::AtBarrier)
            .count();
        if eligible == 0 || waiting < eligible {
            return;
        }
        for i in 0..self.nodes.len() {
            if self.proc[i] == ProcState::AtBarrier {
                self.proc[i] = ProcState::Paused;
                let id = self.nodes[i].id;
                self.resume_paused(id, 1);
            }
        }
    }

    /// Picks the next reference for `node` from its assigned streams
    /// (round-robin), or `None` when its quota is complete.
    fn next_ref_for(&mut self, node: NodeId) -> Option<(usize, MemRef)> {
        let i = node.index();
        if let Some(re_injected) = self.carryover[i].pop_front() {
            return Some(re_injected);
        }
        let k = self.assigned[i].len();
        for step in 0..k {
            let si = self.assigned[i][(self.rr[i] + step) % k];
            let quota = self.cfg.warmup_refs_per_node + self.cfg.refs_per_node;
            if self.streams[si].refs_emitted() < quota {
                self.rr[i] = (self.rr[i] + step + 1) % k;
                let r = self.streams[si].next_ref();
                return Some((si, r));
            }
        }
        None
    }

    /// Makes `node` Ready with a buffered reference and schedules its issue.
    /// `include_pre` adds the reference's compute gap to the issue time
    /// (used for freshly generated references).
    fn prepare_and_schedule(&mut self, node: NodeId, at_delay: Cycles, include_pre: bool) {
        let i = node.index();
        if self.pending_ref[i].is_none() {
            match self.next_ref_for(node) {
                Some((si, r)) => self.pending_ref[i] = Some((si, r)),
                None => {
                    self.proc[i] = ProcState::Done;
                    return;
                }
            }
        }
        let pre = if include_pre {
            Cycles::from(
                self.pending_ref[i]
                    .as_ref()
                    .expect("just filled")
                    .1
                    .pre_cycles,
            )
        } else {
            0
        };
        self.proc[i] = ProcState::Ready;
        self.epochs[i] += 1;
        let epoch = self.epochs[i];
        self.queue.schedule(
            self.queue.now() + at_delay + pre,
            Event::Proc { node, epoch },
        );
    }

    fn on_proc(&mut self, node: NodeId, epoch: u64) {
        let i = node.index();
        if epoch != self.epochs[i] || self.proc[i] != ProcState::Ready {
            return; // stale event from before a pause/rollback
        }
        debug_assert_eq!(
            self.phase,
            Phase::Running,
            "ready processors only run in Running"
        );

        // Global barrier: SPLASH-style phase synchronisation.
        if let Some(interval) = self.cfg.workload.barrier_interval_refs {
            if self.refs_since_barrier[i] >= interval {
                self.refs_since_barrier[i] = 0;
                self.proc[i] = ProcState::AtBarrier;
                self.try_release_barrier();
                return;
            }
        }
        let (si, r) = self.pending_ref[i]
            .take()
            .expect("ready node has a buffered reference");

        self.metrics.refs += 1;
        self.metrics.per_node[i].refs += 1;
        self.refs_since_barrier[i] += 1;
        self.metrics.instructions += 1 + u64::from(r.pre_cycles);
        if self.baseline.is_none()
            && self.cfg.warmup_refs_per_node > 0
            && self.metrics.refs >= self.cfg.warmup_refs_per_node * self.nodes.len() as u64
        {
            let mut snap = self.metrics.clone();
            snap.total_cycles = 0;
            snap.net_messages = self.mesh.stats().messages;
            snap.net_contention_cycles = self.mesh.stats().contention_cycles;
            snap.net_detour_hops = self.mesh.stats().detour_hops;
            self.baseline = Some((snap, self.queue.now()));
        }
        if r.is_write {
            self.metrics.writes += 1;
        } else {
            self.metrics.reads += 1;
        }

        let write_value = ((si as u64) << 48) | self.streams[si].refs_emitted();
        let req = AccessReq {
            addr: r.addr,
            is_write: r.is_write,
            write_value,
        };
        let mut ctx = Ctx::new(&self.ring, self.queue.now());
        let outcome = self.engine.access(&mut self.nodes[i], req, &mut ctx);
        let (out, effects) = ctx.finish();
        if self.spans.enabled() && matches!(outcome, AccessOutcome::Stalled) {
            // Open the root Transaction span before the request messages
            // leave, so their hop spans find their parent.
            self.open_txn[i] = self.spans.alloc_id();
        }
        self.apply_outgoing(node, out);
        self.apply_effects(node, effects);

        match outcome {
            AccessOutcome::Complete { latency, source } => {
                match source {
                    HitSource::Cache if !r.is_write => self.metrics.cache_read_hits += 1,
                    HitSource::LocalAmCk => self.metrics.shared_ck_reads += 1,
                    _ => {}
                }
                self.metrics.access_latency.record(latency);
                self.prepare_and_schedule(node, latency, true);
            }
            AccessOutcome::Stalled => {
                if r.is_write {
                    self.metrics.write_misses += 1;
                    self.metrics.per_node[i].write_misses += 1;
                } else {
                    self.metrics.read_misses += 1;
                    self.metrics.per_node[i].read_misses += 1;
                }
                self.stall_start[i] = self.queue.now();
                self.proc[i] = ProcState::Stalled;
            }
        }
    }

    fn on_deliver(&mut self, to: NodeId, msg: Msg, sent: Cycles) {
        self.deliver_pending -= 1;
        if !self.nodes[to.index()].alive {
            return; // fail-silent node swallows the message
        }
        if self.trace.enabled() {
            self.trace.push(TraceEvent::Delivery {
                at: self.queue.now(),
                to,
                kind: msg.kind(),
                item: msg.item(),
            });
        }
        self.record_leg(to, &msg, sent);
        let mut ctx = Ctx::new(&self.ring, self.queue.now());
        self.engine
            .handle(&mut self.nodes[to.index()], msg, &mut ctx);
        let (out, effects) = ctx.finish();
        self.apply_outgoing(to, out);
        self.apply_effects(to, effects);
    }

    fn on_resume(&mut self, node: NodeId, epoch: u64) {
        let i = node.index();
        if epoch != self.epochs[i] || self.proc[i] != ProcState::Stalled {
            return;
        }
        self.metrics
            .access_latency
            .record(self.queue.now() - self.stall_start[i]);
        if self.spans.enabled() {
            let id = std::mem::take(&mut self.open_txn[i]);
            if id != 0 {
                self.spans.push(SpanRecord {
                    id,
                    parent: 0,
                    phase: SpanPhase::Transaction,
                    node: i as u16,
                    start: self.stall_start[i],
                    end: self.queue.now(),
                });
            }
        }
        if self.phase == Phase::Running {
            self.prepare_and_schedule(node, 0, true);
        } else {
            self.proc[i] = ProcState::Paused;
        }
    }

    fn on_ckpt_timer(&mut self) {
        self.timer_in_queue = false;
        if self.all_done() {
            return;
        }
        if self.phase != Phase::Running {
            // Recovery in progress: try again a period later.
            self.schedule_timer(self.period());
            return;
        }
        self.phase = Phase::Draining;
        self.ckpt_start = self.queue.now();
        // Pause every processor that has not yet issued; stalled ones
        // finish their transaction first ("each node first terminates all
        // pending requests").
        for i in 0..self.nodes.len() {
            if self.proc[i] == ProcState::Ready {
                self.proc[i] = ProcState::Paused;
                self.epochs[i] += 1; // invalidates the scheduled Proc event
            }
        }
        self.try_begin_create();
    }

    fn try_begin_create(&mut self) {
        let quiesced = self.deliver_pending == 0
            && self.proc.iter().all(|&p| {
                matches!(
                    p,
                    ProcState::Paused | ProcState::AtBarrier | ProcState::Done | ProcState::Dead
                )
            });
        if !quiesced {
            return;
        }
        if let Some(node) = self.pending_repair.take() {
            self.do_repair(node);
            return;
        }
        self.phase = Phase::Create;
        self.create_done = 0;
        self.trace.push(TraceEvent::CheckpointBegun {
            at: self.queue.now(),
            gen: self.gen + 1,
        });
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let mut ctx = Ctx::new(&self.ring, self.queue.now());
            self.engine
                .begin_create(&mut self.nodes[i], self.gen + 1, &mut ctx);
            let (out, effects) = ctx.finish();
            let id = self.nodes[i].id;
            self.apply_outgoing(id, out);
            self.apply_effects(id, effects);
        }
        // An entirely clean machine commits immediately.
        if self.create_done == self.ring.alive_count() && self.deliver_pending == 0 {
            self.do_commit();
        }
    }

    fn do_commit(&mut self) {
        debug_assert_eq!(self.phase, Phase::Create);
        let commit_start = self.queue.now();
        // A commit ends the replay window: lost work is re-covered by a
        // durable recovery point from here on. The window can open at a
        // recovery end scheduled past this event; such a not-yet-open
        // window is discarded without a sample (a clamped zero would
        // pollute the replay p50).
        if let Some(start) = self.replay_start.take() {
            if commit_start >= start {
                self.metrics.phases.replay.record(commit_start - start);
            }
        }
        if self.spans.enabled() {
            if let Some((root, rstart, victim)) = self.open_recovery.take() {
                if let Some((id, start)) = self.open_replay.take() {
                    self.spans.push(SpanRecord {
                        id,
                        parent: root,
                        phase: SpanPhase::Replay,
                        node: victim,
                        start: start.min(commit_start),
                        end: commit_start,
                    });
                }
                self.spans.push(SpanRecord {
                    id: root,
                    parent: 0,
                    phase: SpanPhase::Recovery,
                    node: victim,
                    start: rstart,
                    end: commit_start,
                });
            }
        }
        self.metrics.t_create += commit_start - self.ckpt_start;
        self.gen += 1;
        self.metrics.checkpoints += 1;
        self.trace.push(TraceEvent::CheckpointCommitted {
            at: commit_start,
            gen: self.gen,
        });

        let mut max_dur = 0;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let stats = ckpt::commit_node(&mut self.nodes[i], &self.cfg.ft, self.engine.timing());
            max_dur = max_dur.max(stats.duration);
            if self.trace.enabled() {
                self.trace.push(TraceEvent::NodeCommit {
                    at: commit_start,
                    node: self.nodes[i].id,
                    dur: stats.duration,
                });
            }
            if self.proc[i] == ProcState::Paused {
                // This processor was stopped from the establishment start
                // until its own commit scan finished.
                self.metrics.per_node[i].ckpt_stall_cycles +=
                    (commit_start - self.ckpt_start) + stats.duration;
                let node = self.nodes[i].id;
                self.resume_paused(node, stats.duration);
            }
        }
        self.metrics.t_commit += max_dur;

        // The recovery point includes the processor (stream) state, plus
        // any reference already emitted into an issue buffer but not yet
        // executed — the stream snapshot counts it as consumed, so only
        // this side record can resurrect it after a rollback.
        self.snapshots = self.streams.iter().map(NodeStream::snapshot).collect();
        self.pending_snap = vec![None; self.streams.len()];
        for p in self.pending_ref.iter().flatten() {
            self.pending_snap[p.0] = Some(p.1);
        }
        // The committed-value oracle is always maintained (not just under
        // `verify`): the restartable-recovery copy audit needs it to
        // certify data loss on any machine.
        self.rebuild_oracle();

        self.phase = Phase::Running;
        let period = self.period();
        let next = (self.ckpt_start + period).max(commit_start + 1);
        self.schedule_timer(next - self.queue.now());
    }

    fn resume_paused(&mut self, node: NodeId, delay: Cycles) {
        debug_assert_eq!(self.proc[node.index()], ProcState::Paused);
        self.prepare_and_schedule(node, delay, self.pending_ref[node.index()].is_none());
    }

    fn period(&self) -> Cycles {
        self.cfg
            .ft
            .ckpt_period_cycles()
            .expect("timer only runs with FT enabled")
    }

    fn schedule_timer(&mut self, delay: Cycles) {
        debug_assert!(!self.timer_in_queue, "one checkpoint timer at a time");
        self.queue
            .schedule(self.queue.now() + delay, Event::CkptTimer);
        self.timer_in_queue = true;
    }

    /// The continuous fault process has events due: apply every due
    /// action through the same machinery the scripted APIs use, then arm
    /// the next tick. A failure that cannot be applied (its node is still
    /// down, or the ECP's four-node floor would be breached) is deferred
    /// by a fresh MTBF draw instead of being forced.
    fn on_fault_tick(&mut self) {
        let now = self.queue.now();
        let Some(mut fp) = self.fault_process.take() else {
            return;
        };
        for action in fp.fire(now) {
            if self.halted {
                break;
            }
            match action {
                FaultAction::FailNode(node) => {
                    // A draw landing inside an open recovery window fires
                    // like any other: recovery is restartable, so the soak
                    // exercises the nested-fault regime instead of
                    // deferring around it (which skewed the sampled
                    // distribution). Only structural guards defer — the
                    // node is already down, the ECP's four-live-node
                    // establishment floor, or a kill that would partition
                    // the live mesh.
                    if !self.nodes[node.index()].alive
                        || self.ring.alive_count() <= FAULT_PROC_MIN_ALIVE
                        || !self.kill_keeps_mesh_connected(node)
                    {
                        fp.defer_node_fail(node, now);
                    } else {
                        self.on_failure(node, FailureKind::Permanent);
                    }
                }
                FaultAction::RepairNode(node) => self.on_repair_request(node),
                FaultAction::CutLink(a, b) => {
                    self.trace.push(TraceEvent::LinkCut { at: now, a, b });
                    self.mesh.fail_link(a, b);
                }
                FaultAction::RepairLink(a, b) => {
                    self.trace.push(TraceEvent::LinkRepaired { at: now, a, b });
                    self.mesh.repair_link(a, b);
                }
            }
        }
        if !self.halted {
            if let Some(at) = fp.next_at() {
                self.queue.schedule(at.max(now + 1), Event::FaultTick);
            }
        }
        self.fault_process = Some(fp);
    }

    /// Whether the grid of live mesh routers stays connected after
    /// `victim` dies. A permanent failure takes the router down with the
    /// node, and the continuous fault process may hold several nodes down
    /// at once — but it must never partition the live machine: on a
    /// healthy-link fabric every live pair must stay routable (the
    /// fire-and-forget send path treats an unroutable live destination as
    /// a protocol violation). Cut links are deliberately ignored here:
    /// when the link process is active the reliable transport is too, and
    /// it escalates residual partitions instead of asserting.
    fn kill_keeps_mesh_connected(&self, victim: NodeId) -> bool {
        if self.cfg.bus.is_some() {
            return true; // a bus has no routers to lose
        }
        self.mesh_single_component(|i| self.nodes[i].alive && i != victim.index())
    }

    /// Whether the nodes selected by `up` form one mesh-connected
    /// component (grid adjacency, links assumed healthy — see the caller
    /// docs for why cut links are ignored).
    fn mesh_single_component(&self, up: impl Fn(usize) -> bool) -> bool {
        let n = self.nodes.len();
        let Some(start) = (0..n).find(|&i| up(i)) else {
            return false;
        };
        let geo = ftcoma_net::MeshGeometry::for_nodes(n);
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(i) = stack.pop() {
            let (x, y) = geo.coords(NodeId::new(i as u16));
            for (j, seen_j) in seen.iter_mut().enumerate() {
                if !*seen_j && up(j) {
                    let (bx, by) = geo.coords(NodeId::new(j as u16));
                    if x.abs_diff(bx) + y.abs_diff(by) == 1 {
                        *seen_j = true;
                        stack.push(j);
                    }
                }
            }
        }
        (0..n).filter(|&i| up(i)).all(|i| seen[i])
    }

    /// Whether rejoining `node` leaves every live router (including the
    /// rejoined one) in a single mesh component. The dual of
    /// [`Self::kill_keeps_mesh_connected`]: the continuous fault process
    /// may ask for a repair while all of the node's grid neighbours are
    /// still down, and granting it would create a live-but-unroutable
    /// node. Cut links are ignored for the same reason as on the kill
    /// side.
    fn rejoin_reaches_mesh(&self, node: NodeId) -> bool {
        if self.cfg.bus.is_some() {
            return true;
        }
        self.mesh_single_component(|i| self.nodes[i].alive || i == node.index())
    }

    fn on_repair_request(&mut self, node: NodeId) {
        if self.nodes[node.index()].alive {
            return; // nothing to repair
        }
        if self.phase != Phase::Running
            || self.pending_repair.is_some()
            || !self.rejoin_reaches_mesh(node)
        {
            // Let the current checkpoint/recovery finish first — or, under
            // the continuous fault process, wait until a mesh neighbour is
            // back up: rejoining a node every live router is dead to would
            // make it live but unroutable.
            self.queue.schedule_in(10_000, Event::Repair { node });
            return;
        }
        // Drain in-flight transactions (home responsibility is about to
        // move), then perform the rejoin at quiescence.
        self.phase = Phase::Draining;
        self.pending_repair = Some(node);
        for i in 0..self.nodes.len() {
            if self.proc[i] == ProcState::Ready {
                self.proc[i] = ProcState::Paused;
                self.epochs[i] += 1;
            }
        }
        self.try_begin_create();
    }

    /// Performs the rejoin at quiescence: fresh node, ring membership,
    /// home-range migration back, and reclaiming its share of the work.
    fn do_repair(&mut self, node: NodeId) {
        let i = node.index();
        self.mesh.repair_node(node);
        self.ring.mark_alive(node);
        self.nodes[i] = NodeState::new(node, self.cfg.am, self.cfg.cache);
        self.engine.reset_node(node);
        self.proc[i] = ProcState::Paused;
        self.pending_ref[i] = None;

        // The statically assigned home range returns to the repaired node.
        recovery::rebuild_homes_from_owners(&mut self.nodes, &self.ring);

        // Reclaim the node's own stream from whoever adopted it (any
        // rollback-re-injected reference of that stream follows it home).
        for other in 0..self.nodes.len() {
            if other != i {
                self.assigned[other].retain(|&s| s != i);
                while let Some(pos) = self.carryover[other].iter().position(|&(s, _)| s == i) {
                    let moved = self.carryover[other].remove(pos).expect("position exists");
                    self.carryover[i].push_back(moved);
                }
            }
        }
        if !self.assigned[i].contains(&i) {
            self.assigned[i].push(i);
        }
        self.metrics.repairs += 1;
        self.metrics.per_node[i].repairs += 1;
        if let Some(from) = self.down_since[i].take() {
            self.metrics.per_node[i].down_cycles += self.queue.now() - from;
            self.metrics.down_intervals[i].push((from, self.queue.now()));
        }
        self.trace.push(TraceEvent::Repaired {
            at: self.queue.now(),
            node,
        });

        self.phase = Phase::Running;
        for k in 0..self.nodes.len() {
            if self.proc[k] == ProcState::Paused || self.proc[k] == ProcState::Done {
                // Done nodes may have new work (the repaired node); Paused
                // ones simply resume.
                let id = self.nodes[k].id;
                self.proc[k] = ProcState::Paused;
                self.resume_paused(id, 1);
            }
        }
    }

    fn on_failure(&mut self, node: NodeId, kind: FailureKind) {
        if !self.nodes[node.index()].alive {
            return;
        }
        // A fault inside an open recovery window *restarts* recovery: the
        // in-flight reconfiguration (and its purged re-replication
        // traffic) is abandoned, the new victim joins the failure set and
        // the whole pipeline re-enters from the on-node committed state.
        // Every step below is idempotent against a half-applied
        // predecessor — rollback skips already-restored copies, the dedup
        // pass collapses double-installed recovery copies, and orphan
        // collection counts live copies rather than trusting pointers —
        // so a restart never double-applies partner migration or orphan
        // re-replication. The only fault that cannot be absorbed is a
        // certified data loss, caught by the copy audit further down.
        let was_recovering = self.phase == Phase::Recovering;
        if was_recovering {
            let abandoned = self.queue.now() - self.recovery_start;
            self.metrics.recovery_restarts += 1;
            self.metrics.phases.restart.record(abandoned);
            // The abandoned window is recovery time too; `finish_recovery`
            // only accounts from the *latest* restart.
            self.metrics.t_recovery += abandoned;
        }
        self.metrics.failures += 1;
        self.episode_faults += 1;
        self.metrics.recovery_max_depth = self.metrics.recovery_max_depth.max(self.episode_faults);
        self.recovery_start = self.queue.now();
        self.trace.push(TraceEvent::Failure {
            at: self.queue.now(),
            node,
            permanent: kind == FailureKind::Permanent,
        });
        if was_recovering {
            self.trace.push(TraceEvent::RecoveryRestarted {
                at: self.queue.now(),
                node,
                depth: self.episode_faults,
            });
        }
        // A failure inside a replay window ends that window early. The
        // window can open in the *future* (a recovery end pushed past the
        // failure event by the rollback scan); such a window never opened,
        // so it is discarded without a sample (a clamped zero would
        // pollute the replay p50).
        if let Some(start) = self.replay_start.take() {
            if self.recovery_start >= start {
                self.metrics
                    .phases
                    .replay
                    .record(self.recovery_start - start);
            }
        }
        // Detection is immediate under the fail-stop model; the zero-width
        // sample keeps the phase present in the decomposition.
        self.metrics.phases.detection.record(0);
        self.note_down(node);
        if self.spans.enabled() {
            let now = self.queue.now();
            // In-flight transactions are about to be aborted by the purge.
            self.close_open_txn_spans(now);
            // Close a stale recovery tree (failure during a replay window).
            if let Some((rid, rstart, victim)) = self.open_recovery.take() {
                if let Some((id, start)) = self.open_replay.take() {
                    self.spans.push(SpanRecord {
                        id,
                        parent: rid,
                        phase: SpanPhase::Replay,
                        node: victim,
                        start: start.min(now),
                        end: now,
                    });
                }
                self.spans.push(SpanRecord {
                    id: rid,
                    parent: 0,
                    phase: SpanPhase::Recovery,
                    node: victim,
                    start: rstart,
                    end: now,
                });
            }
            let root = self.spans.alloc_id();
            self.open_recovery = Some((root, now, node.index() as u16));
            let det = self.spans.alloc_id();
            self.spans.push(SpanRecord {
                id: det,
                parent: root,
                phase: SpanPhase::Detection,
                node: node.index() as u16,
                start: now,
                end: now,
            });
        }

        // 1. Every in-flight message and scheduled processor issue is moot
        //    (scheduled interconnect faults survive: the mesh keeps its own
        //    fate regardless of node-level recovery). The transport loses
        //    all its packets with the network, so its state resets too.
        self.queue.retain(|e| {
            matches!(
                e,
                Event::CkptTimer
                    | Event::Failure { .. }
                    | Event::Repair { .. }
                    | Event::LinkCut { .. }
                    | Event::RouterDown { .. }
                    | Event::FaultTick
            )
        });
        // A repair that was draining toward quiescence when this failure
        // hit would otherwise be lost for good (the phase leaves Draining
        // and `pending_repair` is only consumed at quiescence), wedging
        // every later repair of the run behind it: re-queue it as a fresh
        // request once recovery is over.
        if let Some(r) = self.pending_repair.take() {
            self.queue.schedule_in(10_000, Event::Repair { node: r });
        }
        self.deliver_pending = 0;
        self.in_flight.clear();
        for s in &mut self.seqs {
            s.clear();
        }
        for d in &mut self.dedup {
            d.clear();
        }
        for i in 0..self.nodes.len() {
            self.epochs[i] += 1;
            self.pending_ref[i] = None;
        }

        // 2. The failed node. A permanent loss takes its mesh router down
        //    with it, so subsequent traffic detours around the dead node
        //    instead of flowing through a ghost router.
        let permanent = kind == FailureKind::Permanent;
        if permanent {
            self.mesh.fail_node(node);
            self.ring.mark_dead(node);
            recovery::wipe_dead_node(&mut self.nodes[node.index()]);
            self.proc[node.index()] = ProcState::Dead;
            // Its work is adopted by the ring successor.
            let heir = self.ring.successor(node).expect("a live node remains");
            let work = std::mem::take(&mut self.assigned[node.index()]);
            self.assigned[heir.index()].extend(work);
        }

        // 3. Global rollback on every live node.
        let mut max_scan = 0;
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            let stats = recovery::rollback_node(&mut self.nodes[i], self.engine.timing());
            max_scan = max_scan.max(stats.duration);
            let id = self.nodes[i].id;
            self.metrics.per_node[i].rollback_cycles += stats.duration;
            self.metrics.phases.rollback.record(stats.duration);
            if self.trace.enabled() {
                self.trace.push(TraceEvent::NodeRollback {
                    at: self.recovery_start,
                    node: id,
                    dur: stats.duration,
                });
            }
            if self.spans.enabled() {
                if let Some((root, _, _)) = self.open_recovery {
                    let sid = self.spans.alloc_id();
                    self.spans.push(SpanRecord {
                        id: sid,
                        parent: root,
                        phase: SpanPhase::Rollback,
                        node: i as u16,
                        start: self.recovery_start,
                        end: self.recovery_start + stats.duration,
                    });
                }
            }
            self.engine.reset_node(id);
            if self.proc[i] != ProcState::Dead {
                self.proc[i] = ProcState::Paused;
            }
        }
        self.recovery_scan_end = self.recovery_start + max_scan;

        for c in &mut self.refs_since_barrier {
            *c = 0;
        }

        // 4. Recovery copies that were mid-injection exist twice (origin
        //    and destination); keep one of each and mend partner pointers.
        recovery::dedup_recovery_copies(&mut self.nodes);

        // 4b. Per-item copy accounting: recovery can restart as long as
        //     every *written* committed item retains at least one live
        //     copy. A certified zero-copy written item is unreconstructible
        //     — halt fail-stop. Never-written committed items (value 0)
        //     that lost every copy are dropped from the oracle instead:
        //     the machine recreates them on first touch, exactly like
        //     items annihilated by a pre-first-commit rollback.
        let audit = recovery::audit_copies(
            &self.nodes,
            self.committed_values.iter().map(|(&i, &v)| (i, v)),
        );
        if let Some(&item) = audit.lost.first() {
            self.metrics.faults_unsurvivable += 1;
            self.outcome = RecoveryOutcome::UnrecoverableDataLoss {
                at: self.queue.now(),
                item,
            };
            self.halt();
            return;
        }
        for item in &audit.droppable {
            self.committed_values.remove(item);
        }

        // 5. Processor state (streams) rewinds to the recovery point, and
        //    references that sat in an issue buffer when that recovery
        //    point was taken are re-injected: the restored streams will
        //    never re-emit them. Each goes to whichever live node now
        //    executes its stream (the ring heir after an adoption).
        for (stream, snap) in self.streams.iter_mut().zip(&self.snapshots) {
            stream.restore(snap);
        }
        for q in &mut self.carryover {
            q.clear();
        }
        for (si, buffered) in self.pending_snap.iter().enumerate() {
            if let Some(r) = buffered {
                let owner = (0..self.nodes.len())
                    .find(|&p| self.proc[p] != ProcState::Dead && self.assigned[p].contains(&si));
                if let Some(p) = owner {
                    self.carryover[p].push_back((si, *r));
                }
            }
        }

        // 5. Reconfiguration: re-replicate orphaned recovery copies, then
        //    rebuild the localization pointers from the surviving primaries.
        //    Orphans are found by counting live copies per item rather than
        //    chasing partner pointers: a pointer can be stale when the
        //    failure purged an in-flight `PartnerUpdate` of a copy that had
        //    just migrated, and a stale pointer must not hide an orphan.
        //    A restart re-runs the census even for a transient victim: the
        //    abandoned recovery's re-replication traffic was purged above,
        //    so items it had not yet re-paired are still singletons.
        let orphan_lists: Vec<(NodeId, Vec<ItemId>)> = if permanent || was_recovering {
            recovery::collect_singleton_orphans(&mut self.nodes)
        } else {
            Vec::new()
        };
        recovery::rebuild_homes(&mut self.nodes, &self.ring);

        self.phase = Phase::Recovering;
        self.reconfig_done = 0;
        self.reconfig_expected = orphan_lists.len();
        for (id, orphans) in orphan_lists {
            let mut ctx = Ctx::new(&self.ring, self.queue.now());
            self.engine
                .begin_reconfig(&mut self.nodes[id.index()], orphans, &mut ctx);
            let (out, effects) = ctx.finish();
            self.apply_outgoing(id, out);
            self.apply_effects(id, effects);
        }
        if self.reconfig_expected == 0 && self.deliver_pending == 0 {
            self.finish_recovery();
        }
    }

    /// Opens a down interval for `node` (availability accounting).
    fn note_down(&mut self, node: NodeId) {
        let i = node.index();
        self.metrics.per_node[i].down_count += 1;
        if self.down_since[i].is_none() {
            self.down_since[i] = Some(self.queue.now());
        }
    }

    fn finish_recovery(&mut self) {
        debug_assert_eq!(self.phase, Phase::Recovering);
        let end = self.queue.now().max(self.recovery_scan_end);
        self.metrics.t_recovery += end - self.recovery_start;
        self.metrics
            .phases
            .reconfiguration
            .record(end - self.recovery_start);

        if self.cfg.verify {
            if let Err(problems) = self.verify_against_oracle() {
                self.outcome = RecoveryOutcome::InvariantViolation { at: end, problems };
                self.halt();
                return;
            }
        }

        // The whole episode is survived at once: a restarted recovery
        // covers every fault folded into it.
        self.metrics.faults_survived += self.episode_faults;
        self.episode_faults = 0;
        self.trace.push(TraceEvent::Recovered { at: end });
        // Surviving (transient) victims come back up when the machine
        // resumes; permanently failed nodes stay down until repair.
        for i in 0..self.nodes.len() {
            if self.nodes[i].alive {
                if let Some(from) = self.down_since[i].take() {
                    self.metrics.per_node[i].down_cycles += end - from;
                    self.metrics.down_intervals[i].push((from, end));
                }
            }
        }
        self.replay_start = Some(end);
        if self.spans.enabled() {
            if let Some((root, _, victim)) = self.open_recovery {
                let id = self.spans.alloc_id();
                self.spans.push(SpanRecord {
                    id,
                    parent: root,
                    phase: SpanPhase::Reconfiguration,
                    node: victim,
                    start: self.recovery_start,
                    end,
                });
                let rid = self.spans.alloc_id();
                self.open_replay = Some((rid, end));
            }
        }
        self.phase = Phase::Running;
        let delay = end - self.queue.now();
        for i in 0..self.nodes.len() {
            if self.proc[i] == ProcState::Paused {
                let id = self.nodes[i].id;
                self.resume_paused(id, delay);
            }
        }
        if self.cfg.ft.ckpt_period_cycles().is_some() && !self.timer_in_queue && !self.all_done() {
            self.schedule_timer(delay + self.period());
        }
    }

    /// Stops the event loop: drains the queue so [`Machine::run`] exits at
    /// the current simulation time with the terminal outcome recorded.
    fn halt(&mut self) {
        debug_assert!(
            !self.outcome.is_recovered(),
            "halt needs a terminal outcome"
        );
        self.halted = true;
        self.queue.clear();
        self.deliver_pending = 0;
        self.timer_in_queue = false;
    }

    fn rebuild_oracle(&mut self) {
        self.committed_values.clear();
        for ns in self.nodes.iter().filter(|n| n.alive) {
            for (item, slot) in ns.am.iter_present() {
                if slot.state == ItemState::SharedCk1 {
                    self.committed_values.insert(item, slot.value);
                }
            }
        }
    }

    fn apply_outgoing(&mut self, from: NodeId, out: Vec<ftcoma_protocol::msg::Outgoing>) {
        for o in out {
            let depart = self.queue.now() + o.delay;
            if !self.transport_active || o.to == from {
                // Fire-and-forget: either no interconnect faults are in
                // play, or the message never leaves the node (node-local
                // deliveries need no end-to-end framing). A send can only
                // fail once a mesh fault has removed the route, in which
                // case the destination must already be a dead node whose
                // router died with it; the dead node would have swallowed
                // the message anyway.
                match self
                    .mesh
                    .send(depart, from, o.to, o.msg.class(), o.msg.payload_bytes())
                {
                    Ok(arrival) => {
                        self.record_hop_spans(&o.msg, o.to);
                        self.queue.schedule(
                            arrival,
                            Event::Deliver {
                                to: o.to,
                                msg: o.msg,
                                sent: depart,
                            },
                        );
                        self.deliver_pending += 1;
                    }
                    Err(_) => {
                        debug_assert!(
                            !self.nodes[o.to.index()].alive,
                            "unroutable destination {} is alive",
                            o.to
                        );
                        self.metrics.net_dropped_msgs += 1;
                    }
                }
                continue;
            }
            // Reliable transport: sequence the packet, remember it until
            // acked, and let the retry timer repair whatever the network
            // does to it. `deliver_pending` counts logical messages, so it
            // rises exactly once here no matter how many copies fly.
            let seq = self.seqs[from.index()].next(o.to);
            self.deliver_pending += 1;
            self.in_flight.insert(
                (from, o.to, seq),
                InFlight {
                    msg: o.msg,
                    attempts: 0,
                    sent: depart,
                },
            );
            self.transmit(depart, from, o.to, seq);
        }
    }

    /// Sends one physical copy of in-flight packet `(src, dst, seq)` and
    /// arms its retransmission timer. The fault plan may drop, duplicate
    /// or delay the copy; an unroutable destination counts as a drop (the
    /// retry timer escalates if the route never comes back).
    fn transmit(&mut self, depart: Cycles, src: NodeId, dst: NodeId, seq: u64) {
        let entry = &self.in_flight[&(src, dst, seq)];
        let attempt = entry.attempts;
        let (class, bytes) = (entry.msg.class(), entry.msg.payload_bytes());
        let (mut copies, mut extra_delay) = (1, 0);
        if let Some(plan) = &mut self.net_plan {
            match plan.decide(depart) {
                FaultDecision::Deliver => {}
                FaultDecision::Drop => copies = 0,
                FaultDecision::Duplicate => copies = 2,
                FaultDecision::Delay(d) => extra_delay = d,
            }
        }
        if copies == 0 {
            self.metrics.net_dropped_msgs += 1;
        }
        for _ in 0..copies {
            match self.mesh.send(depart, src, dst, class, bytes) {
                Ok(arrival) => {
                    // Clone only per physical copy scheduled (the stored
                    // packet must stay in `in_flight` for retransmission).
                    let msg = self.in_flight[&(src, dst, seq)].msg.clone();
                    if attempt == 0 {
                        self.record_hop_spans(&msg, dst);
                    }
                    self.queue.schedule(
                        arrival + extra_delay,
                        Event::NetDeliver {
                            src,
                            to: dst,
                            seq,
                            msg,
                        },
                    );
                }
                Err(_) => {
                    self.metrics.net_dropped_msgs += 1;
                    break;
                }
            }
        }
        self.queue.schedule(
            depart + self.cfg.retry.backoff(attempt),
            Event::NetRetry { src, dst, seq },
        );
    }

    /// A physical copy of `(src, seq)` reached `to`: ack it, and hand the
    /// payload to the protocol engine iff this is its first arrival.
    fn on_net_deliver(&mut self, src: NodeId, to: NodeId, seq: u64, msg: Msg) {
        if !self.nodes[to.index()].alive {
            return; // purged-queue stragglers only; nothing was counted
        }
        // Ack every copy: the sender keeps retransmitting until an ack
        // survives the network, so duplicates must re-ack too.
        self.send_ack(to, src, seq);
        if !self.dedup[to.index()].first_delivery(src, seq) {
            return; // duplicate suppressed
        }
        self.deliver_pending -= 1;
        if self.trace.enabled() {
            self.trace.push(TraceEvent::Delivery {
                at: self.queue.now(),
                to,
                kind: msg.kind(),
                item: msg.item(),
            });
        }
        let sent = self
            .in_flight
            .get(&(src, to, seq))
            .map(|e| e.sent)
            .unwrap_or_else(|| self.queue.now());
        self.record_leg(to, &msg, sent);
        let mut ctx = Ctx::new(&self.ring, self.queue.now());
        self.engine
            .handle(&mut self.nodes[to.index()], msg, &mut ctx);
        let (out, effects) = ctx.finish();
        self.apply_outgoing(to, out);
        self.apply_effects(to, effects);
    }

    /// Sends a transport ack from `from` back to `to` for `(to, from, seq)`.
    /// Acks are header-only reply-class packets, subject to the fault plan
    /// but never retried themselves: a lost ack is repaired by the data
    /// packet's retransmission, which triggers a fresh ack.
    fn send_ack(&mut self, from: NodeId, to: NodeId, seq: u64) {
        let now = self.queue.now();
        let (mut copies, mut extra_delay) = (1, 0);
        if let Some(plan) = &mut self.net_plan {
            match plan.decide(now) {
                FaultDecision::Deliver => {}
                FaultDecision::Drop => copies = 0,
                FaultDecision::Duplicate => copies = 2,
                FaultDecision::Delay(d) => extra_delay = d,
            }
        }
        if copies == 0 {
            self.metrics.net_dropped_msgs += 1;
        }
        for _ in 0..copies {
            match self.mesh.send(now, from, to, NetClass::Reply, 0) {
                Ok(arrival) => {
                    self.queue.schedule(
                        arrival + extra_delay,
                        Event::NetAck {
                            src: to,
                            dst: from,
                            seq,
                        },
                    );
                }
                Err(_) => {
                    self.metrics.net_dropped_msgs += 1;
                    break;
                }
            }
        }
    }

    /// The retransmission timer for `(src, dst, seq)` fired. If the ack
    /// already arrived this is a no-op; otherwise retransmit with doubled
    /// timeout, or escalate once the retry budget is spent.
    fn on_net_retry(&mut self, src: NodeId, dst: NodeId, seq: u64) {
        let Some(entry) = self.in_flight.get_mut(&(src, dst, seq)) else {
            return; // acked in time
        };
        self.metrics.net_timeouts += 1;
        if entry.attempts >= self.cfg.retry.max_retries {
            self.in_flight.remove(&(src, dst, seq));
            self.escalate(src, dst);
            return;
        }
        entry.attempts += 1;
        self.metrics.net_retries += 1;
        let now = self.queue.now();
        self.transmit(now, src, dst, seq);
    }

    /// The transport gave up on `dst` after the policy's retry budget
    /// ([`MachineConfig::retry`]): decide what
    /// that means for the machine. A peer that is still routable looks
    /// dead, so the single-failure machinery handles it. If the mesh is
    /// severed, the largest connected component of live nodes (ties broken
    /// towards the one holding the lowest node id) carries on and treats
    /// the endpoints outside it as failed; when neither endpoint is in the
    /// majority component, no side can safely reconfigure and the machine
    /// halts fail-stop with [`RecoveryOutcome::PartitionedNetwork`].
    fn escalate(&mut self, src: NodeId, dst: NodeId) {
        if self.mesh.reachable(src, dst) {
            // Pure message loss: the peer is unresponsive, not unreachable.
            self.on_failure(dst, FailureKind::Permanent);
            return;
        }
        let live: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.id)
            .collect();
        let mut best: Vec<NodeId> = Vec::new();
        let mut assigned = vec![false; self.nodes.len()];
        for &n in &live {
            if assigned[n.index()] {
                continue;
            }
            let comp: Vec<NodeId> = live
                .iter()
                .copied()
                .filter(|&m| self.mesh.reachable(n, m))
                .collect();
            for &m in &comp {
                assigned[m.index()] = true;
            }
            // First strictly-larger component wins; iteration order is by
            // ascending node id, so ties resolve to the lowest-id one.
            if comp.len() > best.len() {
                best = comp;
            }
        }
        let src_in = best.contains(&src);
        let dst_in = best.contains(&dst);
        match (src_in, dst_in) {
            (true, false) => self.on_failure(dst, FailureKind::Permanent),
            (false, true) => self.on_failure(src, FailureKind::Permanent),
            _ => {
                self.outcome = RecoveryOutcome::PartitionedNetwork {
                    at: self.queue.now(),
                    from: src,
                    to: dst,
                };
                self.halt();
            }
        }
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Resume { latency } => {
                    let epoch = self.epochs[node.index()];
                    self.queue
                        .schedule(self.queue.now() + latency, Event::Resume { node, epoch });
                }
                Effect::CreateDone => self.create_done += 1,
                Effect::ReconfigDone => self.reconfig_done += 1,
                Effect::InjectionStarted { cause } => {
                    let counted = match cause {
                        InjectCause::Replacement => {
                            self.metrics.injections_replacement += 1;
                            true
                        }
                        InjectCause::ReadOnInvCk => {
                            self.metrics.injections_on_read += 1;
                            true
                        }
                        InjectCause::WriteOnInvCk => {
                            self.metrics.injections_write_inv_ck += 1;
                            true
                        }
                        InjectCause::WriteOnSharedCk => {
                            self.metrics.injections_write_shared_ck += 1;
                            true
                        }
                        _ => false,
                    };
                    if counted {
                        self.metrics.per_node[node.index()].injections += 1;
                    }
                }
                Effect::ReplicationBytes { bytes } => {
                    self.metrics.replication_bytes += bytes;
                    self.metrics.per_node[node.index()].replication_bytes += bytes;
                }
                Effect::ItemCheckpointed { reused_existing } => {
                    self.metrics.items_checkpointed += 1;
                    self.metrics.per_node[node.index()].items_checkpointed += 1;
                    if reused_existing {
                        self.metrics.reused_replicas += 1;
                    }
                }
                Effect::FatalNoSpace { item } => panic!(
                    "AM capacity exhausted: no node could host a copy of {item}; \
                     enlarge the AMs or shrink the working set (the paper reserves \
                     four irreplaceable pages per page to rule this out)"
                ),
            }
        }
    }
}

/// Every link of the mesh a machine of `n` nodes routes on: one entry per
/// undirected pair of mesh-adjacent node ids, ordered by ascending
/// `(low, high)` — the link universe the continuous fault process samples
/// cuts from.
fn mesh_links(n: usize) -> Vec<(NodeId, NodeId)> {
    let geo = ftcoma_net::MeshGeometry::for_nodes(n);
    let mut links = Vec::new();
    for i in 0..n {
        let (ax, ay) = geo.coords(NodeId::new(i as u16));
        for j in (i + 1)..n {
            let (bx, by) = geo.coords(NodeId::new(j as u16));
            if ax.abs_diff(bx) + ay.abs_diff(by) == 1 {
                links.push((NodeId::new(i as u16), NodeId::new(j as u16)));
            }
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use ftcoma_core::FtConfig;
    use ftcoma_workloads::presets;

    fn small_ecp_config() -> MachineConfig {
        MachineConfig {
            nodes: 8,
            refs_per_node: 3_000,
            workload: presets::water(),
            ft: FtConfig::enabled(400.0),
            verify: true,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn dead_node_reports_peak_pages_and_zero_current() {
        let mut m = Machine::new(small_ecp_config());
        let victim = NodeId::new(2);
        m.schedule_failure(20_000, victim, FailureKind::Permanent);
        let metrics = m.run();
        assert!(m.outcome().is_recovered(), "run must survive the failure");
        assert_eq!(metrics.failures, 1, "the failure must fire mid-run");

        let dead = &metrics.per_node[victim.index()];
        assert_eq!(
            dead.pages_allocated, 0,
            "a permanently failed node holds no pages"
        );
        assert!(
            dead.pages_peak > 0,
            "the peak up to the failure must be reported, not dropped"
        );
        // The aggregates cover live nodes only; per-node rows must agree.
        let live_current: u64 = metrics
            .per_node
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != victim.index())
            .map(|(_, n)| n.pages_allocated)
            .sum();
        assert_eq!(metrics.pages_allocated, live_current);
        let live_peak: u64 = metrics
            .per_node
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != victim.index())
            .map(|(_, n)| n.pages_peak)
            .sum();
        assert_eq!(metrics.pages_peak, live_peak);
    }

    #[test]
    fn spans_decompose_transactions_and_recoveries() {
        let mut m = Machine::new(MachineConfig {
            trace_capacity: 100_000,
            ..small_ecp_config()
        });
        m.schedule_failure(20_000, NodeId::new(2), FailureKind::Transient);
        let metrics = m.run();
        assert!(m.outcome().is_recovered());

        let spans = m.spans();
        assert!(!spans.is_empty());
        for s in &spans {
            assert!(s.end >= s.start, "span {s:?} ends before it starts");
            assert_ne!(s.id, 0);
        }
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.phase == ftcoma_sim::span::SpanPhase::Transaction)
            .collect();
        assert!(!roots.is_empty(), "miss transactions must produce roots");
        // Every child points at a recorded parent of the right kind.
        let recovery_roots: Vec<_> = spans
            .iter()
            .filter(|s| s.phase == ftcoma_sim::span::SpanPhase::Recovery)
            .collect();
        assert_eq!(recovery_roots.len(), 1, "one failure, one recovery root");
        let root = recovery_roots[0];
        for phase in [
            ftcoma_sim::span::SpanPhase::Detection,
            ftcoma_sim::span::SpanPhase::Rollback,
            ftcoma_sim::span::SpanPhase::Reconfiguration,
            ftcoma_sim::span::SpanPhase::Replay,
        ] {
            let children: Vec<_> = spans
                .iter()
                .filter(|s| s.phase == phase && s.parent == root.id)
                .collect();
            assert!(
                !children.is_empty(),
                "recovery must contain a {phase} child"
            );
            for c in children {
                assert!(c.start >= root.start && c.end <= root.end);
            }
        }
        // The always-on phase histograms saw the same decomposition.
        assert!(metrics.phases.dir_lookup.summary().count > 0);
        assert!(metrics.phases.data_reply.summary().count > 0);
        assert_eq!(metrics.phases.detection.summary().count, 1);
        assert!(metrics.phases.rollback.summary().count > 0);
        assert_eq!(metrics.phases.reconfiguration.summary().count, 1);
        assert_eq!(metrics.phases.replay.summary().count, 1);
    }

    #[test]
    fn availability_tracks_down_intervals() {
        let victim = NodeId::new(3);
        let mut m = Machine::new(small_ecp_config());
        m.schedule_failure(30_000, victim, FailureKind::Permanent);
        let metrics = m.run();
        assert!(m.outcome().is_recovered());
        let i = victim.index();
        assert_eq!(metrics.per_node[i].down_count, 1);
        assert!(metrics.per_node[i].down_cycles > 0);
        assert_eq!(metrics.down_intervals[i].len(), 1);
        let (from, to) = metrics.down_intervals[i][0];
        assert_eq!(from, 30_000);
        assert_eq!(
            to, metrics.total_cycles,
            "a permanent failure stays down to the end of the run"
        );
        assert_eq!(metrics.per_node[i].down_cycles, to - from);
        assert!(metrics.availability() < 1.0);
        assert!(metrics.mttr_cycles() > 0.0);
        // Other nodes never went down.
        for (k, n) in metrics.per_node.iter().enumerate() {
            if k != i {
                assert_eq!(n.down_count, 0);
                assert!(metrics.down_intervals[k].is_empty());
            }
        }
    }

    #[test]
    fn transient_down_interval_closes_at_recovery_end() {
        let victim = NodeId::new(1);
        let mut m = Machine::new(small_ecp_config());
        m.schedule_failure(30_000, victim, FailureKind::Transient);
        let metrics = m.run();
        assert!(m.outcome().is_recovered());
        let i = victim.index();
        assert_eq!(metrics.down_intervals[i].len(), 1);
        let (from, to) = metrics.down_intervals[i][0];
        assert_eq!(from, 30_000);
        assert!(
            to < metrics.total_cycles,
            "a transient victim comes back before the run ends"
        );
        assert_eq!(metrics.per_node[i].down_cycles, to - from);
    }

    #[test]
    fn timeseries_rows_are_sampled_and_monotone() {
        let mut m = Machine::new(MachineConfig {
            timeseries_every: 5_000,
            ..small_ecp_config()
        });
        m.schedule_failure(30_000, NodeId::new(2), FailureKind::Permanent);
        let metrics = m.run();
        let rows = m.timeseries();
        assert!(rows.len() > 2, "a multi-epoch run yields several samples");
        for w in rows.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
            assert!(w[1].refs >= w[0].refs);
            assert_eq!(w[1].refs_delta, w[1].refs - w[0].refs);
        }
        assert!(rows.last().expect("nonempty").refs <= metrics.refs);
        // After the permanent failure every sample reports the node down.
        let post: Vec<_> = rows.iter().filter(|r| r.cycle > 30_000).collect();
        assert!(!post.is_empty());
        for r in post {
            assert_eq!(r.nodes_up, 7);
            assert_eq!(r.nodes_down, vec![2]);
        }
    }

    #[test]
    fn timeseries_thinning_keeps_memory_bounded() {
        let mut m = Machine::new(MachineConfig {
            timeseries_every: 1,
            refs_per_node: 2_000,
            ..small_ecp_config()
        });
        m.run();
        assert!(
            m.timeseries().len() < super::MAX_TS_ROWS,
            "thinning must hold the row count under the cap"
        );
        let rows = m.timeseries();
        for w in rows.windows(2) {
            assert!(w[1].cycle > w[0].cycle);
        }
    }

    #[test]
    fn observability_sinks_do_not_change_metrics() {
        let quiet = Machine::new(small_ecp_config()).run();
        let mut m = Machine::new(MachineConfig {
            trace_capacity: 50_000,
            timeseries_every: 2_000,
            ..small_ecp_config()
        });
        let loud = m.run();
        assert_eq!(quiet, loud, "sinks must be pure observation");
        assert!(!m.spans().is_empty());
        assert!(!m.timeseries().is_empty());
    }

    #[test]
    fn live_nodes_report_pages_as_before() {
        let mut m = Machine::new(small_ecp_config());
        let metrics = m.run();
        for n in &metrics.per_node {
            assert!(n.pages_peak >= n.pages_allocated);
            assert!(n.pages_allocated > 0, "every live node touched pages");
        }
    }

    #[test]
    fn continuous_fault_process_cycles_failures_and_repairs() {
        let run = || {
            let mut m = Machine::new(MachineConfig {
                refs_per_node: 6_000,
                ..small_ecp_config()
            });
            m.install_fault_process(FaultProcessConfig {
                node_mtbf: 60_000,
                node_mttr: 10_000,
                link_mtbf: 80_000,
                link_mttr: 10_000,
                ..FaultProcessConfig::default()
            });
            let metrics = m.run();
            let progress = m.stream_progress();
            (metrics, m.outcome().clone(), m.check_invariants(), progress)
        };
        let (metrics, outcome, violations, progress) = run();
        assert!(
            metrics.failures >= 2 && metrics.repairs >= 1,
            "the process must drive fault/repair cycles (got {} failures, {} repairs)",
            metrics.failures,
            metrics.repairs
        );
        if outcome.is_recovered() {
            assert!(violations.is_empty(), "{violations:?}");
            assert_eq!(metrics.faults_survived, metrics.failures);
            assert_eq!(metrics.faults_unsurvivable, 0);
            // Every stream reached its quota despite the churn (metrics.refs
            // counts rollback re-execution too, so it only bounds below).
            assert!(progress.iter().all(|&p| p == 6_000));
            assert!(metrics.refs >= 8 * 6_000);
        } else {
            // Nested faults restart recovery instead of halting, so the
            // only unrecovered ends left are a certified data loss or a
            // network partition.
            assert!(matches!(
                outcome,
                RecoveryOutcome::UnrecoverableDataLoss { .. }
                    | RecoveryOutcome::PartitionedNetwork { .. }
            ));
            let expected = u64::from(matches!(
                outcome,
                RecoveryOutcome::UnrecoverableDataLoss { .. }
            ));
            assert_eq!(metrics.faults_unsurvivable, expected);
        }
        // The schedule is a pure function of the configuration.
        let again = run();
        assert_eq!((metrics, outcome, violations, progress), again);
    }

    #[test]
    fn fault_process_defers_below_the_four_node_floor() {
        let mut m = Machine::new(MachineConfig {
            nodes: 4,
            ..small_ecp_config()
        });
        // Aggressive MTBF on the smallest legal ECP machine: every sampled
        // failure must be deferred, never breaching the floor.
        m.install_fault_process(FaultProcessConfig {
            node_mtbf: 5_000,
            node_mttr: 1_000,
            ..FaultProcessConfig::default()
        });
        let metrics = m.run();
        assert!(m.outcome().is_recovered());
        assert_eq!(metrics.failures, 0, "the floor defers every failure");
        assert_eq!(metrics.refs, 4 * 3_000);
    }

    #[test]
    #[should_panic(expected = "no process enabled")]
    fn fault_process_rejects_an_empty_configuration() {
        let mut m = Machine::new(small_ecp_config());
        m.install_fault_process(FaultProcessConfig::default());
    }

    #[test]
    fn replay_window_opening_in_the_future_is_discarded_not_clamped() {
        // `finish_recovery` can open the replay window at a cycle past the
        // current event (the rollback scan end); if the run ends first,
        // the window never opened and must not contribute a sample.
        let mut m = Machine::new(small_ecp_config());
        m.run();
        let before = m.metrics().phases.replay.count();
        m.replay_start = Some(m.queue.now() + 10_000);
        m.finalize_observability();
        assert_eq!(
            m.metrics().phases.replay.count(),
            before,
            "a window that never opened must not record a zero-length sample"
        );
        // A window that did open still records normally.
        m.replay_start = Some(m.queue.now().saturating_sub(50));
        m.finalize_observability();
        assert_eq!(m.metrics().phases.replay.count(), before + 1);
    }

    #[test]
    fn nested_fault_before_the_replay_window_opens_records_no_zero_sample() {
        // Regression for the `saturating_sub` clamp: drive a real recovery
        // with `run_until` until `finish_recovery` has opened the replay
        // window at a *future* cycle, inject a nested fault inside that
        // gap, and check the aborted window contributes no (zero) sample —
        // only the second episode's commit-closed window is recorded.
        let mut m = Machine::new(small_ecp_config());
        m.schedule_failure(20_000, NodeId::new(2), FailureKind::Transient);
        m.run_until(20_001); // process the failure event
        while m.replay_start.is_none() {
            let t = m.queue.peek_time().expect("recovery still in flight");
            m.run_until(t + 1);
        }
        let window_opens = m.replay_start.expect("just observed");
        let now = m.queue.now();
        assert!(
            window_opens > now,
            "config must produce a future-opening window ({window_opens} vs {now})"
        );
        m.schedule_failure(now, NodeId::new(3), FailureKind::Transient);
        let metrics = m.run();
        assert!(m.outcome().is_recovered());
        assert_eq!(metrics.failures, 2);
        assert_eq!(
            metrics.phases.replay.count(),
            1,
            "only the completed episode's replay window may be sampled"
        );
    }

    #[test]
    fn forked_run_report_matches_a_straight_run() {
        let cfg = small_ecp_config();
        let mut straight = Machine::new(cfg.clone());
        straight.schedule_failure(20_000, NodeId::new(2), FailureKind::Transient);
        let want = straight.run();

        // Fork: run an unfaulted prefix to the injection cycle, snapshot,
        // clone a machine off it, inject, finish.
        let mut prefix = Machine::new(cfg);
        prefix.run_until(20_000);
        let snap = prefix.snapshot();
        let mut fork = snap.to_machine();
        fork.schedule_failure(20_000, NodeId::new(2), FailureKind::Transient);
        let got = fork.run();
        assert_eq!(got, want, "forked report differs from the straight run");
        assert_eq!(fork.stream_progress(), straight.stream_progress());
        assert_eq!(fork.outcome(), straight.outcome());
        assert_eq!(fork.timeseries(), straight.timeseries());

        // The snapshot is reusable: a second fork replays identically too.
        let mut fork2 = snap.to_machine();
        fork2.schedule_failure(20_000, NodeId::new(2), FailureKind::Transient);
        assert_eq!(fork2.run(), want);
    }

    #[test]
    fn run_until_composes_into_an_uninterrupted_run() {
        let cfg = small_ecp_config();
        let mut straight = Machine::new(cfg.clone());
        straight.schedule_failure(15_000, NodeId::new(1), FailureKind::Permanent);
        straight.schedule_repair(60_000, NodeId::new(1));
        let want = straight.run();

        let mut stepped = Machine::new(cfg);
        stepped.schedule_failure(15_000, NodeId::new(1), FailureKind::Permanent);
        stepped.schedule_repair(60_000, NodeId::new(1));
        for limit in [1, 10_000, 15_000, 15_001, 40_000, 90_000] {
            stepped.run_until(limit);
        }
        assert_eq!(stepped.run(), want);
    }
}
