//! Latency probes reproducing Table 2 of the paper.
//!
//! These run hand-placed micro-scenarios on the raw components (no
//! workload): one item, one requester, an owner at a chosen mesh distance.
//! With the default timing parameters the results are exactly the paper's:
//! 1 / 18 / 116 / 124 cycles.

use ftcoma_core::{AccessOutcome, AccessReq, Ctx, Effect, Engine, FtConfig};
use ftcoma_mem::{ItemId, ItemState, NodeId};
use ftcoma_net::{LogicalRing, Mesh, MeshGeometry, NetConfig};
use ftcoma_protocol::msg::Msg;
use ftcoma_protocol::{MemTiming, NodeState};
use ftcoma_sim::{Cycles, EventQueue};

/// Measured read-miss latencies, one per Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Latencies {
    /// Fill from cache.
    pub cache: Cycles,
    /// Fill from the local AM.
    pub local_am: Cycles,
    /// Fill from a remote AM one hop away.
    pub remote_1hop: Cycles,
    /// Fill from a remote AM two hops away.
    pub remote_2hop: Cycles,
}

/// Runs one read of `item` at node 0 and returns its completion latency.
/// The scenario (owner placement, caches) is prepared by `setup`.
fn measure_read(item: ItemId, setup: impl FnOnce(&mut [NodeState])) -> Cycles {
    const N: usize = 16;
    let mut nodes: Vec<NodeState> = (0..N as u16)
        .map(|i| NodeState::ksr1(NodeId::new(i)))
        .collect();
    setup(&mut nodes);
    let ring = LogicalRing::new(N);
    let mut mesh = Mesh::new(MeshGeometry::for_nodes(N), NetConfig::default());
    let mut engine = Engine::new(FtConfig::disabled(), MemTiming::ksr1(), N);
    let mut queue: EventQueue<(NodeId, Msg)> = EventQueue::new();

    let requester = NodeId::new(0);
    let req = AccessReq {
        addr: item.base_addr(),
        is_write: false,
        write_value: 0,
    };
    let mut ctx = Ctx::new(&ring, 0);
    let outcome = engine.access(&mut nodes[0], req, &mut ctx);
    let (out, effects) = ctx.finish();
    for o in out {
        let arrival = mesh
            .send(
                o.delay,
                requester,
                o.to,
                o.msg.class(),
                o.msg.payload_bytes(),
            )
            .expect("probe mesh is healthy");
        queue.schedule(arrival, (o.to, o.msg));
    }
    if let AccessOutcome::Complete { latency, .. } = outcome {
        return latency;
    }
    debug_assert!(effects.is_empty());

    // Drive the transaction to completion.
    while let Some((now, (to, msg))) = queue.pop() {
        let mut ctx = Ctx::new(&ring, now);
        engine.handle(&mut nodes[to.index()], msg, &mut ctx);
        let (out, effects) = ctx.finish();
        for o in out {
            let arrival = mesh
                .send(
                    now + o.delay,
                    to,
                    o.to,
                    o.msg.class(),
                    o.msg.payload_bytes(),
                )
                .expect("probe mesh is healthy");
            queue.schedule(arrival, (o.to, o.msg));
        }
        for e in effects {
            if let Effect::Resume { latency } = e {
                return now + latency;
            }
        }
    }
    unreachable!("read transaction never completed");
}

/// Places the item's master copy (and home pointer) on `owner`.
fn place_master(nodes: &mut [NodeState], item: ItemId, owner: NodeId) {
    let ns = &mut nodes[owner.index()];
    ns.am.allocate_page(item.page()).expect("empty AM");
    ns.am.install(item, ItemState::MasterShared, 42, None);
    ns.dir.create(item, Vec::new());
    // `home_of(item)` for a full ring is `item.index() % nodes`; callers
    // pick item indices so the home *is* the owner (as in the paper's
    // measurement, which counts no extra localization hop).
    let home = (item.index() % nodes.len() as u64) as usize;
    nodes[home].home.set_owner(item, owner);
}

/// Measures all four Table 2 rows.
pub fn read_miss_latencies() -> Table2Latencies {
    // Cache hit: item resident in node 0's cache.
    let item0 = ItemId::new(0);
    let cache = measure_read(item0, |nodes| {
        place_master(nodes, item0, NodeId::new(0));
        nodes[0].cache.fill(item0.base_addr().line(), false);
    });

    // Local AM: readable copy in node 0's AM, cache cold.
    let local_am = measure_read(item0, |nodes| {
        place_master(nodes, item0, NodeId::new(0));
    });

    // Remote, 1 hop: owner = home = node 1 at (1,0); requester at (0,0).
    let item1 = ItemId::new(1);
    let remote_1hop = measure_read(item1, |nodes| {
        place_master(nodes, item1, NodeId::new(1));
    });

    // Remote, 2 hops: owner = home = node 2 at (2,0).
    let item2 = ItemId::new(2);
    let remote_2hop = measure_read(item2, |nodes| {
        place_master(nodes, item2, NodeId::new(2));
    });

    Table2Latencies {
        cache,
        local_am,
        remote_1hop,
        remote_2hop,
    }
}

/// Outcome of the deterministic replacement-injection scenario
/// (Table 1's first two rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplacementDemo {
    /// Replacement injections observed.
    pub replacement_injections: u64,
    /// Total latency of the access that triggered the eviction.
    pub access_latency: Cycles,
    /// Where the displaced master copy ended up.
    pub new_host: NodeId,
}

/// Forces a page replacement: node 0's single-way AM set holds a page with
/// a master copy when the processor touches another page of the same set.
/// The master must be *injected* into another AM before the page can be
/// replaced — the paper's replacement rows of Table 1.
pub fn force_replacement_injection() -> ReplacementDemo {
    use ftcoma_mem::{AmGeometry, CacheGeometry, PageId};

    const N: usize = 4;
    // 2 page frames, 1 way => 2 sets: pages 0 and 2 collide in set 0.
    let tiny = AmGeometry {
        capacity_bytes: 2 * 16 * 1024,
        ways: 1,
    };
    let mut nodes: Vec<NodeState> = (0..N as u16)
        .map(|i| NodeState::new(NodeId::new(i), tiny, CacheGeometry::ksr1()))
        .collect();

    let victim_item = PageId::new(0).items().next().expect("page has items");
    place_master(&mut nodes, victim_item, NodeId::new(0));
    let wanted = PageId::new(2).items().next().expect("page has items");
    // `wanted`'s home must know it exists somewhere, else this is a plain
    // first touch; owner at node 1 (set 0 of node 1 is empty... its page 2
    // collides with nothing there).
    place_master(&mut nodes, wanted, NodeId::new(1));

    let ring = LogicalRing::new(N);
    let mut mesh = Mesh::new(MeshGeometry::for_nodes(N), NetConfig::default());
    let mut engine = Engine::new(FtConfig::disabled(), MemTiming::ksr1(), N);
    let mut queue: EventQueue<(NodeId, Msg)> = EventQueue::new();

    let requester = NodeId::new(0);
    let req = AccessReq {
        addr: wanted.base_addr(),
        is_write: false,
        write_value: 0,
    };
    let mut injections = 0u64;
    let mut ctx = Ctx::new(&ring, 0);
    let outcome = engine.access(&mut nodes[0], req, &mut ctx);
    assert_eq!(outcome, AccessOutcome::Stalled, "page conflict must stall");
    let (out, effects) = ctx.finish();
    for e in &effects {
        if matches!(e, Effect::InjectionStarted { .. }) {
            injections += 1;
        }
    }
    for o in out {
        let arrival = mesh
            .send(
                o.delay,
                requester,
                o.to,
                o.msg.class(),
                o.msg.payload_bytes(),
            )
            .expect("probe mesh is healthy");
        queue.schedule(arrival, (o.to, o.msg));
    }

    let mut latency = 0;
    while let Some((now, (to, msg))) = queue.pop() {
        let mut ctx = Ctx::new(&ring, now);
        engine.handle(&mut nodes[to.index()], msg, &mut ctx);
        let (out, effects) = ctx.finish();
        for o in out {
            let arrival = mesh
                .send(
                    now + o.delay,
                    to,
                    o.to,
                    o.msg.class(),
                    o.msg.payload_bytes(),
                )
                .expect("probe mesh is healthy");
            queue.schedule(arrival, (o.to, o.msg));
        }
        for e in effects {
            match e {
                Effect::InjectionStarted { .. } => injections += 1,
                Effect::Resume { latency: l } => latency = now + l,
                _ => {}
            }
        }
    }

    let new_host = nodes
        .iter()
        .find(|n| n.am.state(victim_item).is_owner())
        .map(|n| n.id)
        .expect("displaced master survives somewhere");
    assert_ne!(
        new_host,
        NodeId::new(0),
        "master must have left the evicting node"
    );
    ReplacementDemo {
        replacement_injections: injections,
        access_latency: latency,
        new_host,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacement_injection_is_forced() {
        let demo = force_replacement_injection();
        assert_eq!(demo.replacement_injections, 1);
        assert!(demo.access_latency > 116, "eviction must lengthen the miss");
    }

    #[test]
    fn reproduces_table2_exactly() {
        let t = read_miss_latencies();
        assert_eq!(t.cache, 1, "fill from cache");
        assert_eq!(t.local_am, 18, "fill from local AM");
        assert_eq!(t.remote_1hop, 116, "fill from remote AM, 1 hop");
        assert_eq!(t.remote_2hop, 124, "fill from remote AM, 2 hops");
    }
}
