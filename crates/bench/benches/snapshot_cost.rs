//! Snapshot-fork micro-costs: what one engine-state snapshot and one
//! restore (fork) cost, per node, on a warmed machine.
//!
//! Snapshot-fork execution (docs/PERFORMANCE.md) only pays off while
//! `snapshot + restore` stays far below re-simulating the shared prefix,
//! so this bench pins both sides of that trade: the per-node cost of
//! `Machine::snapshot()` / `Snapshot::to_machine()` and, for scale, the
//! wall time of simulating the same prefix from scratch. The CI
//! `perf-smoke` job reads the `snapshot_cost_us_per_node` line and fails
//! when the per-node cost leaves its absolute budget — a deep-copy
//! snapshot that silently grows a new O(history) component would erase
//! the chaos/campaign fork speedup without failing any correctness test.
//!
//! Wall-clock timing is inherently noisy; every measurement runs
//! `REPEATS` times and the minimum wall time wins (the standard low-noise
//! estimator for cost benches).

use std::time::Instant;

use ftcoma_bench::{banner, quick_mode, write_bench_json};
use ftcoma_core::FtConfig;
use ftcoma_machine::{Machine, MachineConfig};
use ftcoma_sim::Json;
use ftcoma_workloads::presets;

/// Timed passes per measurement; the minimum wall time wins.
const REPEATS: u32 = 3;
/// Snapshot/restore pairs per timed pass (one pair is too fast to time).
const PAIRS: u32 = 32;

struct Row {
    label: String,
    nodes: u16,
    prefix_ms: f64,
    snapshot_us: f64,
    restore_us: f64,
}

/// Costs on one machine size: warm a prefix to `prefix_cycles`, then time
/// `PAIRS` snapshot+restore pairs, keeping each restored machine alive so
/// the copies cannot be optimized away.
fn measure(nodes: u16, refs: u64, prefix_cycles: u64) -> Row {
    let cfg = MachineConfig {
        nodes,
        refs_per_node: refs,
        warmup_refs_per_node: 0,
        workload: presets::water(),
        ft: FtConfig::enabled(400.0),
        verify: false,
        ..MachineConfig::default()
    };

    let mut prefix_best = f64::INFINITY;
    let mut snap_best = f64::INFINITY;
    let mut restore_best = f64::INFINITY;
    for _ in 0..REPEATS {
        let mut machine = Machine::new(cfg.clone());
        let start = Instant::now();
        machine.run_until(prefix_cycles);
        prefix_best = prefix_best.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let snaps: Vec<_> = (0..PAIRS).map(|_| machine.snapshot()).collect();
        snap_best = snap_best.min(start.elapsed().as_secs_f64() / f64::from(PAIRS));

        let start = Instant::now();
        let forks: Vec<Machine> = snaps.iter().map(|s| s.to_machine()).collect();
        restore_best = restore_best.min(start.elapsed().as_secs_f64() / f64::from(PAIRS));
        assert_eq!(forks.len(), snaps.len());
    }
    Row {
        label: format!("water/n{nodes}"),
        nodes,
        prefix_ms: prefix_best * 1e3,
        snapshot_us: snap_best * 1e6,
        restore_us: restore_best * 1e6,
    }
}

fn main() {
    // Quick mode (CI smoke / the perf gate) times two small meshes; full
    // mode adds the paper's 16-node machine with a longer prefix.
    let cells: &[(u16, u64, u64)] = if quick_mode() {
        &[(4, 4_000, 10_000), (8, 4_000, 10_000)]
    } else {
        &[(4, 8_000, 20_000), (8, 8_000, 20_000), (16, 8_000, 20_000)]
    };

    banner(
        "snapshot_cost: engine snapshot/restore micro-costs",
        "infrastructure bench (no paper figure) — gates the snapshot-fork budget",
    );

    let mut rows: Vec<Row> = Vec::new();
    for &(nodes, refs, prefix) in cells {
        let r = measure(nodes, refs, prefix);
        println!(
            "{:<12} prefix {:>8.1} ms   snapshot {:>8.1} us   restore {:>8.1} us",
            r.label, r.prefix_ms, r.snapshot_us, r.restore_us
        );
        rows.push(r);
    }

    // Per-node cost of one full snapshot+restore pair, worst cell wins:
    // the budget must hold on every machine size, not on the average.
    let per_node = rows
        .iter()
        .map(|r| (r.snapshot_us + r.restore_us) / f64::from(r.nodes))
        .fold(0.0_f64, f64::max);
    println!("{}", "-".repeat(72));
    // Machine-parseable: the CI perf gate reads exactly this line.
    println!("snapshot_cost_us_per_node {per_node:.1}");

    let json: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("label", Json::from(r.label.as_str())),
                ("nodes", Json::from(u64::from(r.nodes))),
                ("prefix_ms", Json::from(r.prefix_ms)),
                ("snapshot_us", Json::from(r.snapshot_us)),
                ("restore_us", Json::from(r.restore_us)),
            ])
        })
        .chain([Json::obj([
            ("label", Json::from("us_per_node")),
            ("snapshot_cost_us_per_node", Json::from(per_node)),
        ])])
        .collect();
    match write_bench_json("snapshot_cost", json) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("bench JSON export failed: {e}"),
    }
}
