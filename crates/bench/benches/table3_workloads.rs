//! Table 3 — characteristics of the simulated applications.
//!
//! The paper instruments real SPLASH runs; our synthetic generators are
//! parameterised to reproduce the same instruction mixes (reads, writes,
//! shared reads, shared writes as fractions of all instructions). This
//! bench measures the generated streams and prints paper vs measured.

use ftcoma_bench::banner;
use ftcoma_workloads::{presets, NodeStream, RefStream};

struct Row {
    name: &'static str,
    paper: [f64; 4], // reads, writes, shared reads, shared writes (%)
}

fn main() {
    banner(
        "Table 3: simulated application characteristics",
        "§4.2.2, Table 3",
    );
    let rows = [
        Row {
            name: "Barnes",
            paper: [18.4, 10.7, 4.2, 0.1],
        },
        Row {
            name: "Cholesky",
            paper: [23.3, 6.2, 18.8, 3.3],
        },
        Row {
            name: "Mp3d",
            paper: [16.3, 9.7, 13.1, 8.3],
        },
        Row {
            name: "Water",
            paper: [23.7, 6.9, 4.3, 0.5],
        },
    ];
    println!(
        "{:<10} {:>7} {:>7}   {:>7} {:>7}   {:>7} {:>7}   {:>7} {:>7}",
        "", "reads", "(meas)", "writes", "(meas)", "s.reads", "(meas)", "s.writes", "(meas)"
    );
    for (cfg, row) in presets::all().into_iter().zip(rows) {
        let mut s = NodeStream::new(&cfg, 0, 16, 7);
        let n = 400_000u64;
        let (mut instr, mut rd, mut wr, mut srd, mut swr) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for _ in 0..n {
            let r = s.next_ref();
            instr += 1 + u64::from(r.pre_cycles);
            match (r.is_write, r.shared) {
                (false, false) => rd += 1,
                (false, true) => {
                    rd += 1;
                    srd += 1;
                }
                (true, false) => wr += 1,
                (true, true) => {
                    wr += 1;
                    swr += 1;
                }
            }
        }
        let f = |x: u64| x as f64 / instr as f64 * 100.0;
        println!(
            "{:<10} {:>6.1}% {:>6.1}%   {:>6.1}% {:>6.1}%   {:>6.1}% {:>6.1}%   {:>6.1}% {:>6.1}%",
            row.name,
            row.paper[0],
            f(rd),
            row.paper[1],
            f(wr),
            row.paper[2],
            f(srd),
            row.paper[3],
            f(swr),
        );
        assert!(
            (f(rd) - row.paper[0]).abs() < 1.5,
            "{} read mix off",
            row.name
        );
        assert!(
            (f(wr) - row.paper[1]).abs() < 1.5,
            "{} write mix off",
            row.name
        );
    }
    println!("\ninstruction counts are scaled (see DESIGN.md §4); mixes match Table 3.");
    println!("relative working sets preserved: Mp3d = 9 x Barnes shared pages.");
}
