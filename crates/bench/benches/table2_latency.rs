//! Table 2 — read-miss latency from each level of the memory hierarchy.
//!
//! The paper (4×4 mesh, no contention): cache 1 cycle, local AM 18,
//! remote AM 116 (1 hop), 124 (2 hops). Our latency model is calibrated to
//! reproduce these exactly (DESIGN.md §3).

use ftcoma_bench::banner;
use ftcoma_machine::probe;

fn main() {
    banner("Table 2: read miss latency times", "§4.2.2, Table 2");
    let t = probe::read_miss_latencies();
    println!(
        "{:<34} {:>8} {:>8}",
        "read miss serviced by", "paper", "measured"
    );
    println!("{:<34} {:>8} {:>8}", "fill from cache", 1, t.cache);
    println!("{:<34} {:>8} {:>8}", "fill from local AM", 18, t.local_am);
    println!(
        "{:<34} {:>8} {:>8}",
        "fill from remote AM (1 hop)", 116, t.remote_1hop
    );
    println!(
        "{:<34} {:>8} {:>8}",
        "fill from remote AM (2 hops)", 124, t.remote_2hop
    );
    assert_eq!(
        (t.cache, t.local_am, t.remote_1hop, t.remote_2hop),
        (1, 18, 116, 124)
    );
    println!("\nexact match: yes");
}
