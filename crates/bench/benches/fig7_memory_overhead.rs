//! Fig. 7 — memory overhead: pages allocated by the ECP architecture
//! versus the standard one.
//!
//! Paper: the overhead ranges from 1.1x to 2.6x; applications dominated by
//! shared pages stay below 1.5x because the recovery copies reuse already
//! allocated (replicated) pages, while private pages pay the replication.

use ftcoma_bench::{banner, run_pair, NODES};
use ftcoma_workloads::presets;

fn main() {
    banner(
        "Fig 7: page allocation, ECP vs standard protocol (16 nodes)",
        "§4.2.4, Fig. 7 — paper: overhead 1.1x to 2.6x",
    );
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "app", "std pages", "ECP pages", "ratio"
    );
    for wl in presets::all() {
        let pair = run_pair(&wl, NODES, 100.0);
        let ratio = pair.ft.pages_allocated as f64 / pair.std.pages_allocated.max(1) as f64;
        println!(
            "{:<10} {:>12} {:>12} {:>8.2}x",
            wl.name, pair.std.pages_allocated, pair.ft.pages_allocated, ratio
        );
        assert!(
            ratio >= 1.0,
            "ECP cannot allocate fewer pages than the baseline"
        );
    }
    println!("\nshared pages are already replicated by normal COMA operation, so");
    println!("recovery copies often land in pages the standard protocol allocates");
    println!("anyway; private pages pay for their replica pages.");
}
