//! Figs. 8–11 — scalability of the ECP from 9 to 56 processors at 100
//! recovery points per second (one sweep regenerates all four figures).
//!
//! * Fig. 8: T_create overhead is constant or *decreases* with more
//!   processors (per-processor recovery data shrinks for a fixed-size
//!   application);
//! * Fig. 9: aggregate replication throughput grows nearly linearly
//!   (paper: 211 MB/s at 9 processors to 1.1 GB/s at 56 for Cholesky);
//! * Fig. 10: the pollution effect stays flat or decreases;
//! * Fig. 11: injections on writes stay constant; injections on reads
//!   *decrease* with more processors.

use ftcoma_bench::{banner, bench_jobs, mbps, pct, run_pairs, Pair, PairPoint, PAPER_SIZES};
use ftcoma_workloads::presets;

fn main() {
    const FREQ: f64 = 100.0;
    let (refs, warmup) = (60_000u64, 30_000u64);

    let mut grid: Vec<(String, u16)> = Vec::new();
    let mut points: Vec<PairPoint> = Vec::new();
    for wl in presets::all() {
        for &nodes in &PAPER_SIZES {
            // Fixed-size application: per-node private share shrinks as the
            // problem is split across more processors.
            let mut scaled = wl.clone();
            scaled.private_pages_per_node =
                (wl.private_pages_per_node * 16 / u64::from(nodes)).max(1);
            grid.push((wl.name.clone(), nodes));
            points.push(PairPoint {
                workload: scaled,
                nodes,
                freq_hz: FREQ,
                refs,
                warmup,
            });
        }
    }
    let jobs = bench_jobs();
    eprintln!("running {} pairs on {jobs} workers ...", points.len());
    let results: Vec<(String, u16, Pair)> = grid
        .into_iter()
        .zip(run_pairs(&points, jobs))
        .map(|((name, nodes), pair)| (name, nodes, pair))
        .collect();

    banner(
        "Fig 8: T_create overhead vs number of processors (100 rp/s)",
        "§4.2.5, Fig. 8 — paper: constant or decreasing",
    );
    print_per_size(&results, |p| pct(p.decomposition().create));

    banner(
        "Fig 9: aggregate replication throughput vs processors",
        "§4.2.5, Fig. 9 — paper: near-linear growth (211 MB/s @9 -> 1.1 GB/s @56)",
    );
    print_per_size(&results, |p| {
        mbps(p.ft.aggregate_replication_throughput_bps(20e6))
    });

    banner(
        "Fig 10: pollution effect vs number of processors",
        "§4.2.5, Fig. 10 — paper: constant or decreasing",
    );
    print_per_size(&results, |p| pct(p.decomposition().pollution));

    banner(
        "Fig 11: injections per node per 10k references vs processors",
        "§4.2.5, Fig. 11 — paper: writes constant, reads decrease",
    );
    print_per_size(&results, |p| {
        format!(
            "r={:.1} w={:.1}",
            p.ft.per_10k_refs(p.ft.injections_on_read),
            p.ft.per_10k_refs(p.ft.injections_on_write())
        )
    });
}

fn print_per_size(results: &[(String, u16, Pair)], f: impl Fn(&Pair) -> String) {
    print!("{:<10}", "app");
    for &n in &PAPER_SIZES {
        print!(" {:>14}", format!("{n} nodes"));
    }
    println!();
    for wl in ["Barnes", "Cholesky", "Mp3d", "Water"] {
        print!("{wl:<10}");
        for &n in &PAPER_SIZES {
            let pair = &results
                .iter()
                .find(|(name, size, _)| name == wl && *size == n)
                .expect("sweep covers all points")
                .2;
            print!(" {:>14}", f(pair));
        }
        println!();
    }
}
