//! Table 1 — the new injections introduced by the ECP.
//!
//! | cause        | local copy state | action                  |
//! |--------------|------------------|-------------------------|
//! | replacement  | Shared-CK        | injection               |
//! | replacement  | Inv-CK           | injection               |
//! | read access  | Inv-CK           | injection + read miss   |
//! | write access | Inv-CK           | injection + write miss  |
//! | write access | Shared-CK        | injection + write miss  |
//!
//! The access-triggered causes are measured from an ECP Mp3d run; the
//! replacement cause is demonstrated with a deterministic page-conflict
//! micro-scenario (`probe::force_replacement_injection`), since the
//! full-size AM never replaces pages in the paper's experiments either
//! ("no capacity replacements occur during the simulations").

use ftcoma_bench::banner;
use ftcoma_core::FtConfig;
use ftcoma_machine::{probe, Machine, MachineConfig};
use ftcoma_workloads::presets;

fn main() {
    banner(
        "Table 1: new injections introduced by the ECP",
        "§4.1, Table 1",
    );

    // Access-triggered causes: a normal Mp3d run.
    let cfg = MachineConfig {
        nodes: 16,
        refs_per_node: 60_000,
        warmup_refs_per_node: 30_000,
        workload: presets::mp3d(),
        ft: FtConfig::enabled(400.0),
        ..MachineConfig::default()
    };
    let m = Machine::new(cfg).run();

    // Replacement-triggered cause: deterministic page-set conflict.
    let demo = probe::force_replacement_injection();

    println!(
        "{:<16} {:<18} {:<26} {:>10}",
        "cause", "local copy state", "action", "observed"
    );
    println!(
        "{:<16} {:<18} {:<26} {:>10}",
        "replacement", "master / CK copy", "injection", demo.replacement_injections
    );
    println!(
        "{:<16} {:<18} {:<26} {:>10}",
        "read access", "Inv-CK", "injection + read miss", m.injections_on_read
    );
    println!(
        "{:<16} {:<18} {:<26} {:>10}",
        "write access", "Inv-CK", "injection + write miss", m.injections_write_inv_ck
    );
    println!(
        "{:<16} {:<18} {:<26} {:>10}",
        "write access", "Shared-CK", "injection + write miss", m.injections_write_shared_ck
    );

    assert!(
        m.injections_on_read > 0,
        "read-on-InvCk injections must occur"
    );
    assert!(
        m.injections_write_shared_ck > 0,
        "write-on-SharedCk injections must occur"
    );
    assert_eq!(
        demo.replacement_injections, 1,
        "forced replacement injects exactly once"
    );
    println!(
        "\nreplacement demo: master displaced to {}, faulting access took {} cycles",
        demo.new_host, demo.access_latency
    );
    println!("all of Table 1's injection causes observed.");
}
