//! End-to-end simulator throughput: simulated memory references per
//! wall-clock second, on a paper-grid smoke configuration.
//!
//! This is the number every campaign, chaos sweep and figure regeneration
//! is bounded by, and the one the CI `perf-smoke` job gates: the job runs
//! this bench on the PR and on its merge base (same runner, quick mode)
//! and fails on a >10% regression of the `refs_per_sec_total` line.
//!
//! Wall-clock timing is inherently noisy; each cell runs `REPEATS` times
//! and reports the fastest run (minimum wall time), which is the standard
//! low-noise estimator for throughput benches.

use std::time::Instant;

use ftcoma_bench::{banner, lengths_for, quick_mode, write_bench_json};
use ftcoma_core::FtConfig;
use ftcoma_machine::{Machine, MachineConfig};
use ftcoma_sim::Json;
use ftcoma_workloads::{presets, SplashConfig};

/// Timed runs per cell; the minimum wall time wins.
const REPEATS: u32 = 3;

struct CellResult {
    label: String,
    refs: u64,
    wall_ms: f64,
    refs_per_sec: f64,
}

/// Runs one configuration `REPEATS` times and returns its best throughput.
fn time_cell(
    workload: &SplashConfig,
    nodes: u16,
    ft: FtConfig,
    refs: u64,
    warmup: u64,
) -> CellResult {
    let mode = if ft.mode.is_enabled() { "ft" } else { "std" };
    let label = format!("{}/n{nodes}/{mode}", workload.name);
    let cfg = MachineConfig {
        nodes,
        refs_per_node: refs,
        warmup_refs_per_node: warmup,
        workload: workload.clone(),
        ft,
        verify: false,
        ..MachineConfig::default()
    };
    // Every simulated reference counts towards throughput, warmup included
    // — the simulator works equally hard for both.
    let total_refs = (refs + warmup) * u64::from(nodes);
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let mut machine = Machine::new(cfg.clone());
        let start = Instant::now();
        let _ = machine.run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    CellResult {
        label,
        refs: total_refs,
        wall_ms: best * 1e3,
        refs_per_sec: total_refs as f64 / best,
    }
}

fn main() {
    // Quick mode (CI smoke / the perf gate): two workloads on a small mesh
    // with short runs. Full mode: the paper's 16-node grid at 400 rp/s.
    let (workloads, nodes, refs, warmup) = if quick_mode() {
        (vec![presets::water(), presets::mp3d()], 8, 8_000, 1_000)
    } else {
        let (refs, warmup) = lengths_for(400.0);
        (presets::all(), 16, refs, warmup)
    };

    banner(
        "refs_per_sec: end-to-end simulator throughput",
        "infrastructure bench (no paper figure) — gates CI perf regressions",
    );

    let mut results: Vec<CellResult> = Vec::new();
    for wl in &workloads {
        for ft in [FtConfig::disabled(), FtConfig::enabled(400.0)] {
            let r = time_cell(wl, nodes, ft, refs, warmup);
            println!(
                "{:<20} {:>10} refs  {:>9.1} ms  {:>12.0} refs/sec",
                r.label, r.refs, r.wall_ms, r.refs_per_sec
            );
            results.push(r);
        }
    }

    let total_refs: u64 = results.iter().map(|r| r.refs).sum();
    let total_secs: f64 = results.iter().map(|r| r.wall_ms / 1e3).sum();
    let total_rps = total_refs as f64 / total_secs;
    println!("{}", "-".repeat(72));
    // Machine-parseable: the CI perf gate reads exactly this line.
    println!("refs_per_sec_total {total_rps:.0}");

    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj([
                ("label", Json::from(r.label.as_str())),
                ("refs", Json::from(r.refs)),
                ("wall_ms", Json::from(r.wall_ms)),
                ("refs_per_sec", Json::from(r.refs_per_sec)),
            ])
        })
        .chain([Json::obj([
            ("label", Json::from("total")),
            ("refs", Json::from(total_refs)),
            ("wall_ms", Json::from(total_secs * 1e3)),
            ("refs_per_sec", Json::from(total_rps)),
        ])])
        .collect();
    match write_bench_json("refs_per_sec", rows) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("bench JSON export failed: {e}"),
    }
}
