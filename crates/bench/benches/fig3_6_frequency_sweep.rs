//! Figs. 3–6 — the recovery-point-frequency sweep (one sweep regenerates
//! all four figures; they are different views of the same experiment).
//!
//! * Fig. 3: execution-time overhead decomposed into T_create + T_commit +
//!   T_pollution (paper: 5 % best case to 35 % worst case, falling with
//!   the frequency; Mp3d worst; T_commit small);
//! * Fig. 4: per-node replication throughput during establishment
//!   (paper: ~20 MB/s; Barnes ~30 MB/s effective thanks to 52 % replica
//!   reuse);
//! * Fig. 5: AM miss rates (paper: negligible variation with frequency —
//!   recovery data stays readable until modified);
//! * Fig. 6: injections per 10 000 references (paper: ≤ ~25; writes grow
//!   with frequency and are 88–98 % on Shared-CK1 copies; reads roughly
//!   frequency-independent).

use ftcoma_bench::{
    banner, bench_jobs, mbps, pair_json, pct, quick_mode, write_bench_json, Pair, PairPoint, NODES,
    PAPER_FREQS,
};
use ftcoma_workloads::presets;

fn main() {
    // Quick mode (CI smoke): two workloads at two frequencies on a small
    // mesh with short fixed runs — exercises the whole path, including the
    // JSON export, in seconds.
    let (workloads, freqs, nodes) = if quick_mode() {
        (
            vec![presets::water(), presets::mp3d()],
            vec![400.0, 100.0],
            4,
        )
    } else {
        (presets::all(), PAPER_FREQS.to_vec(), NODES)
    };

    let mut grid: Vec<(String, f64)> = Vec::new();
    let mut points: Vec<PairPoint> = Vec::new();
    for wl in &workloads {
        for &freq in &freqs {
            grid.push((wl.name.clone(), freq));
            let mut point = PairPoint::new(wl, nodes, freq);
            if quick_mode() {
                // Long enough for at least one recovery point at 4 nodes.
                (point.refs, point.warmup) = (8_000, 1_000);
            }
            points.push(point);
        }
    }
    let jobs = bench_jobs();
    eprintln!("running {} pairs on {jobs} workers ...", points.len());
    let pairs = ftcoma_bench::run_pairs(&points, jobs);
    let sweep: Vec<(String, f64, Pair)> = grid
        .into_iter()
        .zip(pairs)
        .map(|((name, freq), pair)| (name, freq, pair))
        .collect();

    // Structured export (set FTCOMA_BENCH_JSON to a directory to enable).
    let rows = sweep
        .iter()
        .map(|(name, freq, pair)| pair_json(&format!("{name}@{freq}"), pair))
        .collect();
    match write_bench_json("fig3_6_frequency_sweep", rows) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("bench JSON export failed: {e}"),
    }

    banner(
        "Fig 3: time overhead vs recovery-point frequency (16 nodes)",
        "§4.2.3, Fig. 3 — paper range: 5% best to 35% worst (Mp3d @400)",
    );
    for (name, freq, pair) in &sweep {
        let d = pair.decomposition();
        println!(
            "{:<10} {:>5} rp/s  create={:>6}  commit={:>6}  pollution={:>6}  total={:>6}  ckpts={}",
            name,
            freq,
            pct(d.create),
            pct(d.commit),
            pct(d.pollution),
            pct(d.total_overhead),
            pair.ft.checkpoints,
        );
    }

    banner(
        "Fig 4: per-node replication throughput during establishment",
        "§4.2.3, Fig. 4 — paper: ~20 MB/s/node, Barnes ~30 MB/s effective",
    );
    for (name, freq, pair) in &sweep {
        println!(
            "{:<10} {:>5} rp/s  transferred={:>11}  effective={:>11}  reused={:>4.0}%",
            name,
            freq,
            mbps(pair.ft.replication_throughput_bps(20e6)),
            mbps(pair.ft.effective_replication_throughput_bps(20e6)),
            pair.ft.replica_reuse_fraction() * 100.0,
        );
    }

    banner(
        "Fig 5: AM miss rates vs frequency",
        "§4.2.3, Fig. 5 — paper: negligible variation across frequencies",
    );
    for (name, freq, pair) in &sweep {
        let ck = if pair.ft.reads == 0 {
            0.0
        } else {
            pair.ft.shared_ck_reads as f64 / pair.ft.reads as f64
        };
        println!(
            "{:<10} {:>5} rp/s  read={:>6.2}% (std {:>5.2}%)  write={:>6.2}% (std {:>5.2}%)  CK-reads={:>5.1}%",
            name,
            freq,
            pair.ft.read_miss_rate() * 100.0,
            pair.std.read_miss_rate() * 100.0,
            pair.ft.write_miss_rate() * 100.0,
            pair.std.write_miss_rate() * 100.0,
            ck * 100.0,
        );
    }

    banner(
        "Fig 6: injections per 10k references vs frequency",
        "§4.2.3, Fig. 6 — paper: <=~25 total; writes grow with rp/s, 88-98% on Shared-CK1",
    );
    for (name, freq, pair) in &sweep {
        let ft = &pair.ft;
        let wr = ft.injections_on_write();
        let sck = if wr == 0 {
            0.0
        } else {
            ft.injections_write_shared_ck as f64 / wr as f64 * 100.0
        };
        println!(
            "{:<10} {:>5} rp/s  on-read={:>5.1}  on-write={:>5.1}  total={:>5.1}  S-CK1 share={:>3.0}%",
            name,
            freq,
            ft.per_10k_refs(ft.injections_on_read),
            ft.per_10k_refs(wr),
            ft.per_10k_refs(ft.injections_total()),
            sck,
        );
    }
}
