//! Ablations of the ECP's two explicit optimisations (DESIGN.md §5):
//!
//! 1. **Replica reuse** in the create phase ("an optimization consists in
//!    choosing one of the replica to become the second recovery copy, thus
//!    avoiding a data transfer") — toggled via
//!    `FtConfig::reuse_shared_replica`;
//! 2. **Commit-scan optimisation** ("testing only the allocated pages in
//!    the AM") — toggled via `FtConfig::optimized_commit_scan`.

use ftcoma_bench::{banner, pct, run_one, Pair};
use ftcoma_core::{CommitStrategy, FtConfig};
use ftcoma_machine::{Machine, MachineConfig};
use ftcoma_net::mesh::SwitchingModel;
use ftcoma_net::NetConfig;
use ftcoma_workloads::presets;

fn main() {
    let (refs, warmup) = (60_000u64, 30_000u64);

    banner(
        "Ablation 1: create-phase replica reuse (Barnes, 100 rp/s)",
        "§3.3 — reuse avoids transfers where sharing already replicated the item",
    );
    let wl = presets::barnes();
    let std = run_one(&wl, 16, FtConfig::disabled(), refs, warmup);
    for reuse in [true, false] {
        let mut ft_cfg = FtConfig::enabled(100.0);
        ft_cfg.reuse_shared_replica = reuse;
        let ft = run_one(&wl, 16, ft_cfg, refs, warmup);
        let pair = Pair {
            std: std.clone(),
            ft,
        };
        let d = pair.decomposition();
        println!(
            "reuse={:<5}  T_create={:>7}  transferred bytes={:>9}  reused={:>4.0}%",
            reuse,
            pct(d.create),
            pair.ft.replication_bytes,
            pair.ft.replica_reuse_fraction() * 100.0,
        );
    }

    banner(
        "Ablation 2: commit-scan optimisation (Cholesky, 100 rp/s)",
        "§4.1 — scan only allocated pages instead of the whole AM",
    );
    let wl = presets::cholesky();
    let std = run_one(&wl, 16, FtConfig::disabled(), refs, warmup);
    for optimized in [true, false] {
        let mut ft_cfg = FtConfig::enabled(100.0);
        ft_cfg.optimized_commit_scan = optimized;
        let ft = run_one(&wl, 16, ft_cfg, refs, warmup);
        let pair = Pair {
            std: std.clone(),
            ft,
        };
        let d = pair.decomposition();
        println!(
            "optimized={:<5}  T_commit={:>7}  total overhead={:>7}",
            optimized,
            pct(d.commit),
            pct(d.total_overhead),
        );
    }
    banner(
        "Ablation 3: commit strategy — scan vs generation counters (Cholesky)",
        "§4.2.3 — 'recovery point counters … would nullify T_commit'",
    );
    for strategy in [CommitStrategy::Scan, CommitStrategy::GenerationCounters] {
        let mut ft_cfg = FtConfig::enabled(400.0);
        ft_cfg.commit_strategy = strategy;
        let ft = run_one(&wl, 16, ft_cfg, refs, warmup);
        let pair = Pair {
            std: std.clone(),
            ft,
        };
        let d = pair.decomposition();
        println!(
            "{:<20?}  T_commit={:>7}  total overhead={:>7}",
            strategy,
            pct(d.commit),
            pct(d.total_overhead),
        );
    }

    banner(
        "Ablation 4: network switching model — virtual cut-through vs wormhole",
        "DESIGN.md §4.2 — identical zero-load latency, HOL blocking differs",
    );
    for switching in [SwitchingModel::VirtualCutThrough, SwitchingModel::Wormhole] {
        let cfg = MachineConfig {
            nodes: 16,
            refs_per_node: refs,
            warmup_refs_per_node: warmup,
            workload: presets::mp3d(),
            ft: FtConfig::enabled(400.0),
            net: NetConfig {
                switching,
                ..NetConfig::default()
            },
            ..MachineConfig::default()
        };
        let m = Machine::new(cfg).run();
        println!(
            "{:<20?}  total={:>10} cycles  net contention={:>9} cycles",
            switching, m.total_cycles, m.net_contention_cycles,
        );
    }
    banner(
        "Ablation 5: interconnect — shared snooping bus vs 2-D mesh",
        "§5 — 'the ECP can also be implemented with snooping coherence protocols';\n         the bus saturates with node count, which is why the paper targets meshes",
    );
    println!(
        "{:>7}  {:>14}  {:>14}  {:>8}",
        "nodes", "mesh cycles", "bus cycles", "bus/mesh"
    );
    for nodes in [4u16, 9, 16] {
        let mk = |bus| MachineConfig {
            nodes,
            refs_per_node: 20_000,
            warmup_refs_per_node: 10_000,
            workload: presets::mp3d(),
            ft: FtConfig::enabled(400.0),
            bus,
            ..MachineConfig::default()
        };
        let mesh = Machine::new(mk(None)).run();
        let bus = Machine::new(mk(Some(ftcoma_net::BusConfig::default()))).run();
        println!(
            "{:>7}  {:>14}  {:>14}  {:>7.2}x",
            nodes,
            mesh.total_cycles,
            bus.total_cycles,
            bus.total_cycles as f64 / mesh.total_cycles as f64,
        );
    }

    println!("\nthe paper also notes per-item recovery counters would nullify T_commit.");
}
