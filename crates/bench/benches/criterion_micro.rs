//! Criterion micro-benchmarks of the simulator's hot paths: cache and AM
//! probes, mesh message accounting, workload generation, and a small
//! end-to-end machine run per protocol mode.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ftcoma_core::FtConfig;
use ftcoma_machine::{Machine, MachineConfig};
use ftcoma_mem::addr::LineId;
use ftcoma_mem::{AttractionMemory, Cache, ItemId, ItemState, NodeId};
use ftcoma_net::{Mesh, MeshGeometry, NetClass, NetConfig};
use ftcoma_sim::DetRng;
use ftcoma_workloads::{presets, NodeStream, RefStream};

fn bench_cache(c: &mut Criterion) {
    let mut cache = Cache::ksr1();
    for i in 0..512u64 {
        cache.fill(LineId::new(i * 3), i % 2 == 0);
    }
    let mut i = 0u64;
    c.bench_function("cache_probe", |b| {
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(cache.probe(LineId::new(i * 3)))
        })
    });
    c.bench_function("cache_fill", |b| {
        b.iter(|| {
            i += 7;
            black_box(cache.fill(LineId::new(i % 40_000), false))
        })
    });
}

fn bench_am(c: &mut Criterion) {
    let mut am = AttractionMemory::ksr1();
    for p in 0..64u64 {
        am.allocate_page(ftcoma_mem::PageId::new(p)).unwrap();
    }
    for i in 0..4096u64 {
        am.install(ItemId::new(i * 2), ItemState::Shared, i, None);
    }
    let mut i = 0u64;
    c.bench_function("am_state_lookup", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(am.state(ItemId::new(i * 2)))
        })
    });
    c.bench_function("am_injection_acceptance", |b| {
        b.iter(|| {
            i = (i + 1) % 8192;
            black_box(am.injection_acceptance(ItemId::new(i)))
        })
    });
}

fn bench_mesh(c: &mut Criterion) {
    let mut mesh = Mesh::new(MeshGeometry::for_nodes(56), NetConfig::default());
    let mut t = 0u64;
    c.bench_function("mesh_send_item", |b| {
        b.iter(|| {
            t += 10;
            black_box(mesh.send(t, NodeId::new(3), NodeId::new(52), NetClass::Reply, 128))
        })
    });
}

fn bench_workload(c: &mut Criterion) {
    let mut stream = NodeStream::new(&presets::mp3d(), 0, 16, 1);
    c.bench_function("workload_next_ref", |b| b.iter(|| black_box(stream.next_ref())));
    let mut rng = DetRng::seeded(1);
    c.bench_function("rng_next", |b| b.iter(|| black_box(rng.next_u64())));
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    for (name, ft) in [("standard", FtConfig::disabled()), ("ecp_400rps", FtConfig::enabled(400.0))]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = MachineConfig {
                    nodes: 9,
                    refs_per_node: 5_000,
                    workload: presets::water(),
                    ft,
                    ..MachineConfig::default()
                };
                black_box(Machine::new(cfg).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_am, bench_mesh, bench_workload, bench_machine);
criterion_main!(benches);
