//! Micro-benchmarks of the simulator's hot paths: cache and AM probes,
//! mesh message accounting, workload generation, and a small end-to-end
//! machine run per protocol mode.
//!
//! Formerly a criterion harness; the workspace is dependency-free, so this
//! is now a plain `harness = false` bench with a minimal timing loop
//! (median of repeated batches, like criterion's default but simpler).

use std::hint::black_box;
use std::time::Instant;

use ftcoma_core::FtConfig;
use ftcoma_machine::{Machine, MachineConfig};
use ftcoma_mem::addr::LineId;
use ftcoma_mem::{AttractionMemory, Cache, ItemId, ItemState, NodeId};
use ftcoma_net::{Mesh, MeshGeometry, NetClass, NetConfig};
use ftcoma_sim::{DetRng, EventQueue};
use ftcoma_workloads::{presets, NodeStream, RefStream};

/// Times `iters` calls of `f` per batch over `batches` batches and prints
/// the median per-call time.
fn bench(name: &str, batches: usize, iters: u64, mut f: impl FnMut()) {
    let mut per_call: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_call.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    per_call.sort_by(|a, b| a.total_cmp(b));
    let median = per_call[per_call.len() / 2];
    println!("{name:<28} {median:>12.1} ns/iter  (median of {batches} x {iters})");
}

fn bench_cache() {
    let mut cache = Cache::ksr1();
    for i in 0..512u64 {
        cache.fill(LineId::new(i * 3), i % 2 == 0);
    }
    let mut i = 0u64;
    bench("cache_probe", 15, 100_000, || {
        i = (i + 1) % 512;
        black_box(cache.probe(LineId::new(i * 3)));
    });
    let mut i = 0u64;
    bench("cache_fill", 15, 100_000, || {
        i += 7;
        black_box(cache.fill(LineId::new(i % 40_000), false));
    });
}

fn bench_am() {
    let mut am = AttractionMemory::ksr1();
    for p in 0..64u64 {
        am.allocate_page(ftcoma_mem::PageId::new(p)).unwrap();
    }
    for i in 0..4096u64 {
        am.install(ItemId::new(i * 2), ItemState::Shared, i, None);
    }
    let mut i = 0u64;
    bench("am_state_lookup", 15, 100_000, || {
        i = (i + 1) % 4096;
        black_box(am.state(ItemId::new(i * 2)));
    });
    let mut i = 0u64;
    bench("am_injection_acceptance", 15, 100_000, || {
        i = (i + 1) % 8192;
        black_box(am.injection_acceptance(ItemId::new(i)));
    });
}

fn bench_queue() {
    // Near-future churn: the protocol's small constant delays land in the
    // calendar's per-cycle lanes. Steady state ~64 pending events.
    let mut q: EventQueue<u64> = EventQueue::new();
    for k in 0..64 {
        q.schedule_in(k % 40, k);
    }
    let mut i = 0u64;
    bench("queue_push_pop_near", 15, 100_000, || {
        i += 1;
        q.schedule_in(1 + (i % 40), i);
        black_box(q.pop());
    });

    // Far-future churn: delays beyond the lane window exercise the
    // spill-over heap (checkpoint timers, retransmission backoffs).
    let mut q: EventQueue<u64> = EventQueue::new();
    for k in 0..64 {
        q.schedule_in(2_000 + k, k);
    }
    let mut i = 0u64;
    bench("queue_push_pop_far", 15, 100_000, || {
        i += 1;
        q.schedule_in(2_000 + (i % 512), i);
        black_box(q.pop());
    });

    // The machine's actual mix: mostly near with an occasional far event.
    let mut q: EventQueue<u64> = EventQueue::new();
    for k in 0..64 {
        q.schedule_in(k % 40, k);
    }
    let mut i = 0u64;
    bench("queue_push_pop_mixed", 15, 100_000, || {
        i += 1;
        let delay = if i.is_multiple_of(16) {
            50_000
        } else {
            1 + (i % 40)
        };
        q.schedule_in(delay, i);
        black_box(q.pop());
    });
}

fn bench_mesh() {
    let mut mesh = Mesh::new(MeshGeometry::for_nodes(56), NetConfig::default());
    let mut t = 0u64;
    bench("mesh_send_item", 15, 100_000, || {
        t += 10;
        black_box(mesh.send(t, NodeId::new(3), NodeId::new(52), NetClass::Reply, 128)).unwrap();
    });
    // Same traffic on a degraded mesh: the XY path crosses a failed router,
    // so every send pays the breadth-first misroute fallback.
    let mut mesh = Mesh::new(MeshGeometry::for_nodes(56), NetConfig::default());
    mesh.fail_node(NodeId::new(28));
    let mut t = 0u64;
    bench("mesh_send_item_detoured", 15, 100_000, || {
        t += 10;
        black_box(mesh.send(t, NodeId::new(3), NodeId::new(52), NetClass::Reply, 128)).unwrap();
    });
}

fn bench_workload() {
    for cfg in presets::all() {
        let mut stream = NodeStream::new(&cfg, 0, 16, 1);
        bench(
            &format!("workload_next_ref/{}", cfg.name),
            15,
            100_000,
            || {
                black_box(stream.next_ref());
            },
        );
    }
    let zipf = ftcoma_workloads::zipf::Zipf::new(4608, 0.8);
    let mut rng = DetRng::seeded(1);
    bench("zipf_sample_4608", 15, 100_000, || {
        black_box(zipf.sample(&mut rng));
    });
    let mut rng = DetRng::seeded(1);
    bench("rng_geometric", 15, 100_000, || {
        black_box(rng.geometric(0.3, 10_000));
    });
    let mut rng = DetRng::seeded(1);
    let t = DetRng::threshold(0.3);
    bench("rng_geometric_threshold", 15, 100_000, || {
        black_box(rng.geometric_with(t, 10_000));
    });
    let mut rng = DetRng::seeded(1);
    bench("rng_next", 15, 1_000_000, || {
        black_box(rng.next_u64());
    });
}

fn bench_machine() {
    for (name, ft) in [
        ("standard", FtConfig::disabled()),
        ("ecp_400rps", FtConfig::enabled(400.0)),
    ] {
        bench(&format!("machine/{name}"), 10, 1, || {
            let cfg = MachineConfig {
                nodes: 9,
                refs_per_node: 5_000,
                workload: presets::water(),
                ft,
                ..MachineConfig::default()
            };
            black_box(Machine::new(cfg).run());
        });
    }
}

fn main() {
    println!("== criterion_micro: simulator hot paths ==");
    bench_cache();
    bench_am();
    bench_queue();
    bench_mesh();
    bench_workload();
    bench_machine();
}
