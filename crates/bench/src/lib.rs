//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every table and figure of the paper's evaluation (§4.2) has a dedicated
//! bench target in `benches/` (custom harnesses, run with `cargo bench`);
//! this library holds the common machinery: paired standard/ECP runs with
//! identical seeds, the execution-time decomposition, run-length scaling
//! for low checkpoint frequencies, and plain-text table printing.
//!
//! The grid-shaped benches (Figs. 3–6, 8–11) run their points on
//! [`ftcoma_campaign`]'s worker pool via [`run_pairs`] — results are
//! identical at any parallelism, so `cargo bench` uses every core.
//!
//! Absolute numbers will not match the paper (different workload substrate
//! — see DESIGN.md §4); the *shapes* are the reproduction target and
//! EXPERIMENTS.md records both sides.

use std::path::{Path, PathBuf};

use ftcoma_campaign::{run_cells, Cell, Scenario};
use ftcoma_core::FtConfig;
use ftcoma_machine::{export, Machine, MachineConfig, RunMetrics};
use ftcoma_sim::Json;
use ftcoma_workloads::SplashConfig;

pub use ftcoma_campaign::lengths_for;

/// The recovery-point frequencies of Fig. 3 (per simulated second).
pub const PAPER_FREQS: [f64; 5] = [400.0, 200.0, 100.0, 50.0, 5.0];

/// The machine sizes of the scalability figures (Figs. 8–11).
pub const PAPER_SIZES: [u16; 5] = [9, 16, 30, 42, 56];

/// Default node count (the paper's 4×4 mesh).
pub const NODES: u16 = 16;

/// Worker count for the parallel benches: one per core, overridable with
/// `FTCOMA_BENCH_JOBS` (useful to pin `cargo bench` runs for timing).
pub fn bench_jobs() -> usize {
    std::env::var("FTCOMA_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Whether `FTCOMA_BENCH_QUICK` is set: benches shrink their grids to a
/// few short cells so CI smoke jobs can exercise the full path (including
/// the `FTCOMA_BENCH_JSON` export) in seconds.
pub fn quick_mode() -> bool {
    std::env::var_os("FTCOMA_BENCH_QUICK").is_some()
}

/// Runs one machine configuration to completion.
pub fn run_one(
    workload: &SplashConfig,
    nodes: u16,
    ft: FtConfig,
    refs: u64,
    warmup: u64,
) -> RunMetrics {
    let cfg = MachineConfig {
        nodes,
        refs_per_node: refs,
        warmup_refs_per_node: warmup,
        workload: workload.clone(),
        ft,
        ..MachineConfig::default()
    };
    Machine::new(cfg).run()
}

/// A paired baseline/ECP measurement with identical seed and run length.
#[derive(Debug, Clone)]
pub struct Pair {
    /// Standard-protocol run.
    pub std: RunMetrics,
    /// ECP run.
    pub ft: RunMetrics,
}

/// One grid point of a paired bench: a fully specified standard/ECP twin.
#[derive(Debug, Clone)]
pub struct PairPoint {
    /// Workload configuration (already scaled if the bench scales it).
    pub workload: SplashConfig,
    /// Machine size.
    pub nodes: u16,
    /// ECP recovery-point frequency.
    pub freq_hz: f64,
    /// Measured references per node.
    pub refs: u64,
    /// Warmup references per node.
    pub warmup: u64,
}

impl PairPoint {
    /// A point with run lengths derived from the frequency via
    /// [`lengths_for`].
    pub fn new(workload: &SplashConfig, nodes: u16, freq_hz: f64) -> Self {
        let (refs, warmup) = lengths_for(freq_hz);
        PairPoint {
            workload: workload.clone(),
            nodes,
            freq_hz,
            refs,
            warmup,
        }
    }

    fn cell(&self, id: u64, group: u64, ft: FtConfig) -> Cell {
        let mode = if ft.mode.is_enabled() { "ft" } else { "std" };
        Cell {
            id,
            group,
            label: format!(
                "{}/n{}/f{}/{mode}",
                self.workload.name, self.nodes, self.freq_hz
            ),
            cfg: MachineConfig {
                nodes: self.nodes,
                refs_per_node: self.refs,
                warmup_refs_per_node: self.warmup,
                workload: self.workload.clone(),
                ft,
                ..MachineConfig::default()
            },
            scenario: Scenario::none(),
        }
    }
}

/// Runs every point's standard/ECP twin on `jobs` campaign workers and
/// returns the pairs in point order. Both halves of a pair share the
/// default seed and run length, exactly as [`run_pair`] pairs them; the
/// parallelism cannot affect the numbers.
pub fn run_pairs(points: &[PairPoint], jobs: usize) -> Vec<Pair> {
    let cells: Vec<Cell> = points
        .iter()
        .enumerate()
        .flat_map(|(i, p)| {
            let (i, base) = (i as u64, 2 * i as u64);
            [
                p.cell(base, i, FtConfig::disabled()),
                p.cell(base + 1, i, FtConfig::enabled(p.freq_hz)),
            ]
        })
        .collect();
    let outcomes = run_cells(&cells, jobs);
    outcomes
        .chunks_exact(2)
        .map(|twin| Pair {
            std: twin[0].metrics.clone(),
            ft: twin[1].metrics.clone(),
        })
        .collect()
}

/// Runs the standard and ECP machines over the same workload and seed.
pub fn run_pair(workload: &SplashConfig, nodes: u16, freq_hz: f64) -> Pair {
    run_pairs(&[PairPoint::new(workload, nodes, freq_hz)], 1)
        .pop()
        .expect("one point in, one pair out")
}

/// Fig. 3's execution-time decomposition, as fractions of the standard
/// execution time.
#[derive(Debug, Clone, Copy)]
pub struct Decomposition {
    /// `T_ft / T_standard - 1`.
    pub total_overhead: f64,
    /// `T_create / T_standard`.
    pub create: f64,
    /// `T_commit / T_standard`.
    pub commit: f64,
    /// `T_pollution / T_standard` (may be slightly negative: simulation
    /// noise when the pollution effect is ~0).
    pub pollution: f64,
}

impl Pair {
    /// Computes the decomposition `T_ft = T_std + T_create + T_commit +
    /// T_pollution`.
    pub fn decomposition(&self) -> Decomposition {
        let t_std = self.std.total_cycles as f64;
        let t_ft = self.ft.total_cycles as f64;
        let create = self.ft.t_create as f64;
        let commit = self.ft.t_commit as f64;
        Decomposition {
            total_overhead: t_ft / t_std - 1.0,
            create: create / t_std,
            commit: commit / t_std,
            pollution: (t_ft - t_std - create - commit) / t_std,
        }
    }
}

/// One labeled pair as a JSON row: the Fig. 3 decomposition plus both
/// runs flattened through the metrics registry (the same series names the
/// CLI's JSON export uses).
pub fn pair_json(label: &str, pair: &Pair) -> Json {
    let d = pair.decomposition();
    Json::obj([
        ("label", Json::from(label)),
        (
            "decomposition",
            Json::obj([
                ("total_overhead", Json::from(d.total_overhead)),
                ("create", Json::from(d.create)),
                ("commit", Json::from(d.commit)),
                ("pollution", Json::from(d.pollution)),
            ]),
        ),
        ("std", export::registry_from(&pair.std).to_json()),
        ("ft", export::registry_from(&pair.ft).to_json()),
    ])
}

/// Assembles a versioned bench document from labeled rows.
pub fn bench_doc(id: &str, rows: Vec<Json>) -> Json {
    Json::obj([
        ("schema_version", Json::from(export::SCHEMA_VERSION)),
        ("bench", Json::from(id)),
        ("rows", Json::arr(rows)),
    ])
}

/// Writes `BENCH_<id>.json` into `dir` and returns its path.
///
/// # Errors
///
/// Propagates I/O errors from the write.
pub fn write_bench_json_to(dir: &Path, id: &str, rows: Vec<Json>) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{id}.json"));
    let mut text = bench_doc(id, rows).to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Env-gated bench export: when `FTCOMA_BENCH_JSON` names a directory,
/// writes `BENCH_<id>.json` there and returns the path; otherwise a no-op.
///
/// # Errors
///
/// Propagates I/O errors from the write.
pub fn write_bench_json(id: &str, rows: Vec<Json>) -> std::io::Result<Option<PathBuf>> {
    match std::env::var_os("FTCOMA_BENCH_JSON") {
        None => Ok(None),
        Some(dir) => write_bench_json_to(Path::new(&dir), id, rows).map(Some),
    }
}

/// Prints a benchmark banner.
pub fn banner(id: &str, paper: &str) {
    println!("\n=== {id} ===");
    println!("paper reference: {paper}");
    println!("{}", "-".repeat(72));
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats bytes/second as MB/s.
pub fn mbps(x: f64) -> String {
    format!("{:.1} MB/s", x / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_workloads::presets;

    #[test]
    fn lengths_scale_with_period() {
        let (r400, w400) = lengths_for(400.0);
        let (r5, w5) = lengths_for(5.0);
        assert_eq!(r400, 60_000);
        assert_eq!(w400, 30_000);
        assert!(r5 >= 3_000_000);
        assert!(w5 >= 1_500_000);
    }

    #[test]
    fn pair_decomposition_adds_up() {
        let pair = run_pair(&presets::water(), 4, 400.0);
        let d = pair.decomposition();
        let recomposed = d.create + d.commit + d.pollution;
        assert!((recomposed - d.total_overhead).abs() < 1e-9);
        assert!(pair.ft.checkpoints > 0);
    }

    #[test]
    fn bench_json_round_trips() {
        let pair = run_pair(&presets::water(), 4, 400.0);
        let doc = bench_doc("unit_test", vec![pair_json("water@400", &pair)]);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(|v| v.as_u64()),
            Some(export::SCHEMA_VERSION)
        );
        assert_eq!(
            parsed.get("bench").and_then(|v| v.as_str()),
            Some("unit_test")
        );
        let row = &parsed.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(row.get("label").and_then(|v| v.as_str()), Some("water@400"));
        assert!(row
            .get("decomposition")
            .and_then(|d| d.get("create"))
            .is_some());
        // The registry series include per-node breakdowns.
        let ft = row.get("ft").unwrap().as_array().unwrap();
        assert!(ft.iter().any(|s| {
            s.get("name").and_then(|v| v.as_str()) == Some("refs_total")
                && s.get("labels").and_then(|l| l.get("node")).is_some()
        }));
        let dir = std::env::temp_dir();
        let path =
            write_bench_json_to(&dir, "unit_test", vec![pair_json("water@400", &pair)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        let _ = std::fs::remove_file(path);
    }
}
