//! Campaign specifications: the grid of simulations to run.
//!
//! A spec names workloads, node counts, checkpoint frequencies and
//! fault-injection scenarios; [`CampaignSpec::expand`] multiplies them into
//! a flat, deterministically ordered list of [`Cell`]s. Cell ids are stable:
//! the same spec always expands to the same ids, labels and derived seeds,
//! which is what makes single-cell replay (`ftcoma campaign --cell`) and
//! parallel execution reproducible.

use ftcoma_core::FtConfig;
use ftcoma_machine::MachineConfig;
use ftcoma_mem::NodeId;
use ftcoma_sim::{derive_seed, Clock, Json};
use ftcoma_workloads::{presets, SplashConfig};

/// A malformed or inconsistent campaign spec, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Run-length policy for the cells of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lengths {
    /// Every cell runs `refs` references per node after `warmup`.
    Fixed {
        /// Measured references per node.
        refs: u64,
        /// Warmup references per node (excluded from metrics).
        warmup: u64,
    },
    /// Run lengths derived from the checkpoint frequency via
    /// [`lengths_for`], so several recovery points land inside the
    /// measured window — the paper's methodology ("all the simulations are
    /// sufficiently long so that several recovery point establishments
    /// occur"). Each frequency gets its own baseline group.
    PerFrequency,
}

/// Run lengths `(refs_per_node, warmup_refs_per_node)` for a checkpoint
/// frequency: low frequencies need long runs so several recovery points
/// land inside the measured window.
pub fn lengths_for(freq_hz: f64) -> (u64, u64) {
    let period = Clock::ksr1().period_for_rate_hz(freq_hz);
    // At ~5 cycles/reference, `period * 4 / 5` references cover several
    // checkpoint intervals; the warmup covers at least one full interval so
    // measurement starts from a steady recovery-data population.
    let refs = (period * 4 / 5).max(60_000);
    let warmup = (period * 2 / 5).max(30_000);
    (refs, warmup)
}

/// What kind of failure a scenario injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Fault-free run.
    None,
    /// One transient failure: the node rolls back and rejoins.
    Transient,
    /// One permanent failure (optionally followed by a repair).
    Permanent,
    /// A failure cycle: `count` transient failures, one every `period`
    /// cycles starting at the scenario's `at`. The period must comfortably
    /// exceed the recovery time.
    Cycle {
        /// Cycles between consecutive failures.
        period: u64,
        /// Number of failures injected.
        count: u32,
    },
    /// Back-to-back faults probing restartable recovery: a *permanent*
    /// failure of `node` at `at`, then a transient failure of
    /// `second_node` only `gap` cycles later — tight gaps land inside the
    /// first fault's recovery window, forcing the machine to abandon the
    /// in-flight recovery and restart it with both victims folded in.
    /// The run is expected to recover unless the copy-accounting audit
    /// certifies a committed item with zero live copies.
    BackToBack {
        /// Cycles between the first (permanent) and second (transient)
        /// failure.
        gap: u64,
        /// Victim of the second failure (must differ from `node` and be
        /// alive, i.e. not the permanently failed node).
        second_node: u16,
    },
    /// Nested-fault chain stressing recovery restarts: a failure of `node`
    /// at `at`, a second failure of `second_node` `gap` cycles later, and
    /// (when `gap2` > 0) a third failure of `third_node` another `gap2`
    /// cycles after that. Tight gaps land the later faults inside open
    /// recovery windows. Bit *i* of `permanent_mask` makes fault *i*
    /// permanent; at most one bit may be set so scripted kills cannot
    /// partition the mesh.
    Nested {
        /// Cycles between the first and second failure.
        gap: u64,
        /// Victim of the second failure.
        second_node: u16,
        /// Cycles between the second and third failure (0 = no third
        /// fault).
        gap2: u64,
        /// Victim of the third failure (ignored when `gap2` is 0).
        third_node: u16,
        /// Bit *i* (0 = first fault) marks fault *i* as permanent. At most
        /// one bit may be set.
        permanent_mask: u8,
    },
    /// Interconnect fault: the mesh link between `node` and `to_node`
    /// (which must be mesh-adjacent) is cut at `at`. Traffic detours; if
    /// the cut severs the mesh the reliable transport escalates.
    LinkCut {
        /// The other endpoint of the cut link.
        to_node: u16,
    },
    /// Interconnect fault: `node`'s mesh router dies at `at`. The node
    /// becomes unreachable and its peers' transports escalate the loss
    /// into a permanent node failure.
    RouterDown,
    /// Interconnect fault: a bounded message-loss episode starting at `at`
    /// drops `rate` per-mille of all packets; the reliable transport masks
    /// the losses with retransmissions.
    MessageLoss {
        /// Drop rate in per-mille (`1..=999`).
        rate: u32,
    },
    /// Continuous MTBF/MTTR failure–repair process: instead of a scripted
    /// fault list, the machine installs a seeded
    /// [`ftcoma_machine::FaultProcess`] that keeps sampling node failures,
    /// node repairs, link cuts and link repairs for the whole run. The
    /// scenario's `at` is the process start offset (0 = sample from the
    /// beginning); `node` and `repair_at` are unused. A mean of 0 disables
    /// that sub-process; at least one MTBF must be set, and every set MTBF
    /// needs its MTTR.
    Continuous {
        /// Mean cycles between node failures (0 = no node process).
        node_mtbf: u64,
        /// Mean cycles from node failure to repair request.
        node_mttr: u64,
        /// Mean cycles between link cuts (0 = no link process).
        link_mtbf: u64,
        /// Mean cycles from link cut to link restoration.
        link_mttr: u64,
    },
}

/// One fault-injection scenario applied to an ECP cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// What to inject.
    pub kind: ScenarioKind,
    /// Victim node index.
    pub node: u16,
    /// Cycle of the (first) failure.
    pub at: u64,
    /// Repair time for permanent failures.
    pub repair_at: Option<u64>,
}

impl Scenario {
    /// The fault-free scenario.
    pub fn none() -> Self {
        Scenario {
            kind: ScenarioKind::None,
            node: 0,
            at: 0,
            repair_at: None,
        }
    }

    /// Short label used in cell labels (`ok`, `t@20000`, ...).
    pub fn label(&self) -> String {
        match self.kind {
            ScenarioKind::None => "ok".into(),
            ScenarioKind::Transient => format!("t{}@{}", self.node, self.at),
            ScenarioKind::Permanent => match self.repair_at {
                Some(r) => format!("p{}@{}+r@{}", self.node, self.at, r),
                None => format!("p{}@{}", self.node, self.at),
            },
            ScenarioKind::Cycle { period, count } => {
                format!("c{}@{}x{}/{}", self.node, self.at, count, period)
            }
            ScenarioKind::BackToBack { gap, second_node } => {
                format!("b{}@{}+{}t{}", self.node, self.at, gap, second_node)
            }
            ScenarioKind::Nested {
                gap,
                second_node,
                gap2,
                third_node,
                permanent_mask,
            } => {
                let mut s = format!("nf{}@{}+{}f{}", self.node, self.at, gap, second_node);
                if gap2 > 0 {
                    s.push_str(&format!("+{gap2}f{third_node}"));
                }
                s.push_str(&format!("m{permanent_mask}"));
                s
            }
            ScenarioKind::LinkCut { to_node } => {
                format!("lc{}-{}@{}", self.node, to_node, self.at)
            }
            ScenarioKind::RouterDown => format!("rd{}@{}", self.node, self.at),
            ScenarioKind::MessageLoss { rate } => format!("ml{rate}@{}", self.at),
            ScenarioKind::Continuous {
                node_mtbf,
                node_mttr,
                link_mtbf,
                link_mttr,
            } => {
                let mut s = format!("cont@{}", self.at);
                if node_mtbf > 0 {
                    s.push_str(&format!("+n{node_mtbf}/{node_mttr}"));
                }
                if link_mtbf > 0 {
                    s.push_str(&format!("+l{link_mtbf}/{link_mttr}"));
                }
                s
            }
        }
    }

    /// Parses the object form produced by [`Scenario::to_json`] — the
    /// scenario encoding campaign specs and chaos counterexample artifacts
    /// share. Missing optional fields take the spec defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed or inconsistent scenarios.
    pub fn from_json(v: &Json) -> Result<Scenario, SpecError> {
        parse_scenario(v)
    }

    /// JSON form for the campaign report (`null` for the fault-free case
    /// is the caller's choice).
    pub fn to_json(&self) -> Json {
        let kind = match self.kind {
            ScenarioKind::None => "none",
            ScenarioKind::Transient => "transient",
            ScenarioKind::Permanent => "permanent",
            ScenarioKind::Cycle { .. } => "cycle",
            ScenarioKind::BackToBack { .. } => "back_to_back",
            ScenarioKind::Nested { .. } => "nested",
            ScenarioKind::LinkCut { .. } => "link_cut",
            ScenarioKind::RouterDown => "router_down",
            ScenarioKind::MessageLoss { .. } => "message_loss",
            ScenarioKind::Continuous { .. } => "continuous",
        };
        let mut pairs = vec![("kind".to_string(), Json::from(kind))];
        if self.kind != ScenarioKind::None {
            pairs.push(("node".to_string(), Json::from(u64::from(self.node))));
            pairs.push(("at".to_string(), Json::from(self.at)));
        }
        if let Some(r) = self.repair_at {
            pairs.push(("repair_at".to_string(), Json::from(r)));
        }
        if let ScenarioKind::Cycle { period, count } = self.kind {
            pairs.push(("period".to_string(), Json::from(period)));
            pairs.push(("count".to_string(), Json::from(u64::from(count))));
        }
        if let ScenarioKind::BackToBack { gap, second_node } = self.kind {
            pairs.push(("gap".to_string(), Json::from(gap)));
            pairs.push((
                "second_node".to_string(),
                Json::from(u64::from(second_node)),
            ));
        }
        if let ScenarioKind::Nested {
            gap,
            second_node,
            gap2,
            third_node,
            permanent_mask,
        } = self.kind
        {
            pairs.push(("gap".to_string(), Json::from(gap)));
            pairs.push((
                "second_node".to_string(),
                Json::from(u64::from(second_node)),
            ));
            pairs.push(("gap2".to_string(), Json::from(gap2)));
            pairs.push(("third_node".to_string(), Json::from(u64::from(third_node))));
            pairs.push((
                "permanent_mask".to_string(),
                Json::from(u64::from(permanent_mask)),
            ));
        }
        if let ScenarioKind::LinkCut { to_node } = self.kind {
            pairs.push(("to_node".to_string(), Json::from(u64::from(to_node))));
        }
        if let ScenarioKind::MessageLoss { rate } = self.kind {
            pairs.push(("rate".to_string(), Json::from(u64::from(rate))));
        }
        if let ScenarioKind::Continuous {
            node_mtbf,
            node_mttr,
            link_mtbf,
            link_mttr,
        } = self.kind
        {
            pairs.push(("node_mtbf".to_string(), Json::from(node_mtbf)));
            pairs.push(("node_mttr".to_string(), Json::from(node_mttr)));
            pairs.push(("link_mtbf".to_string(), Json::from(link_mtbf)));
            pairs.push(("link_mttr".to_string(), Json::from(link_mttr)));
        }
        Json::Obj(pairs)
    }
}

/// A campaign: the grid of runs the paper's evaluation is made of.
///
/// Expansion order (and therefore cell ids) is workloads × node counts ×
/// baseline-group × frequencies × scenarios, in spec order.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (reported, not semantic).
    pub name: String,
    /// Master seed; every cell's seed is derived from it (see
    /// [`CampaignSpec::expand`]).
    pub seed: u64,
    /// Workloads to run.
    pub workloads: Vec<SplashConfig>,
    /// Machine sizes to run.
    pub nodes: Vec<u16>,
    /// Checkpoint frequencies (recovery points per second) for ECP cells.
    pub freqs: Vec<f64>,
    /// Run-length policy.
    pub lengths: Lengths,
    /// Include a standard-protocol baseline cell per group (needed for the
    /// overhead decomposition).
    pub baseline: bool,
    /// Fault-injection scenarios applied to every ECP cell.
    pub scenarios: Vec<Scenario>,
}

/// One expanded grid cell: a complete machine configuration plus the
/// scenario to inject.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Stable id: position in expansion order.
    pub id: u64,
    /// Baseline group this cell belongs to. Cells in the same group share
    /// one derived seed, so each ECP cell is directly comparable to its
    /// group's standard-protocol baseline (paired runs must share a seed —
    /// the paper's methodology).
    pub group: u64,
    /// Human-readable label (`water/n16/f400/ok`, ...).
    pub label: String,
    /// Full machine configuration, seed included.
    pub cfg: MachineConfig,
    /// Failures to inject (always `none` for baseline cells).
    pub scenario: Scenario,
}

impl Cell {
    /// Whether this cell runs the ECP (vs the standard baseline).
    pub fn is_ft(&self) -> bool {
        self.cfg.ft.mode.is_enabled()
    }
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: "campaign".into(),
            seed: MachineConfig::default().seed,
            workloads: vec![presets::water()],
            nodes: vec![16],
            freqs: vec![100.0],
            lengths: Lengths::Fixed {
                refs: 60_000,
                warmup: 30_000,
            },
            baseline: true,
            scenarios: vec![Scenario::none()],
        }
    }
}

fn workload_by_name(name: &str) -> Result<SplashConfig, SpecError> {
    presets::all()
        .into_iter()
        .chain(presets::micros())
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| err(format!("unknown workload `{name}`")))
}

fn as_u64(v: &Json, key: &str) -> Result<u64, SpecError> {
    v.as_u64()
        .ok_or_else(|| err(format!("`{key}` must be a non-negative integer")))
}

fn parse_scenario(v: &Json) -> Result<Scenario, SpecError> {
    let Json::Obj(pairs) = v else {
        return Err(err("each scenario must be an object"));
    };
    const KNOWN: &[&str] = &[
        "kind",
        "node",
        "at",
        "repair_at",
        "period",
        "count",
        "gap",
        "second_node",
        "gap2",
        "third_node",
        "permanent_mask",
        "to_node",
        "rate",
        "node_mtbf",
        "node_mttr",
        "link_mtbf",
        "link_mttr",
    ];
    for (k, _) in pairs {
        if !KNOWN.contains(&k.as_str()) {
            return Err(err(format!("unknown scenario key `{k}`")));
        }
    }
    let kind_name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| err("scenario needs a string `kind`"))?;
    let node = match v.get("node") {
        Some(n) => {
            u16::try_from(as_u64(n, "node")?).map_err(|_| err("scenario `node` out of range"))?
        }
        None => 1,
    };
    let at = match v.get("at") {
        Some(a) => as_u64(a, "at")?,
        None => 20_000,
    };
    let repair_at = match v.get("repair_at") {
        Some(r) => Some(as_u64(r, "repair_at")?),
        None => None,
    };
    let kind = match kind_name {
        "none" => ScenarioKind::None,
        "transient" => ScenarioKind::Transient,
        "permanent" => ScenarioKind::Permanent,
        "cycle" => ScenarioKind::Cycle {
            period: match v.get("period") {
                Some(p) => as_u64(p, "period")?,
                None => 200_000,
            },
            count: u32::try_from(match v.get("count") {
                Some(c) => as_u64(c, "count")?,
                None => 2,
            })
            .map_err(|_| err("scenario `count` out of range"))?,
        },
        "back_to_back" => ScenarioKind::BackToBack {
            gap: match v.get("gap") {
                Some(g) => as_u64(g, "gap")?,
                None => 1_000,
            },
            second_node: match v.get("second_node") {
                Some(s) => u16::try_from(as_u64(s, "second_node")?)
                    .map_err(|_| err("scenario `second_node` out of range"))?,
                None => 0,
            },
        },
        "nested" => ScenarioKind::Nested {
            gap: match v.get("gap") {
                Some(g) => as_u64(g, "gap")?,
                None => 1_000,
            },
            second_node: match v.get("second_node") {
                Some(s) => u16::try_from(as_u64(s, "second_node")?)
                    .map_err(|_| err("scenario `second_node` out of range"))?,
                None => 0,
            },
            gap2: match v.get("gap2") {
                Some(g) => as_u64(g, "gap2")?,
                None => 0,
            },
            third_node: match v.get("third_node") {
                Some(t) => u16::try_from(as_u64(t, "third_node")?)
                    .map_err(|_| err("scenario `third_node` out of range"))?,
                None => 0,
            },
            permanent_mask: match v.get("permanent_mask") {
                Some(m) => u8::try_from(as_u64(m, "permanent_mask")?)
                    .map_err(|_| err("scenario `permanent_mask` out of range"))?,
                None => 1,
            },
        },
        "link_cut" => ScenarioKind::LinkCut {
            to_node: match v.get("to_node") {
                Some(t) => u16::try_from(as_u64(t, "to_node")?)
                    .map_err(|_| err("scenario `to_node` out of range"))?,
                None => 0,
            },
        },
        "router_down" => ScenarioKind::RouterDown,
        "message_loss" => ScenarioKind::MessageLoss {
            rate: match v.get("rate") {
                Some(r) => u32::try_from(as_u64(r, "rate")?)
                    .map_err(|_| err("scenario `rate` out of range"))?,
                None => 100,
            },
        },
        "continuous" => {
            let mean = |key| match v.get(key) {
                Some(m) => as_u64(m, key),
                None => Ok(0),
            };
            ScenarioKind::Continuous {
                node_mtbf: mean("node_mtbf")?,
                node_mttr: mean("node_mttr")?,
                link_mtbf: mean("link_mtbf")?,
                link_mttr: mean("link_mttr")?,
            }
        }
        other => {
            return Err(err(format!(
                "scenario kind must be none|transient|permanent|cycle|back_to_back|nested\
                 |link_cut|router_down|message_loss|continuous, got `{other}`"
            )))
        }
    };
    if repair_at.is_some() && kind != ScenarioKind::Permanent {
        return Err(err("`repair_at` only applies to permanent failures"));
    }
    if let Some(r) = repair_at {
        if r <= at {
            return Err(err(format!(
                "`repair_at` ({r}) must come strictly after the failure at {at}"
            )));
        }
    }
    if matches!(kind, ScenarioKind::Cycle { .. }) {
        // period/count defaults applied above; nothing more to check here.
    } else if v.get("period").is_some() || v.get("count").is_some() {
        return Err(err("`period`/`count` only apply to cycle scenarios"));
    }
    if let ScenarioKind::BackToBack { gap, second_node } = kind {
        if gap == 0 {
            return Err(err("back_to_back `gap` must be positive"));
        }
        if second_node == node {
            return Err(err(
                "back_to_back `second_node` must differ from the (dead) first victim",
            ));
        }
    } else if !matches!(kind, ScenarioKind::Nested { .. })
        && (v.get("gap").is_some() || v.get("second_node").is_some())
    {
        return Err(err(
            "`gap`/`second_node` only apply to back_to_back and nested scenarios",
        ));
    }
    if let ScenarioKind::Nested {
        gap,
        second_node,
        gap2,
        third_node,
        permanent_mask,
    } = kind
    {
        if gap == 0 {
            return Err(err("nested `gap` must be positive"));
        }
        if second_node == node {
            return Err(err(
                "nested `second_node` must differ from the first victim",
            ));
        }
        if gap2 > 0 && (third_node == node || third_node == second_node) {
            return Err(err(
                "nested `third_node` must differ from the earlier victims",
            ));
        }
        if permanent_mask > 0b111 {
            return Err(err("nested `permanent_mask` has only three fault bits"));
        }
        if gap2 == 0 && permanent_mask & 0b100 != 0 {
            return Err(err(
                "nested `permanent_mask` marks the third fault but `gap2` is 0",
            ));
        }
        if permanent_mask.count_ones() > 1 {
            return Err(err(
                "nested `permanent_mask` may set at most one bit (more permanent kills \
                 could partition the mesh)",
            ));
        }
    } else if ["gap2", "third_node", "permanent_mask"]
        .iter()
        .any(|k| v.get(k).is_some())
    {
        return Err(err(
            "`gap2`/`third_node`/`permanent_mask` only apply to nested scenarios",
        ));
    }
    if let ScenarioKind::LinkCut { to_node } = kind {
        if to_node == node {
            return Err(err("link_cut `to_node` must differ from `node`"));
        }
    } else if v.get("to_node").is_some() {
        return Err(err("`to_node` only applies to link_cut scenarios"));
    }
    if let ScenarioKind::MessageLoss { rate } = kind {
        if !(1..=999).contains(&rate) {
            return Err(err("message_loss `rate` must be 1..=999 per-mille"));
        }
    } else if v.get("rate").is_some() {
        return Err(err("`rate` only applies to message_loss scenarios"));
    }
    if let ScenarioKind::Continuous {
        node_mtbf,
        node_mttr,
        link_mtbf,
        link_mttr,
    } = kind
    {
        if node_mtbf == 0 && link_mtbf == 0 {
            return Err(err(
                "continuous scenario needs `node_mtbf` and/or `link_mtbf`",
            ));
        }
        if node_mtbf > 0 && node_mttr == 0 {
            return Err(err("continuous `node_mtbf` needs a positive `node_mttr`"));
        }
        if link_mtbf > 0 && link_mttr == 0 {
            return Err(err("continuous `link_mtbf` needs a positive `link_mttr`"));
        }
    } else if ["node_mtbf", "node_mttr", "link_mtbf", "link_mttr"]
        .iter()
        .any(|k| v.get(k).is_some())
    {
        return Err(err(
            "`node_mtbf`/`node_mttr`/`link_mtbf`/`link_mttr` only apply to continuous scenarios",
        ));
    }
    // Continuous scenarios may start at 0 (`at` is a start offset, not a
    // fault time); every scripted fault needs a positive injection cycle.
    if kind != ScenarioKind::None && !matches!(kind, ScenarioKind::Continuous { .. }) && at == 0 {
        return Err(err("scenario `at` must be positive"));
    }
    Ok(Scenario {
        kind,
        node,
        at,
        repair_at,
    })
}

impl CampaignSpec {
    /// Parses a spec from its JSON text. Unknown keys are rejected so typos
    /// fail loudly instead of silently shrinking the grid.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed JSON, unknown keys or values,
    /// and for specs that fail [`CampaignSpec::validate`].
    pub fn parse(text: &str) -> Result<CampaignSpec, SpecError> {
        let doc = Json::parse(text).map_err(|e| err(format!("spec is not valid JSON: {e}")))?;
        let Json::Obj(pairs) = &doc else {
            return Err(err("spec must be a JSON object"));
        };
        const KNOWN: &[&str] = &[
            "name",
            "seed",
            "workloads",
            "nodes",
            "freqs",
            "refs",
            "warmup",
            "lengths",
            "baseline",
            "scenarios",
        ];
        for (k, _) in pairs {
            if !KNOWN.contains(&k.as_str()) {
                return Err(err(format!("unknown spec key `{k}`")));
            }
        }
        let mut spec = CampaignSpec::default();
        if let Some(n) = doc.get("name") {
            spec.name = n
                .as_str()
                .ok_or_else(|| err("`name` must be a string"))?
                .to_string();
        }
        if let Some(s) = doc.get("seed") {
            spec.seed = as_u64(s, "seed")?;
        }
        if let Some(w) = doc.get("workloads") {
            let names = w
                .as_array()
                .ok_or_else(|| err("`workloads` must be an array of names"))?;
            spec.workloads = names
                .iter()
                .map(|n| {
                    n.as_str()
                        .ok_or_else(|| err("workload names must be strings"))
                        .and_then(workload_by_name)
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(ns) = doc.get("nodes") {
            let xs = ns
                .as_array()
                .ok_or_else(|| err("`nodes` must be an array of integers"))?;
            spec.nodes = xs
                .iter()
                .map(|x| {
                    as_u64(x, "nodes")
                        .and_then(|v| u16::try_from(v).map_err(|_| err("node count out of range")))
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(fs) = doc.get("freqs") {
            let xs = fs
                .as_array()
                .ok_or_else(|| err("`freqs` must be an array of numbers"))?;
            spec.freqs = xs
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| err("`freqs` must be numbers")))
                .collect::<Result<_, _>>()?;
        }
        let fixed_refs = doc.get("refs").map(|v| as_u64(v, "refs")).transpose()?;
        let fixed_warmup = doc.get("warmup").map(|v| as_u64(v, "warmup")).transpose()?;
        match doc.get("lengths").map(|v| {
            v.as_str()
                .ok_or_else(|| err("`lengths` must be \"fixed\" or \"paper\""))
        }) {
            None | Some(Ok("fixed")) => {
                spec.lengths = Lengths::Fixed {
                    refs: fixed_refs.unwrap_or(60_000),
                    warmup: fixed_warmup.unwrap_or(30_000),
                };
            }
            Some(Ok("paper")) => {
                if fixed_refs.is_some() || fixed_warmup.is_some() {
                    return Err(err("`refs`/`warmup` conflict with `lengths: \"paper\"`"));
                }
                spec.lengths = Lengths::PerFrequency;
            }
            Some(Ok(other)) => {
                return Err(err(format!(
                    "`lengths` must be \"fixed\" or \"paper\", got `{other}`"
                )))
            }
            Some(Err(e)) => return Err(e),
        }
        if let Some(b) = doc.get("baseline") {
            spec.baseline = b
                .as_bool()
                .ok_or_else(|| err("`baseline` must be a boolean"))?;
        }
        if let Some(sc) = doc.get("scenarios") {
            let xs = sc
                .as_array()
                .ok_or_else(|| err("`scenarios` must be an array of objects"))?;
            spec.scenarios = xs.iter().map(parse_scenario).collect::<Result<_, _>>()?;
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec for emptiness and machine-level consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.workloads.is_empty() {
            return Err(err("spec has no workloads"));
        }
        if self.nodes.is_empty() {
            return Err(err("spec has no node counts"));
        }
        if self.freqs.is_empty() && !self.baseline {
            return Err(err(
                "spec has no frequencies and no baseline: nothing to run",
            ));
        }
        if self.scenarios.is_empty() {
            return Err(err(
                "spec has an empty scenario list (omit it for fault-free)",
            ));
        }
        if matches!(self.lengths, Lengths::PerFrequency) && self.freqs.is_empty() {
            return Err(err("`lengths: \"paper\"` needs at least one frequency"));
        }
        if let Lengths::Fixed { refs, .. } = self.lengths {
            if refs == 0 {
                return Err(err("`refs` must be positive"));
            }
        }
        for f in &self.freqs {
            if !f.is_finite() || *f <= 0.0 {
                return Err(err(format!("frequency {f} is not a positive number")));
            }
        }
        for &n in &self.nodes {
            if n < 2 {
                return Err(err("every machine needs at least two nodes"));
            }
            if n < 4 && !self.freqs.is_empty() {
                return Err(err(format!(
                    "{n} nodes is too small for the ECP (four copies per modified item)"
                )));
            }
            for sc in &self.scenarios {
                if sc.kind != ScenarioKind::None && sc.node >= n {
                    return Err(err(format!(
                        "scenario targets node {} but the machine has only {n} nodes",
                        sc.node
                    )));
                }
                if let ScenarioKind::BackToBack { second_node, .. } = sc.kind {
                    if second_node >= n {
                        return Err(err(format!(
                            "scenario targets second node {second_node} but the machine has \
                             only {n} nodes"
                        )));
                    }
                }
                if let ScenarioKind::Nested {
                    second_node,
                    gap2,
                    third_node,
                    ..
                } = sc.kind
                {
                    if second_node >= n || (gap2 > 0 && third_node >= n) {
                        return Err(err(format!(
                            "nested scenario targets a node outside the {n}-node machine"
                        )));
                    }
                }
                if let ScenarioKind::LinkCut { to_node } = sc.kind {
                    if to_node >= n {
                        return Err(err(format!(
                            "scenario cuts a link to node {to_node} but the machine has \
                             only {n} nodes"
                        )));
                    }
                    let geo = ftcoma_net::MeshGeometry::for_nodes(usize::from(n));
                    let (a, b) = (NodeId::new(sc.node), NodeId::new(to_node));
                    if geo.hops(a, b) != 1 {
                        return Err(err(format!(
                            "link_cut nodes {} and {to_node} are not mesh-adjacent on \
                             {n} nodes ({}x{})",
                            sc.node,
                            geo.cols(),
                            geo.rows()
                        )));
                    }
                }
            }
        }
        let faulty = self.scenarios.iter().any(|s| s.kind != ScenarioKind::None);
        if faulty && self.freqs.is_empty() {
            return Err(err(
                "failure scenarios need at least one frequency (the baseline cannot recover)",
            ));
        }
        Ok(())
    }

    /// Expands the spec into its flat, deterministically ordered cell list.
    ///
    /// Every cell's seed is derived from `(campaign seed, group id)` with
    /// [`ftcoma_sim::derive_seed`]: cells in the same baseline group share
    /// the seed (paired standard/ECP runs must — see
    /// [`MachineConfig::seed`]), distinct groups get independent streams,
    /// and nothing depends on execution order, so results are identical at
    /// any `--jobs` level.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid; call [`CampaignSpec::validate`]
    /// first when the spec was built programmatically.
    pub fn expand(&self) -> Vec<Cell> {
        self.validate().expect("invalid campaign spec");
        let mut cells = Vec::new();
        let mut group: u64 = 0;
        for wl in &self.workloads {
            for &nodes in &self.nodes {
                // One baseline group per distinct run length: fixed lengths
                // share one group across all frequencies; paper lengths give
                // each frequency its own (refs differ, so baselines do too).
                let groups: Vec<(u64, u64, Vec<f64>)> = match self.lengths {
                    Lengths::Fixed { refs, warmup } => {
                        vec![(refs, warmup, self.freqs.clone())]
                    }
                    Lengths::PerFrequency => self
                        .freqs
                        .iter()
                        .map(|&f| {
                            let (refs, warmup) = lengths_for(f);
                            (refs, warmup, vec![f])
                        })
                        .collect(),
                };
                for (refs, warmup, freqs) in groups {
                    let seed = derive_seed(self.seed, group);
                    let base = MachineConfig {
                        nodes,
                        refs_per_node: refs,
                        warmup_refs_per_node: warmup,
                        workload: wl.clone(),
                        seed,
                        ..MachineConfig::default()
                    };
                    let wl_tag = wl.name.to_ascii_lowercase();
                    if self.baseline {
                        cells.push(Cell {
                            id: cells.len() as u64,
                            group,
                            label: format!("{wl_tag}/n{nodes}/r{refs}/std"),
                            cfg: MachineConfig {
                                ft: FtConfig::disabled(),
                                ..base.clone()
                            },
                            scenario: Scenario::none(),
                        });
                    }
                    for &freq in &freqs {
                        for sc in &self.scenarios {
                            cells.push(Cell {
                                id: cells.len() as u64,
                                group,
                                label: format!("{wl_tag}/n{nodes}/r{refs}/f{freq}/{}", sc.label()),
                                cfg: MachineConfig {
                                    ft: FtConfig::enabled(freq),
                                    // Failure runs verify recovery against
                                    // the committed-value oracle.
                                    verify: sc.kind != ScenarioKind::None,
                                    ..base.clone()
                                },
                                scenario: *sc,
                            });
                        }
                    }
                    group += 1;
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec_text() -> &'static str {
        r#"{
            "name": "unit",
            "seed": 7,
            "workloads": ["water", "mp3d"],
            "nodes": [4],
            "freqs": [400, 200],
            "refs": 3000,
            "warmup": 1000,
            "scenarios": [
                {"kind": "none"},
                {"kind": "transient", "node": 1, "at": 5000}
            ]
        }"#
    }

    #[test]
    fn expansion_count_and_stable_ids() {
        let spec = CampaignSpec::parse(small_spec_text()).unwrap();
        let cells = spec.expand();
        // 2 workloads x 1 node count x (1 baseline + 2 freqs x 2 scenarios).
        assert_eq!(cells.len(), 10);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i as u64);
        }
        // Re-expansion is byte-identical in ids, labels and seeds.
        let again = spec.expand();
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.label, b.label);
            assert_eq!(a.cfg.seed, b.cfg.seed);
        }
        // Baseline and its ECP cells share the group seed; groups differ.
        assert_eq!(cells[0].cfg.seed, cells[1].cfg.seed);
        assert_ne!(cells[0].cfg.seed, cells[5].cfg.seed);
        assert!(!cells[0].is_ft());
        assert!(cells[1].is_ft());
        // Failure cells verify against the oracle.
        assert!(cells[2].cfg.verify);
        assert!(!cells[1].cfg.verify);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let e = CampaignSpec::parse(r#"{"bogus": 1}"#).unwrap_err();
        assert!(e.0.contains("unknown spec key"), "{e}");
        let e =
            CampaignSpec::parse(r#"{"nodes": [4], "scenarios": [{"kind": "none", "knid": 1}]}"#)
                .unwrap_err();
        assert!(e.0.contains("unknown scenario key"), "{e}");
    }

    #[test]
    fn validation_catches_inconsistencies() {
        assert!(CampaignSpec::parse(r#"{"workloads": []}"#).is_err());
        // ECP needs >= 4 nodes.
        assert!(CampaignSpec::parse(r#"{"nodes": [2]}"#).is_err());
        // Scenario victim must exist.
        assert!(CampaignSpec::parse(
            r#"{"nodes": [4], "scenarios": [{"kind": "transient", "node": 9}]}"#
        )
        .is_err());
        // repair_at only for permanent failures.
        assert!(
            CampaignSpec::parse(r#"{"scenarios": [{"kind": "transient", "repair_at": 10}]}"#)
                .is_err()
        );
        // repair_at must come strictly after the failure itself.
        let e = parse_scenario(
            &Json::parse(r#"{"kind": "permanent", "at": 500, "repair_at": 500}"#).unwrap(),
        )
        .unwrap_err();
        assert!(e.0.contains("strictly after"), "{e}");
        assert!(parse_scenario(
            &Json::parse(r#"{"kind": "permanent", "at": 500, "repair_at": 400}"#).unwrap()
        )
        .is_err());
        assert!(parse_scenario(
            &Json::parse(r#"{"kind": "permanent", "at": 500, "repair_at": 501}"#).unwrap()
        )
        .is_ok());
        // paper lengths conflict with explicit refs.
        assert!(CampaignSpec::parse(r#"{"lengths": "paper", "refs": 100}"#).is_err());
        // Baseline-only campaigns are allowed.
        let spec = CampaignSpec::parse(r#"{"freqs": [], "baseline": true}"#).unwrap();
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn paper_lengths_give_one_group_per_frequency() {
        let spec = CampaignSpec::parse(
            r#"{"workloads": ["water"], "nodes": [4], "freqs": [400, 5], "lengths": "paper"}"#,
        )
        .unwrap();
        let cells = spec.expand();
        // Two groups, each with a baseline and one ECP cell.
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].group, cells[1].group);
        assert_eq!(cells[2].group, cells[3].group);
        assert_ne!(cells[0].group, cells[2].group);
        // Low frequency runs are long (lengths_for floor is 60k refs).
        assert_eq!(cells[0].cfg.refs_per_node, 60_000);
        assert!(cells[2].cfg.refs_per_node >= 3_000_000);
    }

    #[test]
    fn scenario_labels_and_json() {
        let sc = parse_scenario(
            &Json::parse(r#"{"kind": "permanent", "node": 3, "at": 100, "repair_at": 900}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(sc.label(), "p3@100+r@900");
        let j = sc.to_json();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("permanent"));
        assert_eq!(j.get("repair_at").and_then(Json::as_u64), Some(900));
        let cyc = parse_scenario(
            &Json::parse(r#"{"kind": "cycle", "node": 1, "at": 50, "period": 60, "count": 3}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(cyc.label(), "c1@50x3/60");
    }

    #[test]
    fn net_scenarios_parse_label_and_validate() {
        let lc = parse_scenario(
            &Json::parse(r#"{"kind": "link_cut", "node": 1, "to_node": 2, "at": 400}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(lc.label(), "lc1-2@400");
        assert_eq!(lc.to_json().get("to_node").and_then(Json::as_u64), Some(2));
        let rd =
            parse_scenario(&Json::parse(r#"{"kind": "router_down", "node": 3, "at": 9}"#).unwrap())
                .unwrap();
        assert_eq!(rd.label(), "rd3@9");
        let ml = parse_scenario(
            &Json::parse(r#"{"kind": "message_loss", "rate": 250, "at": 7}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(ml.label(), "ml250@7");
        assert_eq!(ml.to_json().get("rate").and_then(Json::as_u64), Some(250));
        // Round-trip through to_json/from_json.
        assert_eq!(Scenario::from_json(&lc.to_json()).unwrap(), lc);
        assert_eq!(Scenario::from_json(&ml.to_json()).unwrap(), ml);
        // Rate bounds and cross-field checks.
        assert!(
            parse_scenario(&Json::parse(r#"{"kind": "message_loss", "rate": 1000}"#).unwrap())
                .is_err()
        );
        assert!(
            parse_scenario(&Json::parse(r#"{"kind": "transient", "rate": 5}"#).unwrap()).is_err()
        );
        assert!(parse_scenario(
            &Json::parse(r#"{"kind": "link_cut", "node": 2, "to_node": 2}"#).unwrap()
        )
        .is_err());
        // Adjacency: on a 2x2 mesh nodes 0 and 3 sit on the diagonal.
        assert!(CampaignSpec::parse(
            r#"{"nodes": [4], "scenarios": [{"kind": "link_cut", "node": 0, "to_node": 3}]}"#
        )
        .is_err());
        let ok = CampaignSpec::parse(
            r#"{"nodes": [4], "scenarios": [{"kind": "link_cut", "node": 0, "to_node": 1}]}"#,
        )
        .unwrap();
        assert!(ok.expand().iter().any(|c| c.label.ends_with("lc0-1@20000")));
    }

    #[test]
    fn nested_scenarios_parse_label_and_validate() {
        let sc = parse_scenario(
            &Json::parse(
                r#"{"kind": "nested", "node": 2, "at": 30000, "gap": 50, "second_node": 5,
                    "gap2": 800, "third_node": 1, "permanent_mask": 1}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(sc.label(), "nf2@30000+50f5+800f1m1");
        assert_eq!(Scenario::from_json(&sc.to_json()).unwrap(), sc);
        // Two-fault form: gap2 defaults to 0, first fault permanent.
        let two = parse_scenario(
            &Json::parse(r#"{"kind": "nested", "node": 2, "gap": 50, "second_node": 5}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(two.label(), "nf2@20000+50f5m1");
        assert_eq!(Scenario::from_json(&two.to_json()).unwrap(), two);
        // Distinct victims, one permanent bit at most, third bit needs gap2.
        assert!(parse_scenario(
            &Json::parse(r#"{"kind": "nested", "node": 2, "second_node": 2}"#).unwrap()
        )
        .is_err());
        assert!(parse_scenario(
            &Json::parse(r#"{"kind": "nested", "second_node": 1, "permanent_mask": 3}"#).unwrap()
        )
        .is_err());
        assert!(parse_scenario(
            &Json::parse(r#"{"kind": "nested", "second_node": 1, "permanent_mask": 4}"#).unwrap()
        )
        .is_err());
        // The nested-only keys are rejected elsewhere.
        assert!(
            parse_scenario(&Json::parse(r#"{"kind": "transient", "gap2": 9}"#).unwrap()).is_err()
        );
        // Victims must exist on the machine.
        assert!(CampaignSpec::parse(
            r#"{"nodes": [4], "scenarios": [{"kind": "nested", "node": 1, "second_node": 9}]}"#
        )
        .is_err());
    }

    #[test]
    fn continuous_scenarios_parse_label_and_validate() {
        let sc = parse_scenario(
            &Json::parse(
                r#"{"kind": "continuous", "at": 0, "node_mtbf": 60000, "node_mttr": 9000,
                    "link_mtbf": 80000, "link_mttr": 7000}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(sc.label(), "cont@0+n60000/9000+l80000/7000");
        // `at` is a start offset here, so 0 is allowed.
        assert_eq!(sc.at, 0);
        // Round-trip through to_json/from_json.
        assert_eq!(Scenario::from_json(&sc.to_json()).unwrap(), sc);
        // Node-only process: the link half stays disabled and off the label.
        let node_only = parse_scenario(
            &Json::parse(r#"{"kind": "continuous", "node_mtbf": 50000, "node_mttr": 5000}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(node_only.label(), "cont@20000+n50000/5000");
        // An MTBF without its MTTR, or no process at all, is rejected.
        assert!(
            parse_scenario(&Json::parse(r#"{"kind": "continuous", "node_mtbf": 9}"#).unwrap())
                .is_err()
        );
        assert!(parse_scenario(&Json::parse(r#"{"kind": "continuous"}"#).unwrap()).is_err());
        // The mean keys belong to continuous scenarios alone.
        assert!(
            parse_scenario(&Json::parse(r#"{"kind": "transient", "node_mtbf": 9}"#).unwrap())
                .is_err()
        );
    }
}
