//! The campaign report: one versioned JSON document aggregating every
//! cell's metrics, link report and overhead decomposition.
//!
//! The document is `schema_version` 5 (see
//! [`ftcoma_machine::export::SCHEMA_VERSION`]); cells appear in id order
//! regardless of the order workers finished them, and every field is a
//! pure function of the spec — the property the CI `determinism` job
//! checks by byte-diffing `--jobs 1` against `--jobs 4` output. Wall-clock
//! timings live in a separate sidecar document ([`timing_json`]) that is
//! exempt from the comparison.

use ftcoma_machine::{export, PhaseLatency, RunMetrics};
use ftcoma_sim::Json;

use crate::runner::CellOutcome;
use crate::spec::{CampaignSpec, Cell, ScenarioKind};

/// The execution-time decomposition of one ECP cell against its group's
/// standard-protocol baseline (`T_ft = T_std + T_create + T_commit +
/// T_pollution`, fractions of `T_std`).
fn decomposition_json(ft: &RunMetrics, std: &RunMetrics) -> Json {
    let t_std = std.total_cycles as f64;
    let t_ft = ft.total_cycles as f64;
    let create = ft.t_create as f64;
    let commit = ft.t_commit as f64;
    Json::obj([
        ("total_overhead", Json::from(t_ft / t_std - 1.0)),
        ("create", Json::from(create / t_std)),
        ("commit", Json::from(commit / t_std)),
        (
            "pollution",
            Json::from((t_ft - t_std - create - commit) / t_std),
        ),
    ])
}

/// One cell's row in the report: identity, configuration summary,
/// decomposition (ECP cells with a baseline in their group) and the full
/// embedded metrics document.
pub fn cell_json(cell: &Cell, outcome: &CellOutcome, baseline: Option<&RunMetrics>) -> Json {
    let freq = if cell.is_ft() {
        Json::from(cell.cfg.ft.ckpt_rate_hz)
    } else {
        Json::Null
    };
    let scenario = if cell.scenario.kind == ScenarioKind::None {
        Json::Null
    } else {
        cell.scenario.to_json()
    };
    let decomposition = match (cell.is_ft(), baseline) {
        (true, Some(std)) => decomposition_json(&outcome.metrics, std),
        _ => Json::Null,
    };
    Json::obj([
        ("id", Json::from(cell.id)),
        ("group", Json::from(cell.group)),
        ("label", Json::from(cell.label.as_str())),
        ("workload", Json::from(cell.cfg.workload.name.as_str())),
        ("nodes", Json::from(u64::from(cell.cfg.nodes))),
        ("refs_per_node", Json::from(cell.cfg.refs_per_node)),
        (
            "warmup_refs_per_node",
            Json::from(cell.cfg.warmup_refs_per_node),
        ),
        (
            "mode",
            Json::from(if cell.is_ft() { "ecp" } else { "standard" }),
        ),
        ("freq", freq),
        ("scenario", scenario),
        // Hex string: JSON numbers are doubles and would round 64-bit
        // derived seeds.
        ("seed", Json::from(format!("0x{:016x}", cell.cfg.seed))),
        ("decomposition", decomposition),
        ("outcome", export::outcome_json(&outcome.outcome)),
        (
            "metrics",
            export::metrics_json(&outcome.metrics, &outcome.links),
        ),
    ])
}

/// Assembles the full campaign document from a spec's cells and their
/// outcomes (`outcomes[i]` must be cell `i`'s, as `run_cells` returns
/// them).
///
/// # Panics
///
/// Panics if `cells` and `outcomes` disagree in length or ids.
pub fn campaign_json(spec: &CampaignSpec, cells: &[Cell], outcomes: &[CellOutcome]) -> Json {
    assert_eq!(cells.len(), outcomes.len(), "one outcome per cell");
    // Group id -> baseline metrics, for the decompositions.
    let baselines: Vec<(u64, &RunMetrics)> = cells
        .iter()
        .zip(outcomes)
        .filter(|(c, _)| !c.is_ft())
        .map(|(c, o)| (c.group, &o.metrics))
        .collect();
    let rows = cells.iter().zip(outcomes).map(|(c, o)| {
        assert_eq!(c.id, o.cell_id, "outcomes out of order");
        let baseline = baselines
            .iter()
            .find(|(g, _)| *g == c.group)
            .map(|(_, m)| *m);
        cell_json(c, o, baseline)
    });

    let mut totals = RunMetrics::default();
    let mut phases = PhaseLatency::default();
    for o in outcomes {
        totals.refs += o.metrics.refs;
        totals.total_cycles += o.metrics.total_cycles;
        totals.checkpoints += o.metrics.checkpoints;
        totals.failures += o.metrics.failures;
        totals.repairs += o.metrics.repairs;
        totals.net_messages += o.metrics.net_messages;
        phases.merge(&o.metrics.phases);
    }

    Json::obj([
        ("schema_version", Json::from(export::SCHEMA_VERSION)),
        ("kind", Json::from("campaign")),
        (
            "campaign",
            Json::obj([
                ("name", Json::from(spec.name.as_str())),
                ("seed", Json::from(spec.seed)),
                ("cells", Json::from(cells.len())),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("refs", Json::from(totals.refs)),
                ("simulated_cycles", Json::from(totals.total_cycles)),
                ("checkpoints", Json::from(totals.checkpoints)),
                ("failures", Json::from(totals.failures)),
                ("repairs", Json::from(totals.repairs)),
                ("net_messages", Json::from(totals.net_messages)),
                (
                    "phases",
                    Json::obj(
                        phases
                            .named()
                            .into_iter()
                            .map(|(name, h)| (name, h.summary().to_json())),
                    ),
                ),
            ]),
        ),
        ("cells", Json::arr(rows)),
    ])
}

/// The wall-clock timing sidecar: host timings of a campaign run, kept out
/// of the report document so the report itself stays byte-deterministic.
/// The CLI writes it next to the report as `<out>.timing.json`.
pub fn timing_json(outcomes: &[CellOutcome], wall_ms_total: f64) -> Json {
    Json::obj([(
        "timing",
        Json::obj([
            ("wall_ms_total", Json::from(wall_ms_total)),
            (
                "cells",
                Json::arr(outcomes.iter().map(|o| {
                    Json::obj([
                        ("id", Json::from(o.cell_id)),
                        ("wall_ms", Json::from(o.wall_ms)),
                    ])
                })),
            ),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_cells;

    #[test]
    fn report_is_versioned_ordered_and_decomposed() {
        let spec = CampaignSpec::parse(
            r#"{
                "name": "report-unit",
                "workloads": ["water"],
                "nodes": [4],
                "freqs": [400],
                "refs": 2000,
                "warmup": 0
            }"#,
        )
        .unwrap();
        let cells = spec.expand();
        let outcomes = run_cells(&cells, 2);
        let doc = campaign_json(&spec, &cells, &outcomes);
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(export::SCHEMA_VERSION)
        );
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("campaign"));
        let rows = doc.get("cells").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("mode").and_then(Json::as_str), Some("standard"));
        assert_eq!(rows[1].get("mode").and_then(Json::as_str), Some("ecp"));
        // Every cell carries its structured recovery outcome.
        for row in rows {
            assert_eq!(
                row.get("outcome")
                    .and_then(|o| o.get("status"))
                    .and_then(Json::as_str),
                Some("recovered")
            );
        }
        // The ECP cell carries a decomposition against its baseline.
        let d = rows[1].get("decomposition").unwrap();
        assert!(d.get("create").and_then(Json::as_f64).is_some());
        assert_eq!(rows[0].get("decomposition"), Some(&Json::Null));
        // Embedded metrics documents are complete.
        let m = rows[1].get("metrics").unwrap();
        assert!(m
            .get("machine")
            .and_then(|s| s.get("checkpoints"))
            .is_some());
        // Merged per-phase latency summaries ride along in the totals.
        let phases = doc.get("totals").and_then(|t| t.get("phases")).unwrap();
        assert!(phases
            .get("dir_lookup")
            .and_then(|h| h.get("count"))
            .is_some());
        // The whole document round-trips through the parser.
        assert!(Json::parse(&doc.to_string_pretty()).is_ok());
        // The report itself carries no wall-clock fields...
        let text = doc.to_string_compact();
        assert!(!text.contains("wall_ms"), "wall clock leaked into report");
        // ...those live in the timing sidecar, one row per cell.
        let timing = timing_json(&outcomes, 12.5);
        let t = timing.get("timing").unwrap();
        assert!(t.get("wall_ms_total").and_then(Json::as_f64).is_some());
        assert_eq!(t.get("cells").unwrap().as_array().unwrap().len(), 2);
    }
}
