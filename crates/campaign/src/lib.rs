//! Parallel, deterministic simulation campaigns.
//!
//! The paper's evaluation (Figs. 3–11, Tables 1–3) is a grid of
//! *independent* simulations: workloads × node counts × checkpoint
//! frequencies × failure scenarios. This crate expands such a grid from a
//! declarative spec into flat [`Cell`]s, runs them on a `std::thread`
//! worker pool, and aggregates everything into one versioned JSON report
//! (`schema_version` 6). Host wall-clock timings stay out of the report;
//! [`report::timing_json`] builds them as a separate sidecar document.
//!
//! Determinism is the design center: every cell's RNG seed is derived from
//! `(campaign seed, baseline-group id)` with [`ftcoma_sim::derive_seed`] at
//! *expansion* time, so results are byte-identical at any `--jobs` level
//! and any single cell can be replayed alone (`ftcoma campaign --cell`).
//! Cells in the same baseline group share their seed because paired
//! standard/ECP runs must (the paper's methodology); distinct groups get
//! independent streams.
//!
//! # Example
//!
//! ```
//! use ftcoma_campaign::{run_cells, report, CampaignSpec};
//!
//! let spec = CampaignSpec::parse(r#"{
//!     "name": "doc-example",
//!     "workloads": ["water"],
//!     "nodes": [4],
//!     "freqs": [400],
//!     "refs": 2000,
//!     "warmup": 0
//! }"#).unwrap();
//! let cells = spec.expand();
//! assert_eq!(cells.len(), 2); // baseline + one ECP cell
//! let outcomes = run_cells(&cells, 2);
//! let doc = report::campaign_json(&spec, &cells, &outcomes);
//! assert_eq!(doc.get("schema_version").and_then(|v| v.as_u64()), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod spec;

pub use runner::{
    apply_scenario, fork_cycle, needs_net, run_cell, run_cell_on, run_cells, CellOutcome,
    SnapshotForge,
};
pub use spec::{lengths_for, CampaignSpec, Cell, Lengths, Scenario, ScenarioKind, SpecError};
