//! The parallel cell executor: a work queue drained by `std::thread`
//! workers, with snapshot-fork prefix sharing.
//!
//! Cells are independent simulations, so the pool claims them off a shared
//! atomic counter and writes each outcome back into its slot. Nothing about
//! a cell's result depends on which worker ran it or when — seeds are fixed
//! at expansion time and the simulator is a pure function of its
//! configuration — so `--jobs 1` and `--jobs N` produce identical outcomes
//! (enforced by the `determinism` CI job and the integration tests).
//!
//! # Snapshot-fork execution
//!
//! Scripted scenarios only change machine behavior from their injection
//! cycle on; everything before is the same unfaulted prefix. Instead of
//! re-simulating that prefix once per cell, [`run_cells`] groups cells
//! that share a configuration (and transport band), runs the prefix
//! *once* per group, snapshots it at each distinct injection cycle
//! ([`ftcoma_machine::Snapshot`]), and forks each cell's machine from the
//! matching snapshot. The event calendar's two-band sequence numbering
//! makes fork-time injection tie-break exactly like construction-time
//! injection, so the outcomes are byte-identical to straight runs —
//! the grouping is a pure wall-clock optimization, independent of `jobs`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ftcoma_core::RecoveryOutcome;
use ftcoma_machine::{
    tracelog::TraceEvent, FailureKind, FaultDist, FaultProcessConfig, Machine, MachineConfig,
    Snapshot,
};
use ftcoma_mem::NodeId;
use ftcoma_net::LinkReport;
use ftcoma_sim::Cycles;

use crate::spec::{Cell, Scenario, ScenarioKind};

/// Everything one cell run produced.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Id of the cell that produced this outcome.
    pub cell_id: u64,
    /// The run's aggregated metrics.
    pub metrics: ftcoma_machine::RunMetrics,
    /// Per-link interconnect breakdown (empty for bus fabrics).
    pub links: Vec<LinkReport>,
    /// Retained protocol trace (empty unless the cell's config set
    /// `trace_capacity`).
    pub trace: Vec<TraceEvent>,
    /// Structured recovery verdict: the machine's own outcome, downgraded
    /// to `InvariantViolation` if the post-run invariant sweep found
    /// problems a recovered run should not have.
    pub outcome: RecoveryOutcome,
    /// Final owner-visible memory image (`(item index, value)`, sorted) —
    /// the chaos golden-replay oracle's subject.
    pub owner_image: Vec<(u64, u64)>,
    /// Per-stream emitted-reference counts (liveness oracle input).
    pub stream_progress: Vec<u64>,
    /// Retained causal span records (empty unless the cell's config set
    /// `trace_capacity`).
    pub spans: Vec<ftcoma_sim::span::SpanRecord>,
    /// Sampled time-series rows (empty unless the cell's config set
    /// `timeseries_every`).
    pub timeseries: Vec<ftcoma_machine::TsSample>,
    /// Whether the post-run copy-accounting audit certifies a data loss:
    /// some written committed item retains zero live copies. An
    /// `unrecoverable_data_loss` outcome is only legitimate when this is
    /// set (the chaos oracle enforces it).
    pub data_loss_certified: bool,
    /// Host wall-clock time of this cell, in milliseconds. Never
    /// serialized into the report document (it lands in the `timing`
    /// sidecar), so reports stay byte-deterministic.
    pub wall_ms: f64,
}

/// Injects a cell scenario into a machine. Valid both before the run
/// starts and at a fork point mid-run: the scenario APIs schedule through
/// the event calendar's pre band, so either way the events tie-break
/// identically.
pub fn apply_scenario(machine: &mut Machine, scenario: &Scenario) {
    let node = NodeId::new(scenario.node);
    match scenario.kind {
        ScenarioKind::None => {}
        ScenarioKind::Transient => {
            machine.schedule_failure(scenario.at, node, FailureKind::Transient);
        }
        ScenarioKind::Permanent => {
            machine.schedule_failure(scenario.at, node, FailureKind::Permanent);
            if let Some(repair_at) = scenario.repair_at {
                machine.schedule_repair(repair_at, node);
            }
        }
        ScenarioKind::Cycle { period, count } => {
            for k in 0..u64::from(count) {
                machine.schedule_failure(scenario.at + k * period, node, FailureKind::Transient);
            }
        }
        ScenarioKind::BackToBack { gap, second_node } => {
            machine.schedule_failure(scenario.at, node, FailureKind::Permanent);
            machine.schedule_failure(
                scenario.at + gap,
                NodeId::new(second_node),
                FailureKind::Transient,
            );
        }
        ScenarioKind::Nested {
            gap,
            second_node,
            gap2,
            third_node,
            permanent_mask,
        } => {
            let kind_of = |bit: u8| {
                if permanent_mask & bit != 0 {
                    FailureKind::Permanent
                } else {
                    FailureKind::Transient
                }
            };
            machine.schedule_failure(scenario.at, node, kind_of(0b001));
            machine.schedule_failure(scenario.at + gap, NodeId::new(second_node), kind_of(0b010));
            if gap2 > 0 {
                machine.schedule_failure(
                    scenario.at + gap + gap2,
                    NodeId::new(third_node),
                    kind_of(0b100),
                );
            }
        }
        ScenarioKind::LinkCut { to_node } => {
            machine.schedule_link_cut(scenario.at, node, NodeId::new(to_node));
        }
        ScenarioKind::RouterDown => {
            machine.schedule_router_down(scenario.at, node);
        }
        ScenarioKind::MessageLoss { rate } => {
            machine.set_message_loss(scenario.at, rate);
        }
        ScenarioKind::Continuous {
            node_mtbf,
            node_mttr,
            link_mtbf,
            link_mttr,
        } => {
            machine.install_fault_process(FaultProcessConfig {
                node_mtbf,
                node_mttr,
                link_mtbf,
                link_mttr,
                dist: FaultDist::Exponential,
                start: scenario.at,
            });
        }
    }
}

/// The cycle at which a scenario first touches the machine — the latest
/// safe fork point — or `None` for scenarios that must run straight
/// (no injection at all, or a continuous process whose schedule is drawn
/// at install time, typically from cycle 0).
pub fn fork_cycle(scenario: &Scenario) -> Option<Cycles> {
    match scenario.kind {
        ScenarioKind::None | ScenarioKind::Continuous { .. } => None,
        ScenarioKind::Transient
        | ScenarioKind::Permanent
        | ScenarioKind::Cycle { .. }
        | ScenarioKind::BackToBack { .. }
        | ScenarioKind::Nested { .. }
        | ScenarioKind::LinkCut { .. }
        | ScenarioKind::RouterDown
        | ScenarioKind::MessageLoss { .. } => Some(scenario.at),
    }
}

/// Whether a scenario runs on the reliable-transport path from cycle 0
/// (its straight run activates the transport at construction time). Such
/// cells must fork from a transport-preactivated prefix; plain node-fault
/// cells from a fire-and-forget one — the two prefix bands differ.
pub fn needs_net(kind: &ScenarioKind) -> bool {
    matches!(
        kind,
        ScenarioKind::LinkCut { .. } | ScenarioKind::RouterDown | ScenarioKind::MessageLoss { .. }
    )
}

/// Finishes a prepared machine (scenario already injected) and assembles
/// the outcome. `start` anchors the wall-clock sidecar measurement.
fn finish_cell(cell: &Cell, mut machine: Machine, start: Instant) -> CellOutcome {
    let metrics = machine.run();
    let mut outcome = machine.outcome().clone();
    if outcome.is_recovered() {
        let problems = machine.check_invariants();
        if !problems.is_empty() {
            outcome = RecoveryOutcome::InvariantViolation {
                at: metrics.total_cycles,
                problems,
            };
        }
    }
    CellOutcome {
        cell_id: cell.id,
        metrics,
        links: machine.link_report(),
        trace: machine.trace(),
        outcome,
        owner_image: machine.owner_image(),
        stream_progress: machine.stream_progress(),
        spans: machine.spans(),
        timeseries: machine.timeseries().to_vec(),
        data_loss_certified: machine.audit_data_loss().is_some(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs a single cell to completion from scratch: builds the machine,
/// injects the cell's scenario, runs, and records the structured outcome
/// (machine verdict plus a post-run invariant sweep) instead of panicking.
pub fn run_cell(cell: &Cell) -> CellOutcome {
    let start = Instant::now();
    let mut machine = Machine::new(cell.cfg.clone());
    apply_scenario(&mut machine, &cell.scenario);
    finish_cell(cell, machine, start)
}

/// Runs a cell on a machine forked from a shared pre-injection prefix:
/// injects the scenario at the fork point and finishes the run. The
/// outcome is byte-identical to [`run_cell`] when the machine came from a
/// matching prefix (same config and transport band, forked at or before
/// the scenario's [`fork_cycle`]).
pub fn run_cell_on(cell: &Cell, machine: Machine) -> CellOutcome {
    let start = Instant::now();
    let mut machine = machine;
    apply_scenario(&mut machine, &cell.scenario);
    finish_cell(cell, machine, start)
}

/// A lazy cache of prefix snapshots for one `(config, transport band)`,
/// used by the chaos shrinker: every bisection probe of the injection
/// cycle forks from the nearest snapshot at or before it instead of
/// re-simulating the prefix from cycle 0.
#[derive(Debug)]
pub struct SnapshotForge {
    cfg: MachineConfig,
    net: bool,
    snaps: BTreeMap<Cycles, Snapshot>,
}

impl SnapshotForge {
    /// A forge for machines built from `cfg`; `net` selects the
    /// transport-preactivated prefix band (see [`needs_net`]).
    pub fn new(cfg: MachineConfig, net: bool) -> Self {
        Self {
            cfg,
            net,
            snaps: BTreeMap::new(),
        }
    }

    /// A machine advanced to exactly `cycle` (every event strictly before
    /// it dispatched), forked from the nearest cached snapshot at or
    /// before `cycle` — or from a fresh machine when none exists yet. The
    /// state at `cycle` is cached, so repeated probes (bisection!) cost at
    /// most one incremental prefix extension each.
    pub fn machine_at(&mut self, cycle: Cycles) -> Machine {
        if let Some(snap) = self.snaps.get(&cycle) {
            return snap.to_machine();
        }
        let mut m = match self.snaps.range(..=cycle).next_back() {
            Some((_, snap)) => snap.to_machine(),
            None => {
                let mut m = Machine::new(self.cfg.clone());
                if self.net {
                    m.preactivate_transport();
                }
                m
            }
        };
        m.run_until(cycle);
        self.snaps.insert(cycle, m.snapshot());
        m
    }

    /// The forge's configuration (forks are only valid for cells whose
    /// config equals it).
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }
}

/// Maps `items` through `f` on a pool of `jobs` worker threads, returning
/// results in item order (independent of completion order).
fn pool_map<T: Sync, R: Send>(items: &[T], jobs: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let jobs = jobs.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().expect("result lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|s| s.expect("every item ran"))
        .collect()
}

/// Runs every cell on a pool of `jobs` worker threads and returns the
/// outcomes in cell order (independent of completion order).
///
/// Cells whose scenarios admit a fork point are grouped by `(config,
/// transport band)`; each multi-cell group simulates its unfaulted prefix
/// once, snapshotting at every distinct injection cycle, and the member
/// cells fork from those snapshots. Outcomes are byte-identical to
/// running every cell from scratch, at any job count.
///
/// `jobs` is clamped to `1..=cells.len()`; pass
/// `std::thread::available_parallelism()` for one worker per core.
pub fn run_cells(cells: &[Cell], jobs: usize) -> Vec<CellOutcome> {
    if cells.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, cells.len());

    struct Group<'a> {
        cfg: &'a MachineConfig,
        net: bool,
        members: Vec<usize>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        if fork_cycle(&cell.scenario).is_none() {
            continue;
        }
        let net = needs_net(&cell.scenario.kind);
        match groups
            .iter_mut()
            .find(|g| g.net == net && *g.cfg == cell.cfg)
        {
            Some(g) => g.members.push(i),
            None => groups.push(Group {
                cfg: &cell.cfg,
                net,
                members: vec![i],
            }),
        }
    }
    // A lone cell gains nothing from a shared prefix: run it straight.
    groups.retain(|g| g.members.len() > 1);

    // Phase A: one shared prefix run per group, snapshotted at each
    // distinct fork cycle.
    let prefixes: Vec<BTreeMap<Cycles, Snapshot>> = pool_map(&groups, jobs, |g| {
        let mut fork_ats: Vec<Cycles> = g
            .members
            .iter()
            .map(|&i| fork_cycle(&cells[i].scenario).expect("grouped cells are forkable"))
            .collect();
        fork_ats.sort_unstable();
        fork_ats.dedup();
        let mut m = Machine::new(g.cfg.clone());
        if g.net {
            m.preactivate_transport();
        }
        let mut snaps = BTreeMap::new();
        for at in fork_ats {
            m.run_until(at);
            snaps.insert(at, m.snapshot());
        }
        snaps
    });
    let mut fork_from: Vec<Option<(usize, Cycles)>> = vec![None; cells.len()];
    for (gi, g) in groups.iter().enumerate() {
        for &i in &g.members {
            let at = fork_cycle(&cells[i].scenario).expect("grouped cells are forkable");
            fork_from[i] = Some((gi, at));
        }
    }

    // Phase B: every cell, forked where a prefix snapshot exists.
    let idx: Vec<usize> = (0..cells.len()).collect();
    pool_map(&idx, jobs, |&i| match fork_from[i] {
        Some((gi, at)) => run_cell_on(&cells[i], prefixes[gi][&at].to_machine()),
        None => run_cell(&cells[i]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"{
                "workloads": ["water"],
                "nodes": [4],
                "freqs": [400],
                "refs": 2000,
                "warmup": 0,
                "scenarios": [
                    {"kind": "none"},
                    {"kind": "transient", "node": 1, "at": 4000},
                    {"kind": "permanent", "node": 2, "at": 4000, "repair_at": 30000}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn outcomes_are_identical_at_any_job_count() {
        let cells = tiny_spec().expand();
        assert_eq!(cells.len(), 4);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.cell_id, b.cell_id);
            assert_eq!(a.metrics, b.metrics, "cell {} diverged", a.cell_id);
        }
    }

    #[test]
    fn grouped_forked_cells_match_straight_runs_exactly() {
        // The tiny spec's transient and permanent cells share a config:
        // run_cells forks them from one prefix. Their outcomes must be
        // byte-identical to running each cell from scratch.
        let cells = tiny_spec().expand();
        let grouped = run_cells(&cells, 2);
        for (cell, got) in cells.iter().zip(&grouped) {
            let straight = run_cell(cell);
            assert_eq!(got.metrics, straight.metrics, "{} diverged", cell.label);
            assert_eq!(got.owner_image, straight.owner_image, "{}", cell.label);
            assert_eq!(got.stream_progress, straight.stream_progress);
            assert_eq!(got.timeseries, straight.timeseries);
            assert_eq!(got.spans, straight.spans);
            assert_eq!(got.trace, straight.trace);
            assert_eq!(got.links, straight.links);
            assert_eq!(got.data_loss_certified, straight.data_loss_certified);
            assert_eq!(
                format!("{:?}", got.outcome),
                format!("{:?}", straight.outcome)
            );
        }
    }

    #[test]
    fn snapshot_forge_caches_and_reforks_deterministically() {
        let cells = tiny_spec().expand();
        let faulted = &cells[2]; // transient @4000
        let mut forge = SnapshotForge::new(faulted.cfg.clone(), false);
        let straight = run_cell(faulted);
        // Probe out of order (like a shrink bisection would): the floor
        // lookup + cache must still produce byte-identical outcomes.
        for at in [4000, 1000, 2500, 4000, 1000] {
            let cell = Cell {
                scenario: Scenario {
                    at,
                    ..faulted.scenario
                },
                ..faulted.clone()
            };
            let forked = run_cell_on(&cell, forge.machine_at(at));
            let rebuilt = run_cell(&cell);
            assert_eq!(forked.metrics, rebuilt.metrics, "fork@{at} diverged");
            assert_eq!(forked.owner_image, rebuilt.owner_image);
            if at == faulted.scenario.at {
                assert_eq!(forked.metrics, straight.metrics);
            }
        }
    }

    #[test]
    fn scenarios_inject_what_they_say() {
        let cells = tiny_spec().expand();
        let outcomes = run_cells(&cells, 2);
        // Baseline and fault-free ECP cells see no failures.
        assert_eq!(outcomes[0].metrics.failures, 0);
        assert_eq!(outcomes[1].metrics.failures, 0);
        // Transient and permanent scenario cells each fail once; the
        // permanent one also repairs.
        assert_eq!(outcomes[2].metrics.failures, 1);
        assert_eq!(outcomes[3].metrics.failures, 1);
        assert_eq!(outcomes[3].metrics.repairs, 1);
    }

    #[test]
    fn net_scenarios_recover_under_the_reliable_transport() {
        let spec = CampaignSpec::parse(
            r#"{
                "workloads": ["water"],
                "nodes": [4],
                "freqs": [400],
                "refs": 2000,
                "warmup": 0,
                "baseline": false,
                "scenarios": [
                    {"kind": "message_loss", "rate": 200, "at": 3000},
                    {"kind": "link_cut", "node": 0, "to_node": 1, "at": 3000}
                ]
            }"#,
        )
        .unwrap();
        let cells = spec.expand();
        let outcomes = run_cells(&cells, 2);
        for o in &outcomes {
            assert!(
                o.outcome.is_recovered(),
                "cell {}: {:?}",
                o.cell_id,
                o.outcome
            );
        }
        // Retransmissions masked the dropped packets...
        assert!(outcomes[0].metrics.net_retries > 0);
        assert!(outcomes[0].metrics.net_dropped_msgs > 0);
        // ...and traffic detoured around the cut link.
        assert!(outcomes[1].metrics.net_detour_hops > 0);
        // The two net cells share a transport-preactivated prefix; each
        // must still match its own from-scratch run byte for byte.
        for (cell, got) in cells.iter().zip(&outcomes) {
            let straight = run_cell(cell);
            assert_eq!(got.metrics, straight.metrics, "{} diverged", cell.label);
            assert_eq!(got.owner_image, straight.owner_image);
        }
    }

    #[test]
    fn continuous_cells_cycle_faults_and_stay_deterministic() {
        let spec = CampaignSpec::parse(
            r#"{
                "workloads": ["water"],
                "nodes": [8],
                "freqs": [400],
                "refs": 5000,
                "warmup": 0,
                "baseline": false,
                "scenarios": [
                    {"kind": "continuous", "at": 0, "node_mtbf": 60000, "node_mttr": 10000,
                     "link_mtbf": 80000, "link_mttr": 10000}
                ]
            }"#,
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].label.ends_with("cont@0+n60000/10000+l80000/10000"));
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 2);
        assert_eq!(serial[0].metrics, parallel[0].metrics);
        assert_eq!(serial[0].owner_image, parallel[0].owner_image);
        // The process kept failing and repairing nodes for the whole run.
        assert!(serial[0].metrics.failures >= 2, "{:?}", serial[0].metrics);
        assert!(serial[0].metrics.repairs >= 1, "{:?}", serial[0].metrics);
        if serial[0].outcome.is_recovered() {
            assert_eq!(
                serial[0].metrics.faults_survived,
                serial[0].metrics.failures
            );
        } else {
            // The only unrecovered ends left are a certified data loss or
            // a network partition; only the former counts as unsurvivable.
            let data_loss = matches!(
                serial[0].outcome,
                RecoveryOutcome::UnrecoverableDataLoss { .. }
            );
            assert_eq!(serial[0].metrics.faults_unsurvivable, u64::from(data_loss));
            if data_loss {
                assert!(serial[0].data_loss_certified);
            }
        }
    }

    #[test]
    fn nested_cells_restart_recovery_and_survive() {
        let spec = CampaignSpec::parse(
            r#"{
                "workloads": ["mp3d"],
                "nodes": [9],
                "freqs": [1000],
                "refs": 40000,
                "warmup": 0,
                "baseline": false,
                "scenarios": [
                    {"kind": "nested", "node": 2, "at": 30000, "gap": 60, "second_node": 5,
                     "permanent_mask": 1},
                    {"kind": "nested", "node": 1, "at": 30000, "gap": 40, "second_node": 3,
                     "gap2": 90, "third_node": 6, "permanent_mask": 1}
                ]
            }"#,
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 2);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 2);
        for (o, p, cell) in serial
            .iter()
            .zip(&parallel)
            .zip(&cells)
            .map(|((a, b), c)| (a, b, c))
        {
            assert_eq!(o.metrics, p.metrics, "{} diverged across jobs", cell.label);
            assert!(o.outcome.is_recovered(), "{}: {:?}", cell.label, o.outcome);
            assert!(!o.data_loss_certified, "{}", cell.label);
            // The tight gaps landed at least one fault inside an open
            // recovery window, so recovery restarted instead of halting.
            assert!(
                o.metrics.recovery_restarts >= 1,
                "{}: no restart recorded",
                cell.label
            );
            assert!(o.metrics.recovery_max_depth >= 2, "{}", cell.label);
            assert_eq!(o.metrics.faults_survived, o.metrics.failures);
        }
    }
}
