//! The parallel cell executor: a work queue drained by `std::thread`
//! workers.
//!
//! Cells are independent simulations, so the pool claims them off a shared
//! atomic counter and writes each outcome back into its slot. Nothing about
//! a cell's result depends on which worker ran it or when — seeds are fixed
//! at expansion time and the simulator is a pure function of its
//! configuration — so `--jobs 1` and `--jobs N` produce identical outcomes
//! (enforced by the `determinism` CI job and the integration tests).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ftcoma_core::RecoveryOutcome;
use ftcoma_machine::{tracelog::TraceEvent, FailureKind, FaultDist, FaultProcessConfig, Machine};
use ftcoma_mem::NodeId;
use ftcoma_net::LinkReport;

use crate::spec::{Cell, ScenarioKind};

/// Everything one cell run produced.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Id of the cell that produced this outcome.
    pub cell_id: u64,
    /// The run's aggregated metrics.
    pub metrics: ftcoma_machine::RunMetrics,
    /// Per-link interconnect breakdown (empty for bus fabrics).
    pub links: Vec<LinkReport>,
    /// Retained protocol trace (empty unless the cell's config set
    /// `trace_capacity`).
    pub trace: Vec<TraceEvent>,
    /// Structured recovery verdict: the machine's own outcome, downgraded
    /// to `InvariantViolation` if the post-run invariant sweep found
    /// problems a recovered run should not have.
    pub outcome: RecoveryOutcome,
    /// Final owner-visible memory image (`(item index, value)`, sorted) —
    /// the chaos golden-replay oracle's subject.
    pub owner_image: Vec<(u64, u64)>,
    /// Per-stream emitted-reference counts (liveness oracle input).
    pub stream_progress: Vec<u64>,
    /// Retained causal span records (empty unless the cell's config set
    /// `trace_capacity`).
    pub spans: Vec<ftcoma_sim::span::SpanRecord>,
    /// Sampled time-series rows (empty unless the cell's config set
    /// `timeseries_every`).
    pub timeseries: Vec<ftcoma_machine::TsSample>,
    /// Whether the post-run copy-accounting audit certifies a data loss:
    /// some written committed item retains zero live copies. An
    /// `unrecoverable_data_loss` outcome is only legitimate when this is
    /// set (the chaos oracle enforces it).
    pub data_loss_certified: bool,
    /// Host wall-clock time of this cell, in milliseconds. Never
    /// serialized into the report document (it lands in the `timing`
    /// sidecar), so reports stay byte-deterministic.
    pub wall_ms: f64,
}

/// Runs a single cell to completion: builds the machine, injects the
/// cell's scenario, runs, and records the structured outcome (machine
/// verdict plus a post-run invariant sweep) instead of panicking.
pub fn run_cell(cell: &Cell) -> CellOutcome {
    let start = Instant::now();
    let mut machine = Machine::new(cell.cfg.clone());
    let node = NodeId::new(cell.scenario.node);
    match cell.scenario.kind {
        ScenarioKind::None => {}
        ScenarioKind::Transient => {
            machine.schedule_failure(cell.scenario.at, node, FailureKind::Transient);
        }
        ScenarioKind::Permanent => {
            machine.schedule_failure(cell.scenario.at, node, FailureKind::Permanent);
            if let Some(repair_at) = cell.scenario.repair_at {
                machine.schedule_repair(repair_at, node);
            }
        }
        ScenarioKind::Cycle { period, count } => {
            for k in 0..u64::from(count) {
                machine.schedule_failure(
                    cell.scenario.at + k * period,
                    node,
                    FailureKind::Transient,
                );
            }
        }
        ScenarioKind::BackToBack { gap, second_node } => {
            machine.schedule_failure(cell.scenario.at, node, FailureKind::Permanent);
            machine.schedule_failure(
                cell.scenario.at + gap,
                NodeId::new(second_node),
                FailureKind::Transient,
            );
        }
        ScenarioKind::Nested {
            gap,
            second_node,
            gap2,
            third_node,
            permanent_mask,
        } => {
            let kind_of = |bit: u8| {
                if permanent_mask & bit != 0 {
                    FailureKind::Permanent
                } else {
                    FailureKind::Transient
                }
            };
            machine.schedule_failure(cell.scenario.at, node, kind_of(0b001));
            machine.schedule_failure(
                cell.scenario.at + gap,
                NodeId::new(second_node),
                kind_of(0b010),
            );
            if gap2 > 0 {
                machine.schedule_failure(
                    cell.scenario.at + gap + gap2,
                    NodeId::new(third_node),
                    kind_of(0b100),
                );
            }
        }
        ScenarioKind::LinkCut { to_node } => {
            machine.schedule_link_cut(cell.scenario.at, node, NodeId::new(to_node));
        }
        ScenarioKind::RouterDown => {
            machine.schedule_router_down(cell.scenario.at, node);
        }
        ScenarioKind::MessageLoss { rate } => {
            machine.set_message_loss(cell.scenario.at, rate);
        }
        ScenarioKind::Continuous {
            node_mtbf,
            node_mttr,
            link_mtbf,
            link_mttr,
        } => {
            machine.install_fault_process(FaultProcessConfig {
                node_mtbf,
                node_mttr,
                link_mtbf,
                link_mttr,
                dist: FaultDist::Exponential,
                start: cell.scenario.at,
            });
        }
    }
    let metrics = machine.run();
    let mut outcome = machine.outcome().clone();
    if outcome.is_recovered() {
        let problems = machine.check_invariants();
        if !problems.is_empty() {
            outcome = RecoveryOutcome::InvariantViolation {
                at: metrics.total_cycles,
                problems,
            };
        }
    }
    CellOutcome {
        cell_id: cell.id,
        metrics,
        links: machine.link_report(),
        trace: machine.trace(),
        outcome,
        owner_image: machine.owner_image(),
        stream_progress: machine.stream_progress(),
        spans: machine.spans(),
        timeseries: machine.timeseries().to_vec(),
        data_loss_certified: machine.audit_data_loss().is_some(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs every cell on a pool of `jobs` worker threads and returns the
/// outcomes in cell order (independent of completion order).
///
/// `jobs` is clamped to `1..=cells.len()`; pass
/// `std::thread::available_parallelism()` for one worker per core.
pub fn run_cells(cells: &[Cell], jobs: usize) -> Vec<CellOutcome> {
    if cells.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, cells.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellOutcome>>> =
        Mutex::new((0..cells.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let outcome = run_cell(&cells[i]);
                slots.lock().expect("result lock")[i] = Some(outcome);
            });
        }
    });
    slots
        .into_inner()
        .expect("result lock")
        .into_iter()
        .map(|s| s.expect("every cell ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"{
                "workloads": ["water"],
                "nodes": [4],
                "freqs": [400],
                "refs": 2000,
                "warmup": 0,
                "scenarios": [
                    {"kind": "none"},
                    {"kind": "transient", "node": 1, "at": 4000},
                    {"kind": "permanent", "node": 2, "at": 4000, "repair_at": 30000}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn outcomes_are_identical_at_any_job_count() {
        let cells = tiny_spec().expand();
        assert_eq!(cells.len(), 4);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.cell_id, b.cell_id);
            assert_eq!(a.metrics, b.metrics, "cell {} diverged", a.cell_id);
        }
    }

    #[test]
    fn scenarios_inject_what_they_say() {
        let cells = tiny_spec().expand();
        let outcomes = run_cells(&cells, 2);
        // Baseline and fault-free ECP cells see no failures.
        assert_eq!(outcomes[0].metrics.failures, 0);
        assert_eq!(outcomes[1].metrics.failures, 0);
        // Transient and permanent scenario cells each fail once; the
        // permanent one also repairs.
        assert_eq!(outcomes[2].metrics.failures, 1);
        assert_eq!(outcomes[3].metrics.failures, 1);
        assert_eq!(outcomes[3].metrics.repairs, 1);
    }

    #[test]
    fn net_scenarios_recover_under_the_reliable_transport() {
        let spec = CampaignSpec::parse(
            r#"{
                "workloads": ["water"],
                "nodes": [4],
                "freqs": [400],
                "refs": 2000,
                "warmup": 0,
                "baseline": false,
                "scenarios": [
                    {"kind": "message_loss", "rate": 200, "at": 3000},
                    {"kind": "link_cut", "node": 0, "to_node": 1, "at": 3000}
                ]
            }"#,
        )
        .unwrap();
        let outcomes = run_cells(&spec.expand(), 2);
        for o in &outcomes {
            assert!(
                o.outcome.is_recovered(),
                "cell {}: {:?}",
                o.cell_id,
                o.outcome
            );
        }
        // Retransmissions masked the dropped packets...
        assert!(outcomes[0].metrics.net_retries > 0);
        assert!(outcomes[0].metrics.net_dropped_msgs > 0);
        // ...and traffic detoured around the cut link.
        assert!(outcomes[1].metrics.net_detour_hops > 0);
    }

    #[test]
    fn continuous_cells_cycle_faults_and_stay_deterministic() {
        let spec = CampaignSpec::parse(
            r#"{
                "workloads": ["water"],
                "nodes": [8],
                "freqs": [400],
                "refs": 5000,
                "warmup": 0,
                "baseline": false,
                "scenarios": [
                    {"kind": "continuous", "at": 0, "node_mtbf": 60000, "node_mttr": 10000,
                     "link_mtbf": 80000, "link_mttr": 10000}
                ]
            }"#,
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].label.ends_with("cont@0+n60000/10000+l80000/10000"));
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 2);
        assert_eq!(serial[0].metrics, parallel[0].metrics);
        assert_eq!(serial[0].owner_image, parallel[0].owner_image);
        // The process kept failing and repairing nodes for the whole run.
        assert!(serial[0].metrics.failures >= 2, "{:?}", serial[0].metrics);
        assert!(serial[0].metrics.repairs >= 1, "{:?}", serial[0].metrics);
        if serial[0].outcome.is_recovered() {
            assert_eq!(
                serial[0].metrics.faults_survived,
                serial[0].metrics.failures
            );
        } else {
            // The only unrecovered ends left are a certified data loss or
            // a network partition; only the former counts as unsurvivable.
            let data_loss = matches!(
                serial[0].outcome,
                RecoveryOutcome::UnrecoverableDataLoss { .. }
            );
            assert_eq!(serial[0].metrics.faults_unsurvivable, u64::from(data_loss));
            if data_loss {
                assert!(serial[0].data_loss_certified);
            }
        }
    }

    #[test]
    fn nested_cells_restart_recovery_and_survive() {
        let spec = CampaignSpec::parse(
            r#"{
                "workloads": ["mp3d"],
                "nodes": [9],
                "freqs": [1000],
                "refs": 40000,
                "warmup": 0,
                "baseline": false,
                "scenarios": [
                    {"kind": "nested", "node": 2, "at": 30000, "gap": 60, "second_node": 5,
                     "permanent_mask": 1},
                    {"kind": "nested", "node": 1, "at": 30000, "gap": 40, "second_node": 3,
                     "gap2": 90, "third_node": 6, "permanent_mask": 1}
                ]
            }"#,
        )
        .unwrap();
        let cells = spec.expand();
        assert_eq!(cells.len(), 2);
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 2);
        for (o, p, cell) in serial
            .iter()
            .zip(&parallel)
            .zip(&cells)
            .map(|((a, b), c)| (a, b, c))
        {
            assert_eq!(o.metrics, p.metrics, "{} diverged across jobs", cell.label);
            assert!(o.outcome.is_recovered(), "{}: {:?}", cell.label, o.outcome);
            assert!(!o.data_loss_certified, "{}", cell.label);
            // The tight gaps landed at least one fault inside an open
            // recovery window, so recovery restarted instead of halting.
            assert!(
                o.metrics.recovery_restarts >= 1,
                "{}: no restart recorded",
                cell.label
            );
            assert!(o.metrics.recovery_max_depth >= 2, "{}", cell.label);
            assert_eq!(o.metrics.faults_survived, o.metrics.failures);
        }
    }
}
