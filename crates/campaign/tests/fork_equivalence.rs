//! Property test for snapshot-fork execution: a run forked from a
//! pre-injection prefix snapshot — at *any* cycle at or before the
//! injection — must produce a report byte-identical to running the same
//! cell straight from cycle 0. Scenario kinds, victims, injection cycles
//! and fork cycles are all drawn from a seeded generator, and the forks go
//! through the production [`SnapshotForge`] so its floor-lookup cache is
//! exercised with out-of-order probes. Two machine-level cases cover the
//! fork points the campaign runner never uses: mid-recovery and inside an
//! active message-loss episode.

use ftcoma_campaign::{
    needs_net, run_cell, run_cell_on, Cell, Scenario, ScenarioKind, SnapshotForge,
};
use ftcoma_core::FtConfig;
use ftcoma_machine::{FailureKind, Machine, MachineConfig};
use ftcoma_mem::NodeId;
use ftcoma_workloads::presets;

/// xorshift64*: deterministic, dependency-free draws for the property.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn pick(state: &mut u64, lo: u64, hi: u64) -> u64 {
    lo + next(state) % (hi - lo + 1)
}

const NODES: u16 = 8;

fn cfg() -> MachineConfig {
    MachineConfig {
        nodes: NODES,
        refs_per_node: 2_000,
        warmup_refs_per_node: 0,
        workload: presets::water(),
        ft: FtConfig::enabled(400.0),
        verify: true,
        seed: 0x5EED_F0CA,
        ..MachineConfig::default()
    }
}

/// One random forkable scenario. Victims stay inside the machine and
/// link cuts use a horizontally adjacent mesh pair (even, even+1), which
/// is adjacent on every row-major mesh shape for 8 nodes.
fn random_scenario(state: &mut u64) -> Scenario {
    let at = pick(state, 1_000, 6_000);
    let node = pick(state, 0, u64::from(NODES) - 1) as u16;
    let other = |state: &mut u64, avoid: u16| loop {
        let n = pick(state, 0, u64::from(NODES) - 1) as u16;
        if n != avoid {
            return n;
        }
    };
    let kind = match pick(state, 0, 7) {
        0 => ScenarioKind::Transient,
        1 => ScenarioKind::Permanent,
        2 => ScenarioKind::Cycle {
            period: pick(state, 3_000, 6_000),
            count: pick(state, 2, 3) as u32,
        },
        3 => ScenarioKind::BackToBack {
            gap: pick(state, 20, 2_000),
            second_node: other(state, node),
        },
        4 => {
            let second_node = other(state, node);
            let third_node = loop {
                let n = other(state, node);
                if n != second_node {
                    break n;
                }
            };
            let gap2 = if next(state).is_multiple_of(2) {
                0
            } else {
                pick(state, 20, 1_500)
            };
            ScenarioKind::Nested {
                gap: pick(state, 20, 1_500),
                second_node,
                gap2,
                third_node,
                permanent_mask: match pick(state, 0, if gap2 > 0 { 2 } else { 1 }) {
                    0 => 0,
                    1 => 0b001,
                    _ => 0b010,
                },
            }
        }
        5 => {
            // Remap the victim onto an even index so (node, node + 1) is a
            // horizontally adjacent mesh link.
            return Scenario {
                kind: ScenarioKind::LinkCut {
                    to_node: (node & !1) + 1,
                },
                node: node & !1,
                at,
                repair_at: None,
            };
        }
        6 => ScenarioKind::RouterDown,
        _ => ScenarioKind::MessageLoss {
            rate: pick(state, 50, 500) as u32,
        },
    };
    let repair_at = match kind {
        ScenarioKind::Permanent if next(state).is_multiple_of(2) => {
            Some(at + pick(state, 10_000, 30_000))
        }
        _ => None,
    };
    Scenario {
        kind,
        node,
        at,
        repair_at,
    }
}

fn assert_outcomes_match(
    got: &ftcoma_campaign::CellOutcome,
    want: &ftcoma_campaign::CellOutcome,
    what: &str,
) {
    assert_eq!(got.metrics, want.metrics, "{what}: metrics diverged");
    assert_eq!(
        got.owner_image, want.owner_image,
        "{what}: owner image diverged"
    );
    assert_eq!(got.stream_progress, want.stream_progress, "{what}");
    assert_eq!(got.links, want.links, "{what}");
    assert_eq!(got.trace, want.trace, "{what}");
    assert_eq!(got.spans, want.spans, "{what}");
    assert_eq!(got.timeseries, want.timeseries, "{what}");
    assert_eq!(got.data_loss_certified, want.data_loss_certified, "{what}");
    assert_eq!(
        format!("{:?}", got.outcome),
        format!("{:?}", want.outcome),
        "{what}: outcome diverged"
    );
}

#[test]
fn forked_runs_match_straight_runs_for_random_scenarios_and_fork_cycles() {
    let mut state = 0x0DDB_1A5E_D5EE_D001_u64;
    // One forge per transport band, shared across all draws: the random,
    // out-of-order fork cycles make the floor lookup + incremental prefix
    // extension do real work.
    let mut forges = [
        SnapshotForge::new(cfg(), false),
        SnapshotForge::new(cfg(), true),
    ];
    for case in 0..12 {
        let scenario = random_scenario(&mut state);
        let cell = Cell {
            id: case,
            group: 0,
            label: format!("prop/{}", scenario.label()),
            cfg: cfg(),
            scenario,
        };
        // Fork anywhere at or before the injection, not just at it.
        let fork_at = pick(&mut state, 0, scenario.at);
        let forge = &mut forges[usize::from(needs_net(&scenario.kind))];
        let forked = run_cell_on(&cell, forge.machine_at(fork_at));
        let straight = run_cell(&cell);
        assert_outcomes_match(
            &forked,
            &straight,
            &format!("{} forked@{fork_at}", cell.label),
        );
    }
}

#[test]
fn forking_mid_recovery_matches_a_straight_run() {
    // Straight: both faults scheduled before the run.
    let mut straight = Machine::new(cfg());
    straight.schedule_failure(3_000, NodeId::new(2), FailureKind::Transient);
    straight.schedule_failure(4_500, NodeId::new(5), FailureKind::Transient);
    let want = straight.run();

    // Forked: first fault runs, then the fork lands 1..600 cycles after
    // the injection — squarely inside (and just around) the recovery
    // window — and the second fault is scheduled post-fork.
    for delta in [1, 40, 150, 600] {
        let mut prefix = Machine::new(cfg());
        prefix.schedule_failure(3_000, NodeId::new(2), FailureKind::Transient);
        prefix.run_until(3_000 + delta);
        let snap = prefix.snapshot();
        let mut forked = snap.to_machine();
        forked.schedule_failure(4_500, NodeId::new(5), FailureKind::Transient);
        let got = forked.run();
        assert_eq!(got, want, "fork at +{delta} diverged");
        assert_eq!(forked.owner_image(), straight.owner_image());
        assert_eq!(forked.stream_progress(), straight.stream_progress());
        assert_eq!(
            format!("{:?}", forked.outcome()),
            format!("{:?}", straight.outcome())
        );
    }
}

#[test]
fn forking_inside_an_active_loss_episode_matches_a_straight_run() {
    // Straight: the loss episode and the node fault are both pre-scheduled.
    let mut straight = Machine::new(cfg());
    straight.set_message_loss(2_000, 150);
    straight.schedule_failure(5_000, NodeId::new(1), FailureKind::Transient);
    let want = straight.run();
    assert!(
        want.net_dropped_msgs > 0,
        "episode must actually drop packets"
    );

    // Forked: snapshot mid-episode (the drop window is thousands of
    // cycles wide), then add the node fault at the fork.
    let mut prefix = Machine::new(cfg());
    prefix.set_message_loss(2_000, 150);
    prefix.run_until(3_500);
    let mut forked = prefix.snapshot().to_machine();
    forked.schedule_failure(5_000, NodeId::new(1), FailureKind::Transient);
    let got = forked.run();
    assert_eq!(got, want);
    assert_eq!(forked.owner_image(), straight.owner_image());
    assert_eq!(forked.stream_progress(), straight.stream_progress());
}
