//! Fault-tolerance configuration.

/// Whether the Extended Coherence Protocol is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FtMode {
    /// Standard COMA-F protocol — the paper's baseline simulator. No
    /// recovery states are ever created and no checkpoints are taken.
    #[default]
    Disabled,
    /// The ECP: recovery data managed in the AMs, periodic recovery
    /// points, rollback on failure.
    Enabled,
}

impl FtMode {
    /// Is the ECP active?
    pub fn is_enabled(self) -> bool {
        self == FtMode::Enabled
    }
}

/// How the commit phase finds the copies whose state must flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitStrategy {
    /// Scan the AM ("each node scans its memory"), optionally restricted
    /// to allocated pages — the paper's implemented scheme; its cost is
    /// `T_commit`.
    #[default]
    Scan,
    /// The paper's proposed improvement: "a node recovery point counter,
    /// incremented each time a new recovery point is confirmed, and
    /// recovery point counters associated with each memory item could be
    /// used to avoid scanning the AMs during the commit phase and would
    /// nullify T_commit". State transitions resolve lazily against the
    /// counters; committing costs one counter increment.
    GenerationCounters,
}

/// Configuration of the fault-tolerance machinery.
///
/// # Example
///
/// ```
/// use ftcoma_core::FtConfig;
///
/// let cfg = FtConfig::enabled(100.0); // 100 recovery points per second
/// assert!(cfg.mode.is_enabled());
/// assert_eq!(cfg.ckpt_period_cycles(), Some(200_000)); // 20 MHz clock
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtConfig {
    /// Protocol mode.
    pub mode: FtMode,
    /// Recovery points per simulated second (ignored when disabled).
    pub ckpt_rate_hz: f64,
    /// Simulated clock frequency in hertz (20 MHz in the paper).
    pub clock_hz: f64,
    /// Create-phase optimisation: re-label an existing `Shared` replica as
    /// the second recovery copy instead of transferring the item. On by
    /// default; switchable for the ablation benches.
    pub reuse_shared_replica: bool,
    /// Commit-phase optimisation: scan only allocated pages instead of the
    /// whole AM. On by default; switchable for the ablation benches.
    /// Ignored under [`CommitStrategy::GenerationCounters`].
    pub optimized_commit_scan: bool,
    /// How the commit phase is implemented.
    pub commit_strategy: CommitStrategy,
}

impl FtConfig {
    /// Standard protocol, no fault tolerance.
    pub fn disabled() -> Self {
        Self {
            mode: FtMode::Disabled,
            ckpt_rate_hz: 0.0,
            clock_hz: 20_000_000.0,
            reuse_shared_replica: true,
            optimized_commit_scan: true,
            commit_strategy: CommitStrategy::Scan,
        }
    }

    /// ECP with the given recovery-point frequency (per simulated second).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn enabled(rate_hz: f64) -> Self {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "checkpoint rate must be positive"
        );
        Self {
            mode: FtMode::Enabled,
            ckpt_rate_hz: rate_hz,
            ..Self::disabled()
        }
    }

    /// Cycles between recovery-point establishments, if enabled.
    pub fn ckpt_period_cycles(&self) -> Option<u64> {
        match self.mode {
            FtMode::Disabled => None,
            FtMode::Enabled => Some((self.clock_hz / self.ckpt_rate_hz).round() as u64),
        }
    }
}

impl Default for FtConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_commit_strategy_is_scan() {
        assert_eq!(FtConfig::disabled().commit_strategy, CommitStrategy::Scan);
    }

    #[test]
    fn disabled_has_no_period() {
        assert_eq!(FtConfig::disabled().ckpt_period_cycles(), None);
    }

    #[test]
    fn paper_frequencies() {
        assert_eq!(FtConfig::enabled(400.0).ckpt_period_cycles(), Some(50_000));
        assert_eq!(FtConfig::enabled(5.0).ckpt_period_cycles(), Some(4_000_000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = FtConfig::enabled(0.0);
    }
}
