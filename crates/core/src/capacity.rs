//! The four-irreplaceable-pages capacity guarantee (§4.1).
//!
//! "As in traditional COMAs, an architecture using the ECP must guarantee
//! that an injected copy of a line will always find a place in the set of
//! AMs. … Four copies are necessary during the create phase. In our study,
//! four pages are statically allocated as irreplaceable pages instead of
//! one, to ensure that there is always enough memory space for
//! establishing a new recovery point."
//!
//! This module performs the corresponding admission check before a run:
//! for every AM *set*, the machine-wide frame supply must cover four
//! page-frames per distinct page mapping to that set (the create-phase
//! worst case: `Pre-Commit1` + `Pre-Commit2` + two old `Inv-CK` copies,
//! each in a different AM). Because an item's page maps to the *same* set
//! index on every node, undersized or under-associative AMs fail per-set
//! long before they fail in aggregate — which is exactly what this check
//! catches.

use ftcoma_mem::{AmGeometry, PageId};

/// Required simultaneous page copies during recovery-point establishment.
pub const COPIES_REQUIRED: u64 = 4;

/// Result of the capacity check.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityReport {
    /// Does every set satisfy the guarantee?
    pub fits: bool,
    /// Machine-wide frames available per set (`nodes × ways`).
    pub frames_per_set: u64,
    /// Worst-case demand over all sets (pages mapping there ×
    /// [`COPIES_REQUIRED`]).
    pub worst_set_demand: u64,
    /// Set index realising the worst case.
    pub worst_set: usize,
    /// Demand / supply in the worst set.
    pub worst_utilization: f64,
}

impl std::fmt::Display for CapacityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worst set {}: demand {} of {} frames ({:.0}%) — {}",
            self.worst_set,
            self.worst_set_demand,
            self.frames_per_set,
            self.worst_utilization * 100.0,
            if self.fits {
                "guarantee holds"
            } else {
                "guarantee VIOLATED"
            },
        )
    }
}

/// Checks the guarantee for a machine of `nodes` AMs of geometry `am`
/// against the distinct pages the workload uses.
///
/// `pages` is the set of pages the application can touch (shared region +
/// every node's private region); duplicates are tolerated.
pub fn check(
    am: &AmGeometry,
    nodes: u16,
    pages: impl IntoIterator<Item = PageId>,
) -> CapacityReport {
    let sets = am.sets();
    let mut per_set = vec![0u64; sets];
    let mut seen = std::collections::HashSet::new();
    for page in pages {
        if seen.insert(page) {
            per_set[(page.index() % sets as u64) as usize] += COPIES_REQUIRED;
        }
    }
    let frames_per_set = am.ways as u64 * u64::from(nodes);
    let (worst_set, &worst_set_demand) = per_set
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .unwrap_or((0, &0));
    CapacityReport {
        fits: worst_set_demand <= frames_per_set,
        frames_per_set,
        worst_set_demand,
        worst_set,
        worst_utilization: if frames_per_set == 0 {
            f64::INFINITY
        } else {
            worst_set_demand as f64 / frames_per_set as f64
        },
    }
}

/// The pages a Splash-style workload touches: the shared region plus each
/// node's private region.
pub fn workload_pages(
    shared_pages: u64,
    private_pages_per_node: u64,
    nodes: u16,
) -> impl Iterator<Item = PageId> {
    let total = shared_pages + private_pages_per_node * u64::from(nodes);
    (0..total).map(PageId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_fits_easily() {
        // 8 MB 16-way AMs, 16 nodes, Mp3d-sized working set.
        let report = check(&AmGeometry::ksr1(), 16, workload_pages(36, 3, 16));
        assert!(report.fits, "{report:?}");
        assert!(report.worst_utilization < 0.1);
    }

    #[test]
    fn under_associative_am_fails_per_set() {
        // 2 frames of 1 way each => 2 sets; 8 pages over 2 sets on 4 nodes:
        // demand 4 pages * 4 copies = 16 > 4 frames per set.
        let tiny = AmGeometry {
            capacity_bytes: 2 * 16 * 1024,
            ways: 1,
        };
        let report = check(&tiny, 4, workload_pages(8, 1, 4));
        assert!(!report.fits);
        assert!(report.worst_set_demand > report.frames_per_set);
    }

    #[test]
    fn duplicates_counted_once() {
        let pages = vec![PageId::new(3), PageId::new(3), PageId::new(3)];
        let report = check(&AmGeometry::ksr1(), 4, pages);
        assert_eq!(report.worst_set_demand, COPIES_REQUIRED);
        assert!(report.fits);
    }

    #[test]
    fn report_identifies_worst_set() {
        // Pages 0, 32, 64 all map to set 0 of a 32-set AM.
        let pages = [0u64, 32, 64, 1].map(PageId::new);
        let report = check(&AmGeometry::ksr1(), 2, pages);
        assert_eq!(report.worst_set, 0);
        assert_eq!(report.worst_set_demand, 3 * COPIES_REQUIRED);
    }
}
