//! Machine-wide protocol invariants.
//!
//! These checks formalise the guarantees the paper states for the ECP —
//! "at any time, every item has exactly either two Shared-CK copies or two
//! Inv-CK copies in two distinct memories", single ownership, coherent
//! values — and are executed by the test suite (and optionally after every
//! checkpoint) against a quiescent machine.

use ftcoma_mem::{ItemId, ItemState, NodeId};
use ftcoma_net::LogicalRing;
use ftcoma_protocol::{home_of, NodeState};
use ftcoma_sim::FxHashMap;

/// Which invariants apply right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckScope {
    /// Pre-Commit copies are legal (between create and commit).
    pub allow_precommit: bool,
    /// Home pointers must exactly match owner locations (only meaningful
    /// when no transaction is in flight).
    pub check_homes: bool,
}

impl Default for CheckScope {
    fn default() -> Self {
        Self {
            allow_precommit: false,
            check_homes: true,
        }
    }
}

/// Checks all invariants over a quiescent machine; returns the list of
/// violations (empty = consistent).
pub fn check(nodes: &[NodeState], ring: &LogicalRing, scope: CheckScope) -> Vec<String> {
    let mut problems = Vec::new();

    // Gather every copy of every item: (node, state, value, partner, gen).
    type Copy = (NodeId, ItemState, u64, Option<NodeId>, u64);
    let mut copies: FxHashMap<ItemId, Vec<Copy>> = FxHashMap::default();
    for ns in nodes {
        if !ns.alive {
            continue;
        }
        for (item, slot) in ns.am.iter_present() {
            copies.entry(item).or_default().push((
                ns.id,
                slot.state,
                slot.value,
                slot.partner,
                slot.ckpt_gen,
            ));
        }
    }

    for (item, cs) in &copies {
        let owners: Vec<_> = cs.iter().filter(|(_, st, ..)| st.is_owner()).collect();
        let currents: Vec<_> = cs.iter().filter(|(_, st, ..)| st.is_current()).collect();
        let exclusives: Vec<_> = cs
            .iter()
            .filter(|(_, st, ..)| *st == ItemState::Exclusive)
            .collect();
        let cks: Vec<_> = cs
            .iter()
            .filter(|(_, st, ..)| st.is_committed_recovery())
            .collect();
        let pres: Vec<_> = cs
            .iter()
            .filter(|(_, st, ..)| matches!(st, ItemState::PreCommit1 | ItemState::PreCommit2))
            .collect();

        if owners.len() > 1 {
            problems.push(format!(
                "{item}: {} owner copies ({owners:?})",
                owners.len()
            ));
        }
        if !currents.is_empty() && owners.is_empty() {
            problems.push(format!(
                "{item}: current copies without an owner ({currents:?})"
            ));
        }
        if exclusives.len() == 1 && currents.len() > 1 {
            problems.push(format!(
                "{item}: exclusive copy coexists with other current copies"
            ));
        }

        // Current copies must agree on the value with their owner.
        if let Some(&&(_, _, owner_value, _, _)) = owners.first() {
            for &&(node, st, value, _, _) in &currents {
                if value != owner_value {
                    problems.push(format!(
                        "{item}: {st} copy at {node} has value {value}, owner has {owner_value}"
                    ));
                }
            }
        }

        // Committed recovery copies come in pairs: one replica-1 and one
        // replica-2, same kind, same generation, same value, mutual
        // partner pointers, distinct nodes.
        match cks.len() {
            0 => {}
            2 => {
                let a = cks[0];
                let b = cks[1];
                if a.0 == b.0 {
                    problems.push(format!("{item}: both recovery copies on {}", a.0));
                }
                let idx: Vec<_> = cks.iter().map(|c| c.1.replica_index()).collect();
                if !(idx.contains(&Some(1)) && idx.contains(&Some(2))) {
                    problems.push(format!("{item}: recovery replicas not 1+2 ({:?})", idx));
                }
                let same_kind = a.1.is_readable() == b.1.is_readable();
                if !same_kind {
                    problems.push(format!(
                        "{item}: mixed Shared-CK/Inv-CK pair ({} at {}, {} at {})",
                        a.1, a.0, b.1, b.0
                    ));
                }
                if a.4 != b.4 {
                    problems.push(format!("{item}: recovery pair generations differ"));
                }
                if a.2 != b.2 {
                    problems.push(format!(
                        "{item}: recovery pair values differ ({} vs {})",
                        a.2, b.2
                    ));
                }
                if a.3 != Some(b.0) || b.3 != Some(a.0) {
                    problems.push(format!(
                        "{item}: partner pointers not mutual ({:?}/{:?} for {}/{})",
                        a.3, b.3, a.0, b.0
                    ));
                }
            }
            n => problems.push(format!("{item}: {n} committed recovery copies")),
        }

        if !scope.allow_precommit && !pres.is_empty() {
            problems.push(format!(
                "{item}: Pre-Commit copies outside establishment ({pres:?})"
            ));
        }
    }

    if scope.check_homes {
        for (item, cs) in &copies {
            let owner = cs
                .iter()
                .find(|(_, st, ..)| st.is_owner())
                .map(|&(n, ..)| n);
            if let Some(owner) = owner {
                let home = home_of(*item, ring);
                let pointer = nodes[home.index()].home.owner(*item);
                if pointer != Some(owner) {
                    problems.push(format!(
                        "{item}: home {home} points at {pointer:?}, owner is {owner}"
                    ));
                }
            }
        }
    }

    problems
}

/// Convenience: panics with a readable report if any invariant is violated.
///
/// # Panics
///
/// Panics when [`check`] returns violations.
pub fn assert_consistent(nodes: &[NodeState], ring: &LogicalRing, scope: CheckScope) {
    let problems = check(nodes, ring, scope);
    assert!(
        problems.is_empty(),
        "protocol invariants violated:\n  {}",
        problems.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn install(ns: &mut NodeState, idx: u64, st: ItemState, value: u64, partner: Option<NodeId>) {
        let item = ItemId::new(idx);
        if !ns.am.has_page(item.page()) {
            ns.am.allocate_page(item.page()).unwrap();
        }
        ns.am.install(item, st, value, partner);
    }

    fn two_nodes() -> (Vec<NodeState>, LogicalRing) {
        (
            vec![
                NodeState::ksr1(NodeId::new(0)),
                NodeState::ksr1(NodeId::new(1)),
            ],
            LogicalRing::new(2),
        )
    }

    #[test]
    fn consistent_pair_passes() {
        let (mut nodes, ring) = two_nodes();
        install(
            &mut nodes[0],
            0,
            ItemState::SharedCk1,
            5,
            Some(NodeId::new(1)),
        );
        install(
            &mut nodes[1],
            0,
            ItemState::SharedCk2,
            5,
            Some(NodeId::new(0)),
        );
        nodes[0].home.set_owner(ItemId::new(0), NodeId::new(0));
        nodes[0].dir.create(ItemId::new(0), vec![]);
        assert!(check(&nodes, &ring, CheckScope::default()).is_empty());
    }

    #[test]
    fn detects_single_recovery_copy() {
        let (mut nodes, ring) = two_nodes();
        install(&mut nodes[0], 0, ItemState::InvCk1, 5, Some(NodeId::new(1)));
        let problems = check(&nodes, &ring, CheckScope::default());
        assert!(
            problems
                .iter()
                .any(|p| p.contains("1 committed recovery copies")),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_double_owner() {
        let (mut nodes, ring) = two_nodes();
        install(&mut nodes[0], 2, ItemState::Exclusive, 1, None);
        install(&mut nodes[1], 2, ItemState::MasterShared, 1, None);
        let problems = check(
            &nodes,
            &ring,
            CheckScope {
                check_homes: false,
                ..Default::default()
            },
        );
        assert!(
            problems.iter().any(|p| p.contains("owner copies")),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_value_divergence() {
        let (mut nodes, ring) = two_nodes();
        install(&mut nodes[0], 4, ItemState::MasterShared, 7, None);
        install(&mut nodes[1], 4, ItemState::Shared, 8, None);
        nodes[0].home.set_owner(ItemId::new(4), NodeId::new(0));
        let problems = check(&nodes, &ring, CheckScope::default());
        assert!(problems.iter().any(|p| p.contains("value")), "{problems:?}");
    }

    #[test]
    fn detects_stale_home_pointer() {
        let (mut nodes, ring) = two_nodes();
        install(&mut nodes[1], 1, ItemState::Exclusive, 1, None);
        nodes[1].home.set_owner(ItemId::new(1), NodeId::new(0)); // wrong
        let problems = check(&nodes, &ring, CheckScope::default());
        assert!(problems.iter().any(|p| p.contains("home")), "{problems:?}");
    }

    #[test]
    fn precommit_allowed_only_in_scope() {
        let (mut nodes, ring) = two_nodes();
        install(
            &mut nodes[0],
            3,
            ItemState::PreCommit1,
            2,
            Some(NodeId::new(1)),
        );
        install(
            &mut nodes[1],
            3,
            ItemState::PreCommit2,
            2,
            Some(NodeId::new(0)),
        );
        nodes[1].home.set_owner(ItemId::new(3), NodeId::new(0));
        let strict = check(
            &nodes,
            &ring,
            CheckScope {
                check_homes: false,
                allow_precommit: false,
            },
        );
        assert!(!strict.is_empty());
        let relaxed = check(
            &nodes,
            &ring,
            CheckScope {
                check_homes: false,
                allow_precommit: true,
            },
        );
        assert!(relaxed.is_empty(), "{relaxed:?}");
    }

    #[test]
    fn detects_divergent_recovery_pair_values() {
        let (mut nodes, ring) = two_nodes();
        install(
            &mut nodes[0],
            0,
            ItemState::SharedCk1,
            5,
            Some(NodeId::new(1)),
        );
        install(
            &mut nodes[1],
            0,
            ItemState::SharedCk2,
            6, // diverged from its replica-1 partner
            Some(NodeId::new(0)),
        );
        let problems = check(
            &nodes,
            &ring,
            CheckScope {
                check_homes: false,
                ..Default::default()
            },
        );
        assert!(
            problems.iter().any(|p| p.contains("values differ")),
            "{problems:?}"
        );
    }

    #[test]
    fn detects_stale_partner_pointer() {
        let (mut nodes, ring) = two_nodes();
        install(
            &mut nodes[0],
            0,
            ItemState::SharedCk1,
            5,
            Some(NodeId::new(0)), // points at itself instead of its partner
        );
        install(
            &mut nodes[1],
            0,
            ItemState::SharedCk2,
            5,
            Some(NodeId::new(0)),
        );
        let problems = check(
            &nodes,
            &ring,
            CheckScope {
                check_homes: false,
                ..Default::default()
            },
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("partner pointers not mutual")),
            "{problems:?}"
        );
    }

    #[test]
    #[should_panic(expected = "invariants violated")]
    fn assert_consistent_panics_on_violation() {
        let (mut nodes, ring) = two_nodes();
        install(&mut nodes[0], 0, ItemState::InvCk1, 5, Some(NodeId::new(1)));
        assert_consistent(&nodes, &ring, CheckScope::default());
    }
}
