//! The Extended Coherence Protocol (ECP): the paper's contribution.
//!
//! This crate implements the complete coherence engine of the simulated
//! COMA-F machine in *two* modes selected by [`FtMode`]:
//!
//! * [`FtMode::Disabled`] — the standard COMA-F protocol (the paper's
//!   baseline simulator): four stable states, master copies, injections on
//!   master replacement;
//! * [`FtMode::Enabled`] — the ECP: the same protocol extended with six
//!   recovery states (`Shared-CK1/2`, `Inv-CK1/2`, `Pre-Commit1/2`), the
//!   two-phase `create`/`commit` recovery-point establishment, the rollback
//!   algorithm, and post-failure reconfiguration.
//!
//! The engine is a message-driven state machine: the full-system simulator
//! in `ftcoma-machine` delivers processor accesses and network messages to
//! [`engine::Engine`] and interprets the [`ctx::Effect`]s it emits (resume
//! the processor, record an injection, finish a checkpoint phase, …). All
//! protocol decisions use only the handling node's own state plus message
//! contents, so the engine behaves like the distributed AM controllers it
//! models.
//!
//! Module map:
//!
//! * [`config`] — fault-tolerance mode, checkpoint schedule, ablations;
//! * [`engine`] — transaction handlers (read/write misses, upgrades,
//!   invalidations, injections, page eviction) for both modes;
//! * [`ckpt`] — the `create`/`commit` two-phase establishment;
//! * [`recovery`] — rollback scans and permanent-failure reconfiguration;
//! * [`invariants`] — machine-wide consistency checks used by the test
//!   suite (exactly one owner per item, CK copies come in valid pairs, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod ckpt;
pub mod config;
pub mod ctx;
pub mod engine;
pub mod invariants;
pub mod recovery;

pub use config::{CommitStrategy, FtConfig, FtMode};
pub use ctx::{Ctx, Effect};
pub use engine::{AccessOutcome, AccessReq, Engine, HitSource};
pub use recovery::RecoveryOutcome;
