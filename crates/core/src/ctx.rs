//! Handler context: how the engine talks back to the simulator.

use ftcoma_mem::ItemId;
use ftcoma_net::LogicalRing;
use ftcoma_protocol::msg::{InjectCause, Msg, Outgoing};
use ftcoma_sim::Cycles;

use ftcoma_mem::NodeId;

/// Machine-visible side effects of a protocol handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// The node's stalled processor access completed; resume the processor
    /// `latency` cycles from now.
    Resume {
        /// Cycles until the processor may continue.
        latency: Cycles,
    },
    /// The node finished its create phase (all modified items replicated).
    CreateDone,
    /// The node finished re-replicating recovery copies orphaned by a
    /// permanent failure.
    ReconfigDone,
    /// A runtime injection started at this node (statistics for Table 1
    /// and Figs. 6 / 11).
    InjectionStarted {
        /// Why the injection happened.
        cause: InjectCause,
    },
    /// Recovery data physically transferred (create phase / reconfiguration
    /// replication traffic, for the throughput figures).
    ReplicationBytes {
        /// Bytes moved.
        bytes: u64,
    },
    /// One modified item was secured during the create phase.
    ItemCheckpointed {
        /// `true` when an existing `Shared` replica was re-labelled instead
        /// of transferring the item (the paper's create-phase optimisation).
        reused_existing: bool,
    },
    /// The injection ring walk failed to find space — the
    /// four-irreplaceable-pages capacity guarantee was violated by the
    /// configuration. The machine treats this as a fatal setup error.
    FatalNoSpace {
        /// Item that could not be placed.
        item: ItemId,
    },
}

/// Per-invocation context handed to every engine handler.
///
/// Handlers read the ring and the current time, and push outgoing messages
/// and effects; the machine drains both after the handler returns.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Logical ring (injection walks, liveness, home migration).
    pub ring: &'a LogicalRing,
    /// Current simulation time.
    pub now: Cycles,
    out: Vec<Outgoing>,
    effects: Vec<Effect>,
}

impl<'a> Ctx<'a> {
    /// Creates a context for one handler invocation.
    pub fn new(ring: &'a LogicalRing, now: Cycles) -> Self {
        Self {
            ring,
            now,
            out: Vec::new(),
            effects: Vec::new(),
        }
    }

    /// Queues `msg` for `to`, leaving the node immediately.
    pub fn send(&mut self, to: NodeId, msg: Msg) {
        self.out.push(Outgoing::now(to, msg));
    }

    /// Queues `msg` for `to` after `delay` local processing cycles.
    pub fn send_after(&mut self, to: NodeId, msg: Msg, delay: Cycles) {
        self.out.push(Outgoing::after(to, msg, delay));
    }

    /// Records a machine-visible effect.
    pub fn effect(&mut self, e: Effect) {
        self.effects.push(e);
    }

    /// Drains the queued messages and effects.
    pub fn finish(self) -> (Vec<Outgoing>, Vec<Effect>) {
        (self.out, self.effects)
    }

    /// Messages queued so far (test helper).
    pub fn queued_messages(&self) -> &[Outgoing] {
        &self.out
    }

    /// Effects recorded so far (test helper).
    pub fn queued_effects(&self) -> &[Effect] {
        &self.effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_messages_and_effects() {
        let ring = LogicalRing::new(2);
        let mut ctx = Ctx::new(&ring, 5);
        ctx.send(
            NodeId::new(1),
            Msg::TxnDone {
                item: ItemId::new(3),
            },
        );
        ctx.send_after(
            NodeId::new(0),
            Msg::InvalAck {
                item: ItemId::new(3),
            },
            7,
        );
        ctx.effect(Effect::Resume { latency: 18 });
        assert_eq!(ctx.queued_messages().len(), 2);
        assert_eq!(ctx.queued_effects().len(), 1);
        let (out, eff) = ctx.finish();
        assert_eq!(out[1].delay, 7);
        assert_eq!(eff[0], Effect::Resume { latency: 18 });
    }
}
