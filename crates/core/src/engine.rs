//! The coherence engine: every protocol transaction of both modes.
//!
//! The engine is invoked by the machine for two kinds of stimuli:
//!
//! * [`Engine::access`] — the local processor issues a load or store;
//! * [`Engine::handle`] — a coherence message arrives from the network.
//!
//! Handlers mutate only the handling node's [`NodeState`] (plus the
//! engine's per-node transaction bookkeeping) and communicate through
//! messages and [`Effect`]s, exactly like the distributed AM controllers
//! they model.
//!
//! ## Serialization discipline
//!
//! Transactions for an item are serialized at the item's *home* via the
//! busy bit in [`ftcoma_protocol::HomeTable`]. Every runtime injection of a
//! copy that must not be lost (masters and all CK states) also acquires the
//! home lock, so a recovery copy can never move concurrently with a write
//! transaction that must convert it — this is what keeps the
//! `Shared-CK → Inv-CK` transitions and the partner pointers race-free.
//! Checkpoint-establishment and reconfiguration replications run while the
//! processors are stalled and need no locks.

use std::collections::VecDeque;

use ftcoma_mem::addr::ITEM_BYTES;
use ftcoma_mem::{Addr, ItemId, ItemState, NodeId, PageId};
use ftcoma_protocol::home::QueuedReq;
use ftcoma_protocol::msg::{InjectCause, ItemPayload, Msg};
use ftcoma_protocol::{home_of, MemTiming, NodeState};
use ftcoma_sim::{Cycles, FxHashMap};

use crate::config::FtConfig;
use crate::ctx::{Ctx, Effect};

/// A processor memory access presented to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReq {
    /// Byte address accessed.
    pub addr: Addr,
    /// Store (`true`) or load.
    pub is_write: bool,
    /// Version value the store writes (ignored for loads).
    pub write_value: u64,
}

/// What served a locally completed access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitSource {
    /// Served by the processor cache.
    Cache,
    /// Served by the local AM (current copy).
    LocalAm,
    /// Served by a local `Shared-CK` recovery copy — the ECP lets
    /// processors keep reading unmodified recovery data (the paper reports
    /// up to 33 % of Barnes' reads being served this way).
    LocalAmCk,
}

/// Result of presenting an access to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completed locally after `latency` cycles.
    Complete {
        /// Total access latency in cycles.
        latency: Cycles,
        /// What served it.
        source: HitSource,
    },
    /// A coherence transaction was started; the machine must stall the
    /// processor until a [`Effect::Resume`] is emitted.
    Stalled,
}

/// What to do once an injection completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterInject {
    /// Re-issue the stalled processor access as a plain miss.
    Miss,
    /// Continue the page-eviction task.
    ContinueEvict,
    /// Continue the create-phase replication queue.
    CreateNext,
    /// Continue the reconfiguration replication queue.
    ReconfigNext,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the stages are all waits, by design
enum InjStage {
    /// Waiting for the home's serialization lock.
    WaitLock,
    /// Ring walk in progress, waiting for an acceptor.
    WaitAccept,
    /// Data sent, waiting for the acceptor's acknowledgement.
    WaitDone,
    /// Waiting for the sibling recovery copy to acknowledge the partner
    /// pointer update.
    WaitPartnerAck,
}

#[derive(Debug, Clone)]
struct InjectionTask {
    cause: InjectCause,
    then: AfterInject,
    stage: InjStage,
    host: Option<NodeId>,
    /// State the copy had when it left this node (set at `InjectDone`;
    /// needed to decide how the home lock is released after the partner
    /// pointer settles).
    moved_state: Option<ItemState>,
}

#[derive(Debug, Clone)]
struct WriteCollect {
    /// Invalidation acks still unknown until the data reply arrives.
    needed: Option<u32>,
    got: u32,
    /// Value carried by the ownership transfer (`None` for in-place
    /// upgrades, which keep the local value).
    data_value: Option<u64>,
    upgrade_in_place: bool,
}

#[derive(Debug, Clone)]
struct PendingAccess {
    item: ItemId,
    addr: Addr,
    is_write: bool,
    write_value: u64,
}

#[derive(Debug, Clone)]
struct EvictTask {
    victim: PageId,
    to_inject: VecDeque<ItemId>,
    then_alloc: PageId,
}

#[derive(Debug, Clone)]
struct CreateTask {
    gen: u64,
    queue: VecDeque<ItemId>,
    /// Cache write-back cycles accumulated up-front, charged as extra
    /// delay on the first replication message.
    pending_delay: Cycles,
    /// Replications whose data is still in flight. The AM controller
    /// pipelines them: the next item's victim search starts as soon as the
    /// previous item's data has left ("a line is ready to be injected as
    /// soon as the previous injection is done").
    outstanding: u32,
    /// `PreCommitMark` answers still pending.
    marks_outstanding: u32,
}

#[derive(Debug, Clone)]
struct ReconfigTask {
    queue: VecDeque<ItemId>,
}

/// Per-node transaction bookkeeping (the node's transient-state memory).
#[derive(Debug, Clone, Default)]
struct NodeEngine {
    pending: Option<PendingAccess>,
    /// The pending access targets a slot reserved for an in-flight
    /// injection; it re-dispatches when the copy installs.
    wait_install: bool,
    write_collect: FxHashMap<ItemId, WriteCollect>,
    injections: FxHashMap<ItemId, InjectionTask>,
    evict: Option<EvictTask>,
    create: Option<CreateTask>,
    reconfig: Option<ReconfigTask>,
}

impl NodeEngine {
    fn is_idle(&self) -> bool {
        self.pending.is_none()
            && self.write_collect.is_empty()
            && self.injections.is_empty()
            && self.evict.is_none()
            && self.create.is_none()
            && self.reconfig.is_none()
    }

    fn reset(&mut self) {
        *self = NodeEngine::default();
    }
}

/// The coherence engine for the whole machine (one logical instance per
/// node; kept together for simulation convenience — handlers only ever
/// touch the state of the node they run on).
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: FtConfig,
    timing: MemTiming,
    per_node: Vec<NodeEngine>,
}

impl Engine {
    /// Creates an engine for `nodes` nodes.
    pub fn new(cfg: FtConfig, timing: MemTiming, nodes: usize) -> Self {
        timing.validate();
        Self {
            cfg,
            timing,
            per_node: (0..nodes).map(|_| NodeEngine::default()).collect(),
        }
    }

    /// The fault-tolerance configuration.
    pub fn config(&self) -> &FtConfig {
        &self.cfg
    }

    /// The memory-timing parameters.
    pub fn timing(&self) -> &MemTiming {
        &self.timing
    }

    /// Is node `n` free of in-flight transactions?
    pub fn node_idle(&self, n: NodeId) -> bool {
        self.per_node[n.index()].is_idle()
    }

    /// Has node `n` a stalled processor access in flight?
    pub fn node_has_pending_access(&self, n: NodeId) -> bool {
        self.per_node[n.index()].pending.is_some()
    }

    /// Drops all transient transaction state of node `n` (rollback).
    pub fn reset_node(&mut self, n: NodeId) {
        self.per_node[n.index()].reset();
    }

    /// Presents a processor access to node `ns.id`.
    pub fn access(&mut self, ns: &mut NodeState, req: AccessReq, ctx: &mut Ctx) -> AccessOutcome {
        let eng = &mut self.per_node[ns.id.index()];
        access_impl(eng, ns, &self.timing, req, ctx)
    }

    /// Delivers a coherence message to node `ns.id`.
    pub fn handle(&mut self, ns: &mut NodeState, msg: Msg, ctx: &mut Ctx) {
        let eng = &mut self.per_node[ns.id.index()];
        handle_impl(eng, ns, &self.timing, &self.cfg, msg, ctx);
    }

    /// Starts the create phase of recovery point `gen` on node `ns.id`.
    /// Emits [`Effect::CreateDone`] when all modified items are secured.
    pub fn begin_create(&mut self, ns: &mut NodeState, gen: u64, ctx: &mut Ctx) {
        let eng = &mut self.per_node[ns.id.index()];
        debug_assert!(eng.is_idle(), "create phase must start quiescent");
        let queue: VecDeque<ItemId> = ns
            .am
            .items_where(|s| s.state.is_modified_since_ckpt())
            .into();
        // Flush dirty cache lines of the items about to be checkpointed so
        // the AM holds the current data ("cached modified data, flushed to
        // memory when a recovery point is established, remain in the cache").
        let mut flushed = 0u64;
        for &item in &queue {
            flushed += u64::from(ns.cache.flush_item(item));
        }
        eng.create = Some(CreateTask {
            gen,
            queue,
            pending_delay: flushed * self.timing.writeback,
            outstanding: 0,
            marks_outstanding: 0,
        });
        create_next(eng, ns, &self.timing, &self.cfg, ctx);
    }

    /// Starts post-failure reconfiguration on node `ns.id`: re-replicates
    /// the recovery copies in `orphans` (whose partners died). Emits
    /// [`Effect::ReconfigDone`] when finished.
    pub fn begin_reconfig(&mut self, ns: &mut NodeState, orphans: Vec<ItemId>, ctx: &mut Ctx) {
        let eng = &mut self.per_node[ns.id.index()];
        debug_assert!(eng.is_idle(), "reconfiguration must start quiescent");
        eng.reconfig = Some(ReconfigTask {
            queue: orphans.into(),
        });
        reconfig_next(eng, ns, &self.timing, ctx);
    }
}

// ---------------------------------------------------------------------------
// Processor accesses
// ---------------------------------------------------------------------------

fn access_impl(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    req: AccessReq,
    ctx: &mut Ctx,
) -> AccessOutcome {
    debug_assert!(eng.pending.is_none(), "processor issued while stalled");
    let item = req.addr.item();
    let line = req.addr.line();

    // A copy of this very item is in flight towards a reserved local slot
    // (an accepted injection): wait for it to install, then re-dispatch —
    // racing the injection would corrupt the incoming recovery copy.
    if ns.reserved.contains(&item) {
        eng.pending = Some(PendingAccess {
            item,
            addr: req.addr,
            is_write: req.is_write,
            write_value: req.write_value,
        });
        eng.wait_install = true;
        return AccessOutcome::Stalled;
    }

    // Loads served by the cache.
    if !req.is_write && ns.cache.probe(line) {
        return AccessOutcome::Complete {
            latency: t.cache_hit,
            source: HitSource::Cache,
        };
    }

    let st = ns.am.state(item);

    if req.is_write && st == ItemState::Exclusive {
        // Writable in place.
        ns.am.slot_mut(item).expect("exclusive copy present").value = req.write_value;
        ns.am.touch(item.page());
        if ns.cache.probe(line) {
            ns.cache.mark_dirty(line);
            return AccessOutcome::Complete {
                latency: t.cache_hit,
                source: HitSource::Cache,
            };
        }
        let fill = ns.cache.fill(line, true);
        let latency = t.local_am + Cycles::from(fill.writebacks) * t.writeback;
        return AccessOutcome::Complete {
            latency,
            source: HitSource::LocalAm,
        };
    }

    if !req.is_write && st.is_readable() {
        // Cache miss served by the local AM (including Shared-CK recovery
        // copies: the ECP keeps unmodified recovery data readable).
        ns.am.touch(item.page());
        let fill = ns.cache.fill(line, false);
        let latency = t.local_am + Cycles::from(fill.writebacks) * t.writeback;
        let source = if matches!(st, ItemState::SharedCk1 | ItemState::SharedCk2) {
            HitSource::LocalAmCk
        } else {
            HitSource::LocalAm
        };
        return AccessOutcome::Complete { latency, source };
    }

    // Anything further is a coherence transaction.
    eng.pending = Some(PendingAccess {
        item,
        addr: req.addr,
        is_write: req.is_write,
        write_value: req.write_value,
    });

    match st {
        // Recovery copies block the slot: inject them first (Table 1).
        ItemState::InvCk1 | ItemState::InvCk2 => {
            let cause = if req.is_write {
                InjectCause::WriteOnInvCk
            } else {
                InjectCause::ReadOnInvCk
            };
            start_injection(eng, ns, item, cause, AfterInject::Miss, ctx);
            AccessOutcome::Stalled
        }
        ItemState::SharedCk1 | ItemState::SharedCk2 if req.is_write => {
            start_injection(
                eng,
                ns,
                item,
                InjectCause::WriteOnSharedCk,
                AfterInject::Miss,
                ctx,
            );
            AccessOutcome::Stalled
        }
        // Upgrade: we hold a readable copy but need exclusivity.
        ItemState::Shared | ItemState::MasterShared => {
            debug_assert!(req.is_write);
            ns.pending_fill.insert(item);
            ctx.send_after(
                home_of(item, ctx.ring),
                Msg::WriteReq {
                    item,
                    requester: ns.id,
                },
                t.miss_detect,
            );
            AccessOutcome::Stalled
        }
        ItemState::Invalid => {
            ensure_page_then_miss(eng, ns, t, ctx);
            AccessOutcome::Stalled
        }
        other => unreachable!("access fell through with state {other}"),
    }
}

/// Allocates the pending access's page (evicting if necessary), then issues
/// the miss to the home.
fn ensure_page_then_miss(eng: &mut NodeEngine, ns: &mut NodeState, t: &MemTiming, ctx: &mut Ctx) {
    let pending = eng
        .pending
        .as_ref()
        .expect("miss path requires a pending access");
    let page = pending.item.page();
    if ns.am.has_page(page) {
        issue_miss(eng, ns, t.miss_detect, ctx);
        return;
    }
    match ns.am.allocate_page(page) {
        Ok(_) => issue_miss(eng, ns, t.miss_detect, ctx),
        Err(_) => {
            // Pick the least-recently-used evictable page in the set.
            let victim = ns
                .am
                .eviction_candidates(page)
                .into_iter()
                .find(|&p| ns.can_evict_page(p));
            match victim {
                Some(victim) => start_evict(eng, ns, t, victim, page, ctx),
                None => {
                    // Every page in the set is pinned by in-flight
                    // transfers; with sane sizing this cannot persist.
                    ctx.effect(Effect::FatalNoSpace { item: pending.item });
                }
            }
        }
    }
}

/// Sends the pending access's Read/Write request to the home node.
fn issue_miss(eng: &mut NodeEngine, ns: &mut NodeState, delay: Cycles, ctx: &mut Ctx) {
    let pending = eng
        .pending
        .as_ref()
        .expect("issue_miss without pending access");
    let item = pending.item;
    if ns.reserved.contains(&item) {
        // An injected copy of this item is arriving; re-dispatch once it
        // lands instead of racing it.
        eng.wait_install = true;
        return;
    }
    debug_assert!(ns.am.has_page(item.page()), "miss issued without its page");
    ns.pending_fill.insert(item);
    ns.am.touch(item.page());
    let home = home_of(item, ctx.ring);
    let msg = if pending.is_write {
        Msg::WriteReq {
            item,
            requester: ns.id,
        }
    } else {
        Msg::ReadReq {
            item,
            requester: ns.id,
        }
    };
    ctx.send_after(home, msg, delay);
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

fn handle_impl(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    cfg: &FtConfig,
    msg: Msg,
    ctx: &mut Ctx,
) {
    match msg {
        // ---- home side ----
        Msg::ReadReq { item, requester } => {
            if ns.home.try_acquire(item) {
                home_dispatch_read(eng, ns, t, item, requester, ctx);
            } else {
                ns.home.enqueue(item, QueuedReq::Read(requester));
            }
        }
        Msg::WriteReq { item, requester } => {
            if ns.home.try_acquire(item) {
                home_dispatch_write(eng, ns, t, item, requester, ctx);
            } else {
                ns.home.enqueue(item, QueuedReq::Write(requester));
            }
        }
        Msg::InjectLock { item, origin } => {
            if ns.home.try_acquire(item) {
                ctx.send(origin, Msg::InjectLockGrant { item });
            } else {
                ns.home.enqueue(item, QueuedReq::InjectLock(origin));
            }
        }
        Msg::TxnDone { item } | Msg::InjectLockRelease { item } => {
            home_release(eng, ns, t, item, ctx);
        }
        Msg::OwnerUpdate { item, new_owner } => {
            ns.home.set_owner(item, new_owner);
            home_release(eng, ns, t, item, ctx);
        }

        // ---- owner side ----
        Msg::ReadFwd { item, requester } => owner_read_fwd(eng, ns, t, item, requester, ctx),
        Msg::WriteFwd { item, requester } => owner_write_fwd(eng, ns, t, item, requester, ctx),

        // ---- requester side ----
        Msg::DataShared { item, value } => {
            finalize_read(eng, ns, t, item, value, ItemState::Shared, ctx);
        }
        Msg::DataExclusive {
            item,
            value,
            acks_expected,
        } => {
            let entry = eng.write_collect.entry(item).or_insert(WriteCollect {
                needed: None,
                got: 0,
                data_value: None,
                upgrade_in_place: false,
            });
            entry.needed = Some(acks_expected);
            entry.data_value = Some(value);
            try_finalize_write(eng, ns, t, item, ctx);
        }
        Msg::InvalAck { item } => {
            let entry = eng.write_collect.entry(item).or_insert(WriteCollect {
                needed: None,
                got: 0,
                data_value: None,
                upgrade_in_place: false,
            });
            entry.got += 1;
            try_finalize_write(eng, ns, t, item, ctx);
        }
        Msg::InitGrant { item, state } => {
            if state == ItemState::Exclusive {
                let pending = eng.pending.as_ref().expect("grant without pending");
                debug_assert!(pending.is_write);
                let value = pending.write_value;
                finalize_first_touch(eng, ns, t, item, state, value, ctx);
            } else {
                finalize_first_touch(eng, ns, t, item, state, 0, ctx);
            }
        }

        // ---- sharer side ----
        Msg::Inval { item, ack_to } => {
            if ns.am.state(item) == ItemState::Shared {
                ns.cache.invalidate_item(item);
                ns.am.clear_slot(item);
            }
            ctx.send(ack_to, Msg::InvalAck { item });
        }
        Msg::InvalCk { item, ack_to } => {
            let st = ns.am.state(item);
            debug_assert!(
                st == ItemState::SharedCk2 || st == ItemState::Invalid,
                "InvalCk on {st}"
            );
            if st == ItemState::SharedCk2 {
                ns.cache.invalidate_item(item);
                ns.am.set_state(item, ItemState::InvCk2);
            }
            ctx.send(ack_to, Msg::InvalAck { item });
        }

        // ---- injection ring ----
        Msg::InjectLockGrant { item } => on_inject_lock_grant(eng, ns, t, item, ctx),
        Msg::InjectReq {
            item,
            origin,
            state,
            cause,
            hops,
        } => {
            on_inject_req(ns, t, item, origin, state, cause, hops, ctx);
        }
        Msg::InjectAccept { item, host, cause } => {
            on_inject_accept(eng, ns, t, cfg, item, host, cause, ctx);
        }
        Msg::InjectData {
            item,
            origin,
            payload,
            cause,
        } => {
            on_inject_data(eng, ns, t, item, origin, payload, cause, ctx);
        }
        Msg::InjectDone {
            item,
            host,
            cause: _,
        } => on_inject_done(eng, ns, t, cfg, item, host, ctx),
        Msg::PartnerUpdate {
            item,
            new_partner,
            ckpt_gen,
            reply_to,
        } => {
            if let Some(slot) = ns.am.slot_mut(item) {
                if slot.state.is_ck() && slot.ckpt_gen == ckpt_gen {
                    slot.partner = Some(new_partner);
                }
            }
            ctx.send(reply_to, Msg::PartnerUpdateAck { item });
        }
        Msg::PartnerUpdateAck { item } => {
            let task = eng
                .injections
                .get(&item)
                .expect("partner ack without injection task");
            debug_assert_eq!(task.stage, InjStage::WaitPartnerAck);
            let moved = task
                .moved_state
                .expect("moved state recorded at InjectDone");
            finish_move_with(eng, ns, t, item, moved, ctx);
        }

        // ---- create phase ----
        Msg::PreCommitMark {
            item,
            origin,
            ckpt_gen,
        } => {
            let accepted = ns.am.state(item) == ItemState::Shared;
            if accepted {
                let slot = ns.am.slot_mut(item).expect("shared copy present");
                slot.state = ItemState::PreCommit2;
                slot.partner = Some(origin);
                slot.ckpt_gen = ckpt_gen;
            }
            ctx.send(origin, Msg::PreCommitMarkAck { item, accepted });
        }
        Msg::PreCommitMarkAck { item, accepted } => {
            let task = eng.create.as_mut().expect("mark ack outside create phase");
            task.marks_outstanding -= 1;
            if accepted {
                let gen = task.gen;
                let slot = ns.am.slot_mut(item).expect("pre-commit1 copy present");
                debug_assert_eq!(slot.state, ItemState::PreCommit1);
                debug_assert_eq!(slot.ckpt_gen, gen);
                ctx.effect(Effect::ItemCheckpointed {
                    reused_existing: true,
                });
                create_next(eng, ns, t, cfg, ctx);
            } else {
                // The shared copy vanished in the meantime: fall back to a
                // physical replication of this item.
                eng.create.as_mut().expect("still present").outstanding += 1;
                start_replication_walk(eng, ns, item, ItemState::PreCommit2, 0, ctx);
                create_next(eng, ns, t, cfg, ctx);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Home-side logic
// ---------------------------------------------------------------------------

fn home_dispatch_read(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    requester: NodeId,
    ctx: &mut Ctx,
) {
    match ns.home.owner(item) {
        None => {
            // First touch machine-wide: grant a fresh master copy.
            ns.home.set_owner(item, requester);
            ctx.send(
                requester,
                Msg::InitGrant {
                    item,
                    state: ItemState::MasterShared,
                },
            );
        }
        Some(o) if o == ns.id => owner_read_fwd(eng, ns, t, item, requester, ctx),
        Some(o) => ctx.send(o, Msg::ReadFwd { item, requester }),
    }
}

fn home_dispatch_write(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    requester: NodeId,
    ctx: &mut Ctx,
) {
    match ns.home.owner(item) {
        None => {
            ns.home.set_owner(item, requester);
            ctx.send(
                requester,
                Msg::InitGrant {
                    item,
                    state: ItemState::Exclusive,
                },
            );
        }
        Some(o) if o == ns.id => owner_write_fwd(eng, ns, t, item, requester, ctx),
        Some(o) => ctx.send(o, Msg::WriteFwd { item, requester }),
    }
}

fn home_release(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    ctx: &mut Ctx,
) {
    match ns.home.release(item) {
        None => {}
        Some(QueuedReq::Read(r)) => home_dispatch_read(eng, ns, t, item, r, ctx),
        Some(QueuedReq::Write(r)) => home_dispatch_write(eng, ns, t, item, r, ctx),
        Some(QueuedReq::InjectLock(o)) => ctx.send(o, Msg::InjectLockGrant { item }),
    }
}

// ---------------------------------------------------------------------------
// Owner-side logic
// ---------------------------------------------------------------------------

fn owner_read_fwd(
    _eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    requester: NodeId,
    ctx: &mut Ctx,
) {
    let st = ns.am.state(item);
    if cfg!(debug_assertions) && (requester == ns.id || !st.is_owner()) {
        panic!(
            "bad ReadFwd at {}: item {item} state {st} requester {requester} \
             pending_fill={} reserved={} dir_owns={}",
            ns.id,
            ns.pending_fill.contains(&item),
            ns.reserved.contains(&item),
            ns.dir.owns(item),
        );
    }
    // Push any dirty cached data down into the AM before serving.
    let flushed = ns.cache.flush_item(item);
    if st == ItemState::Exclusive {
        ns.am.set_state(item, ItemState::MasterShared);
    }
    if !ns.dir.owns(item) {
        ns.dir.create(item, Vec::new());
    }
    ns.dir.add_sharer(item, requester);
    let value = ns.am.slot(item).expect("owner copy present").value;
    let delay = t.remote_am_access + Cycles::from(flushed) * t.writeback;
    ctx.send_after(requester, Msg::DataShared { item, value }, delay);
}

fn owner_write_fwd(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    requester: NodeId,
    ctx: &mut Ctx,
) {
    let st = ns.am.state(item);
    debug_assert!(st.is_owner(), "write forwarded to non-owner in state {st}");
    let flushed = ns.cache.flush_item(item);
    let value = ns.am.slot(item).expect("owner copy present").value;
    let delay = t.remote_am_access + Cycles::from(flushed) * t.writeback;

    match st {
        ItemState::Exclusive => {
            debug_assert_ne!(requester, ns.id, "write hit on own exclusive is local");
            ns.cache.invalidate_item(item);
            ns.am.clear_slot(item);
            ns.dir.drop_entry(item);
            ctx.send_after(
                requester,
                Msg::DataExclusive {
                    item,
                    value,
                    acks_expected: 0,
                },
                delay,
            );
        }
        ItemState::MasterShared => {
            let sharers = if ns.dir.owns(item) {
                ns.dir.take(item)
            } else {
                Vec::new()
            };
            let targets: Vec<NodeId> = sharers
                .into_iter()
                .filter(|&s| s != requester && ctx.ring.is_alive(s))
                .collect();
            for &s in &targets {
                ctx.send(
                    s,
                    Msg::Inval {
                        item,
                        ack_to: requester,
                    },
                );
            }
            let n = targets.len() as u32;
            if requester == ns.id {
                // In-place upgrade: keep the copy, collect the acks.
                eng.write_collect.insert(
                    item,
                    WriteCollect {
                        needed: Some(n),
                        got: 0,
                        data_value: None,
                        upgrade_in_place: true,
                    },
                );
                ns.dir.create(item, Vec::new());
                try_finalize_write(eng, ns, t, item, ctx);
            } else {
                ns.cache.invalidate_item(item);
                ns.am.clear_slot(item);
                ctx.send_after(
                    requester,
                    Msg::DataExclusive {
                        item,
                        value,
                        acks_expected: n,
                    },
                    delay,
                );
            }
        }
        ItemState::SharedCk1 => {
            // First write since the recovery point: both recovery copies
            // freeze into Inv-CK, everything else is invalidated, and the
            // requester becomes the exclusive owner (ECP core transition).
            debug_assert_ne!(requester, ns.id, "local write on Shared-CK injects first");
            let sharers = if ns.dir.owns(item) {
                ns.dir.take(item)
            } else {
                Vec::new()
            };
            let targets: Vec<NodeId> = sharers
                .into_iter()
                .filter(|&s| s != requester && ctx.ring.is_alive(s))
                .collect();
            for &s in &targets {
                ctx.send(
                    s,
                    Msg::Inval {
                        item,
                        ack_to: requester,
                    },
                );
            }
            let mut n = targets.len() as u32;
            let partner = ns
                .am
                .slot(item)
                .expect("owner copy present")
                .partner
                .expect("CK copy has partner");
            if ctx.ring.is_alive(partner) {
                ctx.send(
                    partner,
                    Msg::InvalCk {
                        item,
                        ack_to: requester,
                    },
                );
                n += 1;
            }
            ns.cache.invalidate_item(item);
            ns.am.set_state(item, ItemState::InvCk1);
            ctx.send_after(
                requester,
                Msg::DataExclusive {
                    item,
                    value,
                    acks_expected: n,
                },
                delay,
            );
        }
        other => unreachable!("write forwarded to owner in state {other}"),
    }
}

// ---------------------------------------------------------------------------
// Requester-side completion
// ---------------------------------------------------------------------------

fn finalize_read(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    value: u64,
    state: ItemState,
    ctx: &mut Ctx,
) {
    let pending = eng
        .pending
        .take()
        .expect("data reply without pending access");
    debug_assert_eq!(pending.item, item);
    debug_assert!(!pending.is_write);
    ns.pending_fill.remove(&item);
    ns.am.install(item, state, value, None);
    ns.am.touch(item.page());
    let fill = ns.cache.fill(pending.addr.line(), false);
    ctx.send(home_of(item, ctx.ring), Msg::TxnDone { item });
    let latency = t.install + Cycles::from(fill.writebacks) * t.writeback;
    ctx.effect(Effect::Resume { latency });
}

fn finalize_first_touch(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    state: ItemState,
    value: u64,
    ctx: &mut Ctx,
) {
    let pending = eng.pending.take().expect("grant without pending access");
    debug_assert_eq!(pending.item, item);
    ns.pending_fill.remove(&item);
    ns.am.install(item, state, value, None);
    ns.am.touch(item.page());
    ns.dir.create(item, Vec::new());
    let fill = ns.cache.fill(pending.addr.line(), pending.is_write);
    ctx.send(home_of(item, ctx.ring), Msg::TxnDone { item });
    let latency = t.install + Cycles::from(fill.writebacks) * t.writeback;
    ctx.effect(Effect::Resume { latency });
}

fn try_finalize_write(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    ctx: &mut Ctx,
) {
    let ready = matches!(
        eng.write_collect.get(&item),
        Some(WriteCollect { needed: Some(n), got, .. }) if got >= n
    );
    if !ready {
        return;
    }
    let collect = eng.write_collect.remove(&item).expect("checked above");
    let pending = eng
        .pending
        .take()
        .expect("write completion without pending access");
    debug_assert_eq!(pending.item, item);
    debug_assert!(pending.is_write);
    ns.pending_fill.remove(&item);

    if collect.upgrade_in_place {
        ns.am.set_state(item, ItemState::Exclusive);
        ns.am.slot_mut(item).expect("upgraded copy present").value = pending.write_value;
    } else {
        ns.am
            .install(item, ItemState::Exclusive, pending.write_value, None);
        ns.dir.create(item, Vec::new());
    }
    ns.am.touch(item.page());
    let fill = ns.cache.fill(pending.addr.line(), true);
    ctx.send(
        home_of(item, ctx.ring),
        Msg::OwnerUpdate {
            item,
            new_owner: ns.id,
        },
    );
    let latency = t.install + Cycles::from(fill.writebacks) * t.writeback;
    ctx.effect(Effect::Resume { latency });
}

// ---------------------------------------------------------------------------
// Injections (runtime moves) and replications (checkpoint/reconfig copies)
// ---------------------------------------------------------------------------

/// Starts a runtime injection (a *move*) of this node's copy of `item`.
/// All such copies are serialized through the home lock.
fn start_injection(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    item: ItemId,
    cause: InjectCause,
    then: AfterInject,
    ctx: &mut Ctx,
) {
    debug_assert!(cause.is_move());
    debug_assert!(ns.am.state(item).requires_injection());
    debug_assert!(
        !eng.injections.contains_key(&item),
        "double injection of {item}"
    );
    ctx.effect(Effect::InjectionStarted { cause });
    eng.injections.insert(
        item,
        InjectionTask {
            cause,
            then,
            stage: InjStage::WaitLock,
            host: None,
            moved_state: None,
        },
    );
    ctx.send(
        home_of(item, ctx.ring),
        Msg::InjectLock {
            item,
            origin: ns.id,
        },
    );
}

/// Starts a checkpoint/reconfiguration replication (a *copy*) of `item`.
fn start_replication_walk(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    item: ItemId,
    dest_state: ItemState,
    extra_delay: Cycles,
    ctx: &mut Ctx,
) {
    let cause = if dest_state == ItemState::PreCommit2 {
        InjectCause::CkptReplication
    } else {
        InjectCause::Reconfiguration
    };
    let then = if cause == InjectCause::CkptReplication {
        AfterInject::CreateNext
    } else {
        AfterInject::ReconfigNext
    };
    eng.injections.insert(
        item,
        InjectionTask {
            cause,
            then,
            stage: InjStage::WaitAccept,
            host: None,
            moved_state: None,
        },
    );
    let first = ctx
        .ring
        .successor(ns.id)
        .expect("replication needs another live node");
    ctx.send_after(
        first,
        Msg::InjectReq {
            item,
            origin: ns.id,
            state: dest_state,
            cause,
            hops: 0,
        },
        extra_delay,
    );
}

fn on_inject_lock_grant(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    ctx: &mut Ctx,
) {
    let task = eng
        .injections
        .get_mut(&item)
        .expect("grant without injection task");
    debug_assert_eq!(task.stage, InjStage::WaitLock);
    let st = ns.am.state(item);
    if !st.requires_injection() {
        // The copy left this node (or was invalidated) while we waited for
        // the lock; release it and continue with whatever came next.
        let then = task.then;
        eng.injections.remove(&item);
        ctx.send(home_of(item, ctx.ring), Msg::InjectLockRelease { item });
        after_injection(eng, ns, t, then, ctx);
        return;
    }
    task.stage = InjStage::WaitAccept;
    let first = ctx
        .ring
        .successor(ns.id)
        .expect("injection needs another live node");
    ctx.send(
        first,
        Msg::InjectReq {
            item,
            origin: ns.id,
            state: st,
            cause: task.cause,
            hops: 0,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn on_inject_req(
    ns: &mut NodeState,
    _t: &MemTiming,
    item: ItemId,
    origin: NodeId,
    state: ItemState,
    cause: InjectCause,
    hops: u32,
    ctx: &mut Ctx,
) {
    if origin == ns.id {
        // The walk came full circle: no AM in the machine can take the
        // copy. The capacity guarantee is violated.
        ctx.effect(Effect::FatalNoSpace { item });
        return;
    }
    let acceptance = if ns.slot_blocked(item) {
        ftcoma_mem::InjectionAccept::Reject
    } else {
        ns.am.injection_acceptance(item)
    };
    use ftcoma_mem::InjectionAccept as A;
    match acceptance {
        A::ReplaceInvalid | A::ReplaceShared | A::NewPage | A::ReplacePage(_) => {
            if let A::ReplacePage(victim) = acceptance {
                // Sacrifice a resident page holding only droppable copies.
                if ns.can_evict_page(victim) {
                    for (dropped, _) in ns.am.evict_page(victim) {
                        ns.cache.invalidate_item(dropped);
                    }
                } else {
                    // Pinned by an in-flight transfer: pass the injection on.
                    let next = ctx.ring.successor(ns.id).expect("walk on live ring");
                    ctx.send(
                        next,
                        Msg::InjectReq {
                            item,
                            origin,
                            state,
                            cause,
                            hops: hops.saturating_add(1),
                        },
                    );
                    return;
                }
            }
            if matches!(acceptance, A::NewPage | A::ReplacePage(_)) {
                ns.am
                    .allocate_page(item.page())
                    .expect("free frame checked by acceptance");
            }
            if acceptance == A::ReplaceShared {
                // Drop our plain shared copy to make room.
                ns.cache.invalidate_item(item);
                ns.am.clear_slot(item);
            }
            ns.reserved.insert(item);
            ctx.send(
                origin,
                Msg::InjectAccept {
                    item,
                    host: ns.id,
                    cause,
                },
            );
        }
        A::Reject => {
            let next = ctx.ring.successor(ns.id).expect("walk on live ring");
            ctx.send(
                next,
                Msg::InjectReq {
                    item,
                    origin,
                    state,
                    cause,
                    hops: hops.saturating_add(1),
                },
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn on_inject_accept(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    cfg: &FtConfig,
    item: ItemId,
    host: NodeId,
    cause: InjectCause,
    ctx: &mut Ctx,
) {
    let task = eng
        .injections
        .get_mut(&item)
        .expect("accept without injection task");
    debug_assert_eq!(task.stage, InjStage::WaitAccept);
    task.stage = InjStage::WaitDone;
    task.host = Some(host);

    let slot = *ns.am.slot(item).expect("injected copy still present");
    let (dest_state, partner, sharers) = if cause.is_move() {
        let sharers = if slot.state.is_owner() && ns.dir.owns(item) {
            ns.dir.take(item)
        } else {
            Vec::new()
        };
        (slot.state, slot.partner, sharers)
    } else if cause == InjectCause::CkptReplication {
        (ItemState::PreCommit2, Some(ns.id), Vec::new())
    } else {
        (ItemState::SharedCk2, Some(ns.id), Vec::new())
    };
    if !cause.is_move() {
        ctx.effect(Effect::ReplicationBytes { bytes: ITEM_BYTES });
    }
    let payload = ItemPayload {
        state: dest_state,
        value: slot.value,
        partner,
        ckpt_gen: slot.ckpt_gen,
        sharers,
    };
    ctx.send_after(
        host,
        Msg::InjectData {
            item,
            origin: ns.id,
            payload,
            cause,
        },
        t.remote_am_access,
    );
    // The AM controller can search the next victim while this item's data
    // drains to the network: pipeline the create phase.
    if cause == InjectCause::CkptReplication
        && eng.create.as_ref().is_some_and(|c| !c.queue.is_empty())
    {
        create_next(eng, ns, t, cfg, ctx);
    }
}

#[allow(clippy::too_many_arguments)]
fn on_inject_data(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    origin: NodeId,
    payload: ItemPayload,
    cause: InjectCause,
    ctx: &mut Ctx,
) {
    debug_assert!(
        ns.reserved.contains(&item),
        "inject data without reservation"
    );
    ns.reserved.remove(&item);
    ns.am
        .install(item, payload.state, payload.value, payload.partner);
    ns.am.slot_mut(item).expect("just installed").ckpt_gen = payload.ckpt_gen;
    ns.am.touch(item.page());
    if payload.state.is_owner() || !payload.sharers.is_empty() {
        ns.dir.create(item, payload.sharers);
    }
    // "The injection acknowledgment is sent 5 cycles after the reception of
    // the item" — copying into memory overlaps with the acknowledged path.
    ctx.send_after(
        origin,
        Msg::InjectDone {
            item,
            host: ns.id,
            cause,
        },
        t.inject_ack_delay,
    );

    // A local access was parked waiting for this copy to land: replay it.
    if eng.wait_install && eng.pending.as_ref().is_some_and(|p| p.item == item) {
        eng.wait_install = false;
        let pending = eng.pending.take().expect("checked above");
        let req = AccessReq {
            addr: pending.addr,
            is_write: pending.is_write,
            write_value: pending.write_value,
        };
        match access_impl(eng, ns, t, req, ctx) {
            AccessOutcome::Complete { latency, .. } => {
                ctx.effect(Effect::Resume { latency });
            }
            AccessOutcome::Stalled => {}
        }
    }
}

fn on_inject_done(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    cfg: &FtConfig,
    item: ItemId,
    host: NodeId,
    ctx: &mut Ctx,
) {
    let (cause, stage, task_host) = {
        let task = eng
            .injections
            .get(&item)
            .expect("done without injection task");
        (task.cause, task.stage, task.host)
    };
    debug_assert_eq!(stage, InjStage::WaitDone);
    debug_assert_eq!(task_host, Some(host));

    if cause.is_move() {
        let slot = *ns.am.slot(item).expect("moved copy still present");
        ns.cache.invalidate_item(item);
        ns.am.clear_slot(item);
        if slot.state.is_ck() {
            if let Some(p) = slot.partner.filter(|&p| ctx.ring.is_alive(p)) {
                let task = eng.injections.get_mut(&item).expect("still present");
                task.stage = InjStage::WaitPartnerAck;
                task.moved_state = Some(slot.state);
                ctx.send(
                    p,
                    Msg::PartnerUpdate {
                        item,
                        new_partner: host,
                        ckpt_gen: slot.ckpt_gen,
                        reply_to: ns.id,
                    },
                );
                return;
            }
        }
        finish_move_with(eng, ns, t, item, slot.state, ctx);
    } else {
        // Replication copy: remember where the new sibling lives.
        ns.am
            .slot_mut(item)
            .expect("replicated original present")
            .partner = Some(host);
        let then = {
            let task = eng.injections.remove(&item).expect("still present");
            task.then
        };
        match then {
            AfterInject::CreateNext => {
                ctx.effect(Effect::ItemCheckpointed {
                    reused_existing: false,
                });
                let task = eng
                    .create
                    .as_mut()
                    .expect("create replication without task");
                task.outstanding -= 1;
                // Keep one replication in flight (the accept hook already
                // pipelines the successor); restart the queue only when the
                // pipeline drained, and finish when nothing remains.
                if task.outstanding == 0 && task.marks_outstanding == 0 {
                    create_next(eng, ns, t, cfg, ctx);
                }
            }
            AfterInject::ReconfigNext => reconfig_next(eng, ns, t, ctx),
            _ => unreachable!("replications continue a create/reconfig task"),
        }
    }
}

fn finish_move_with(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    item: ItemId,
    moved_state: ItemState,
    ctx: &mut Ctx,
) {
    let task = eng
        .injections
        .remove(&item)
        .expect("finishing unknown injection");
    let host = task.host.expect("move completed without host");
    let home = home_of(item, ctx.ring);
    if moved_state.is_owner() {
        ctx.send(
            home,
            Msg::OwnerUpdate {
                item,
                new_owner: host,
            },
        );
    } else {
        ctx.send(home, Msg::InjectLockRelease { item });
    }
    after_injection(eng, ns, t, task.then, ctx);
}

fn after_injection(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    then: AfterInject,
    ctx: &mut Ctx,
) {
    match then {
        AfterInject::Miss => {
            // The slot is free now; proceed with the stalled access.
            ensure_page_then_miss(eng, ns, t, ctx);
        }
        AfterInject::ContinueEvict => evict_next(eng, ns, t, ctx),
        AfterInject::CreateNext | AfterInject::ReconfigNext => {
            unreachable!("replication continuations handled in on_inject_done")
        }
    }
}

// ---------------------------------------------------------------------------
// Page eviction
// ---------------------------------------------------------------------------

fn start_evict(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    t: &MemTiming,
    victim: PageId,
    then_alloc: PageId,
    ctx: &mut Ctx,
) {
    debug_assert!(eng.evict.is_none(), "one eviction at a time");
    let to_inject: VecDeque<ItemId> = victim
        .items()
        .filter(|&i| ns.am.state(i).requires_injection())
        .collect();
    eng.evict = Some(EvictTask {
        victim,
        to_inject,
        then_alloc,
    });
    evict_next(eng, ns, t, ctx);
}

fn evict_next(eng: &mut NodeEngine, ns: &mut NodeState, t: &MemTiming, ctx: &mut Ctx) {
    // Skip items whose copies left by other means while we worked; inject
    // the next one that still needs it.
    loop {
        let next = eng
            .evict
            .as_mut()
            .expect("evict continuation without task")
            .to_inject
            .pop_front();
        match next {
            Some(item) if ns.am.state(item).requires_injection() => {
                start_injection(
                    eng,
                    ns,
                    item,
                    InjectCause::Replacement,
                    AfterInject::ContinueEvict,
                    ctx,
                );
                return;
            }
            Some(_) => continue,
            None => break,
        }
    }
    // All irreplaceable copies moved: drop the page and allocate the new one.
    let task = eng.evict.take().expect("task present until here");
    for (item, _slot) in ns.am.evict_page(task.victim) {
        ns.cache.invalidate_item(item);
    }
    ns.am
        .allocate_page(task.then_alloc)
        .expect("eviction freed a frame in the right set");
    issue_miss(eng, ns, t.miss_detect, ctx);
}

// ---------------------------------------------------------------------------
// Create phase
// ---------------------------------------------------------------------------

fn create_next(
    eng: &mut NodeEngine,
    ns: &mut NodeState,
    _t: &MemTiming,
    cfg: &FtConfig,
    ctx: &mut Ctx,
) {
    let task = eng
        .create
        .as_mut()
        .expect("create continuation without task");
    let gen = task.gen;
    let delay = std::mem::take(&mut task.pending_delay);
    let item = match task.queue.pop_front() {
        Some(i) => i,
        None => {
            try_finish_create(eng, ctx);
            return;
        }
    };
    let st = ns.am.state(item);
    debug_assert!(
        st.is_modified_since_ckpt(),
        "create queue item in state {st}"
    );
    {
        let slot = ns.am.slot_mut(item).expect("modified item present");
        slot.state = ItemState::PreCommit1;
        slot.ckpt_gen = gen;
        slot.partner = None;
    }
    if st == ItemState::MasterShared && cfg.reuse_shared_replica {
        // Re-label an existing replica instead of transferring the data.
        let sharer = ns
            .dir
            .sharers(item)
            .iter()
            .copied()
            .find(|&s| ctx.ring.is_alive(s));
        if let Some(s) = sharer {
            eng.create
                .as_mut()
                .expect("still present")
                .marks_outstanding += 1;
            ns.dir.remove_sharer(item, s);
            ns.am.slot_mut(item).expect("pre-commit1 present").partner = Some(s);
            ctx.send_after(
                s,
                Msg::PreCommitMark {
                    item,
                    origin: ns.id,
                    ckpt_gen: gen,
                },
                delay,
            );
            return;
        }
    }
    eng.create.as_mut().expect("still present").outstanding += 1;
    start_replication_walk(eng, ns, item, ItemState::PreCommit2, delay, ctx);
}

/// Declares the create phase done once nothing is queued or in flight.
fn try_finish_create(eng: &mut NodeEngine, ctx: &mut Ctx) {
    let task = eng
        .create
        .as_ref()
        .expect("create continuation without task");
    if task.queue.is_empty() && task.outstanding == 0 && task.marks_outstanding == 0 {
        eng.create = None;
        ctx.effect(Effect::CreateDone);
    }
}

// ---------------------------------------------------------------------------
// Reconfiguration
// ---------------------------------------------------------------------------

fn reconfig_next(eng: &mut NodeEngine, ns: &mut NodeState, _t: &MemTiming, ctx: &mut Ctx) {
    let task = eng
        .reconfig
        .as_mut()
        .expect("reconfig continuation without task");
    let item = match task.queue.pop_front() {
        Some(i) => i,
        None => {
            eng.reconfig = None;
            ctx.effect(Effect::ReconfigDone);
            return;
        }
    };
    debug_assert!(ns.am.slot(item).is_some(), "orphan copy present");
    start_replication_walk(eng, ns, item, ItemState::SharedCk2, 0, ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_net::LogicalRing;

    fn rig4() -> (Vec<NodeState>, LogicalRing, Engine) {
        let nodes = (0..4u16).map(|i| NodeState::ksr1(NodeId::new(i))).collect();
        let ring = LogicalRing::new(4);
        let engine = Engine::new(FtConfig::enabled(100.0), MemTiming::ksr1(), 4);
        (nodes, ring, engine)
    }

    fn read(addr: u64) -> AccessReq {
        AccessReq {
            addr: Addr::new(addr),
            is_write: false,
            write_value: 0,
        }
    }

    fn write(addr: u64, v: u64) -> AccessReq {
        AccessReq {
            addr: Addr::new(addr),
            is_write: true,
            write_value: v,
        }
    }

    #[test]
    fn cold_read_sends_read_req_to_home() {
        let (mut nodes, ring, mut engine) = rig4();
        let mut ctx = Ctx::new(&ring, 0);
        let outcome = engine.access(&mut nodes[0], read(128), &mut ctx);
        assert_eq!(outcome, AccessOutcome::Stalled);
        let (out, _) = ctx.finish();
        assert_eq!(out.len(), 1);
        // Item 1 is homed on node 1; the miss-detect latency precedes it.
        assert_eq!(out[0].to, NodeId::new(1));
        assert_eq!(out[0].delay, MemTiming::ksr1().miss_detect);
        assert!(
            matches!(out[0].msg, Msg::ReadReq { requester, .. } if requester == NodeId::new(0))
        );
        // The page was allocated eagerly and the slot is fill-pending.
        assert!(nodes[0].am.has_page(ItemId::new(1).page()));
        assert!(nodes[0].pending_fill.contains(&ItemId::new(1)));
    }

    #[test]
    fn exclusive_write_is_a_local_hit() {
        let (mut nodes, ring, mut engine) = rig4();
        nodes[0].am.allocate_page(ItemId::new(0).page()).unwrap();
        nodes[0]
            .am
            .install(ItemId::new(0), ItemState::Exclusive, 1, None);
        let mut ctx = Ctx::new(&ring, 0);
        let outcome = engine.access(&mut nodes[0], write(0, 9), &mut ctx);
        assert!(matches!(outcome, AccessOutcome::Complete { .. }));
        assert_eq!(nodes[0].am.slot(ItemId::new(0)).unwrap().value, 9);
        assert!(
            ctx.queued_messages().is_empty(),
            "no coherence traffic for a hit"
        );
    }

    #[test]
    fn shared_ck_read_hit_reports_ck_source() {
        let (mut nodes, ring, mut engine) = rig4();
        nodes[1].am.allocate_page(ItemId::new(0).page()).unwrap();
        nodes[1].am.install(
            ItemId::new(0),
            ItemState::SharedCk2,
            5,
            Some(NodeId::new(2)),
        );
        let mut ctx = Ctx::new(&ring, 0);
        let outcome = engine.access(&mut nodes[1], read(0), &mut ctx);
        assert!(matches!(
            outcome,
            AccessOutcome::Complete {
                source: HitSource::LocalAmCk,
                ..
            }
        ));
    }

    #[test]
    fn access_on_reserved_slot_waits_for_install() {
        let (mut nodes, ring, mut engine) = rig4();
        let item = ItemId::new(0);
        nodes[0].am.allocate_page(item.page()).unwrap();
        nodes[0].reserved.insert(item);
        let mut ctx = Ctx::new(&ring, 0);
        assert_eq!(
            engine.access(&mut nodes[0], read(0), &mut ctx),
            AccessOutcome::Stalled
        );
        assert!(
            ctx.queued_messages().is_empty(),
            "must not race the incoming copy"
        );

        // The injected copy lands: a readable Shared-CK copy, so the parked
        // access resumes locally.
        let payload = ItemPayload {
            state: ItemState::SharedCk2,
            value: 3,
            partner: Some(NodeId::new(2)),
            ckpt_gen: 1,
            sharers: vec![],
        };
        let mut ctx = Ctx::new(&ring, 10);
        engine.handle(
            &mut nodes[0],
            Msg::InjectData {
                item,
                origin: NodeId::new(3),
                payload,
                cause: InjectCause::Replacement,
            },
            &mut ctx,
        );
        let (out, effects) = ctx.finish();
        assert!(effects.iter().any(|e| matches!(e, Effect::Resume { .. })));
        assert!(out
            .iter()
            .any(|o| matches!(o.msg, Msg::InjectDone { .. }) && o.to == NodeId::new(3)));
        assert_eq!(nodes[0].am.state(item), ItemState::SharedCk2);
    }

    #[test]
    fn inject_req_walks_past_full_nodes() {
        let (mut nodes, ring, mut engine) = rig4();
        // Node 1 holds an Exclusive copy of the item: it must refuse.
        let item = ItemId::new(0);
        nodes[1].am.allocate_page(item.page()).unwrap();
        nodes[1].am.install(item, ItemState::Exclusive, 0, None);
        let mut ctx = Ctx::new(&ring, 0);
        engine.handle(
            &mut nodes[1],
            Msg::InjectReq {
                item,
                origin: NodeId::new(0),
                state: ItemState::InvCk1,
                cause: InjectCause::ReadOnInvCk,
                hops: 0,
            },
            &mut ctx,
        );
        let (out, _) = ctx.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId::new(2), "forwarded along the ring");
        assert!(matches!(out[0].msg, Msg::InjectReq { hops: 1, .. }));
    }

    #[test]
    fn inject_req_returning_to_origin_is_fatal() {
        let (mut nodes, ring, mut engine) = rig4();
        let item = ItemId::new(0);
        let mut ctx = Ctx::new(&ring, 0);
        engine.handle(
            &mut nodes[0],
            Msg::InjectReq {
                item,
                origin: NodeId::new(0),
                state: ItemState::InvCk1,
                cause: InjectCause::ReadOnInvCk,
                hops: 3,
            },
            &mut ctx,
        );
        let (_, effects) = ctx.finish();
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::FatalNoSpace { .. })));
    }

    #[test]
    fn inject_accept_reserves_and_blocks_second_acceptance() {
        let (mut nodes, ring, mut engine) = rig4();
        let item = ItemId::new(0);
        let mk = |hops| Msg::InjectReq {
            item,
            origin: NodeId::new(3),
            state: ItemState::InvCk2,
            cause: InjectCause::WriteOnInvCk,
            hops,
        };
        let mut ctx = Ctx::new(&ring, 0);
        engine.handle(&mut nodes[1], mk(0), &mut ctx);
        let (out, _) = ctx.finish();
        assert!(matches!(out[0].msg, Msg::InjectAccept { .. }));
        assert!(nodes[1].reserved.contains(&item));

        // A second walk for the same item must be forwarded, not accepted.
        let mut ctx = Ctx::new(&ring, 1);
        engine.handle(&mut nodes[1], mk(0), &mut ctx);
        let (out, _) = ctx.finish();
        assert!(matches!(out[0].msg, Msg::InjectReq { .. }));
    }

    #[test]
    fn home_queues_second_transaction() {
        let (mut nodes, ring, mut engine) = rig4();
        let item = ItemId::new(1); // homed on node 1
        nodes[1].home.set_owner(item, NodeId::new(2));
        nodes[2].am.allocate_page(item.page()).unwrap();
        nodes[2].am.install(item, ItemState::MasterShared, 4, None);
        nodes[2].dir.create(item, Vec::new());

        let mut ctx = Ctx::new(&ring, 0);
        engine.handle(
            &mut nodes[1],
            Msg::ReadReq {
                item,
                requester: NodeId::new(0),
            },
            &mut ctx,
        );
        let (out, _) = ctx.finish();
        assert!(matches!(out[0].msg, Msg::ReadFwd { .. }));
        assert!(nodes[1].home.is_busy(item));

        let mut ctx = Ctx::new(&ring, 1);
        engine.handle(
            &mut nodes[1],
            Msg::WriteReq {
                item,
                requester: NodeId::new(3),
            },
            &mut ctx,
        );
        let (out, _) = ctx.finish();
        assert!(out.is_empty(), "second transaction must wait in the queue");

        // The first transaction's completion releases and dispatches it.
        let mut ctx = Ctx::new(&ring, 2);
        engine.handle(&mut nodes[1], Msg::TxnDone { item }, &mut ctx);
        let (out, _) = ctx.finish();
        assert_eq!(out.len(), 1);
        assert!(
            matches!(out[0].msg, Msg::WriteFwd { requester, .. } if requester == NodeId::new(3))
        );
    }

    #[test]
    fn partner_update_rewrites_matching_generation_only() {
        let (mut nodes, ring, mut engine) = rig4();
        let item = ItemId::new(0);
        nodes[2].am.allocate_page(item.page()).unwrap();
        nodes[2]
            .am
            .install(item, ItemState::SharedCk2, 5, Some(NodeId::new(0)));
        nodes[2].am.slot_mut(item).unwrap().ckpt_gen = 7;

        // A stale-generation update is ignored.
        let mut ctx = Ctx::new(&ring, 0);
        engine.handle(
            &mut nodes[2],
            Msg::PartnerUpdate {
                item,
                new_partner: NodeId::new(3),
                ckpt_gen: 6,
                reply_to: NodeId::new(0),
            },
            &mut ctx,
        );
        assert_eq!(
            nodes[2].am.slot(item).unwrap().partner,
            Some(NodeId::new(0))
        );

        // The current generation takes effect.
        let mut ctx = Ctx::new(&ring, 1);
        engine.handle(
            &mut nodes[2],
            Msg::PartnerUpdate {
                item,
                new_partner: NodeId::new(3),
                ckpt_gen: 7,
                reply_to: NodeId::new(0),
            },
            &mut ctx,
        );
        let (out, _) = ctx.finish();
        assert_eq!(
            nodes[2].am.slot(item).unwrap().partner,
            Some(NodeId::new(3))
        );
        assert!(matches!(out[0].msg, Msg::PartnerUpdateAck { .. }));
    }

    #[test]
    fn begin_create_on_clean_node_completes_immediately() {
        let (mut nodes, ring, mut engine) = rig4();
        let mut ctx = Ctx::new(&ring, 0);
        engine.begin_create(&mut nodes[0], 1, &mut ctx);
        let (out, effects) = ctx.finish();
        assert!(out.is_empty());
        assert_eq!(effects, vec![Effect::CreateDone]);
        assert!(engine.node_idle(NodeId::new(0)));
    }

    #[test]
    fn reset_node_clears_transactions() {
        let (mut nodes, ring, mut engine) = rig4();
        let mut ctx = Ctx::new(&ring, 0);
        let _ = engine.access(&mut nodes[0], read(0), &mut ctx);
        assert!(!engine.node_idle(NodeId::new(0)));
        assert!(engine.node_has_pending_access(NodeId::new(0)));
        engine.reset_node(NodeId::new(0));
        assert!(engine.node_idle(NodeId::new(0)));
    }
}
