//! Commit phase of recovery-point establishment.
//!
//! The create phase (replication of modified items) is driven by the engine
//! and the network; the *commit* phase is purely node-local: "Each node
//! scans its memory and simply sets all its *Inv-CK* copies to *Invalid*
//! and all its *Pre-Commit* copies to *Shared-CK*." Its cost model follows
//! the paper: 1 cycle to test whether a page is allocated plus 1 cycle per
//! item tested/modified, divided over the node's independent AM
//! controllers; the optimised variant scans only allocated pages.

use ftcoma_mem::addr::ITEMS_PER_PAGE;
use ftcoma_mem::ItemState;
use ftcoma_protocol::{MemTiming, NodeState};
use ftcoma_sim::Cycles;

use crate::config::{CommitStrategy, FtConfig};

/// Outcome of one node's commit scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// `Pre-Commit1` copies promoted to `Shared-CK1`.
    pub promoted_primary: u64,
    /// `Pre-Commit2` copies promoted to `Shared-CK2`.
    pub promoted_secondary: u64,
    /// Old recovery copies (`Inv-CK`) discarded.
    pub discarded_old: u64,
    /// Pages the scan visited.
    pub pages_scanned: u64,
    /// Simulated cycles the scan took on this node.
    pub duration: Cycles,
}

/// Runs the commit phase on one node: promotes the new recovery point and
/// discards the previous one. Returns the counts and the simulated duration.
///
/// This function performs the state transitions instantaneously and reports
/// the time they take; the machine keeps the node stalled for
/// [`CommitStats::duration`] cycles, which models the scan faithfully
/// because the node is unreachable during its local commit anyway.
pub fn commit_node(ns: &mut NodeState, cfg: &FtConfig, t: &MemTiming) -> CommitStats {
    let mut stats = CommitStats::default();

    let items: Vec<_> = ns.am.iter_present().map(|(i, s)| (i, s.state)).collect();
    for (item, state) in items {
        match state {
            ItemState::PreCommit1 => {
                ns.am.set_state(item, ItemState::SharedCk1);
                stats.promoted_primary += 1;
            }
            ItemState::PreCommit2 => {
                ns.am.set_state(item, ItemState::SharedCk2);
                stats.promoted_secondary += 1;
            }
            ItemState::InvCk1 | ItemState::InvCk2 => {
                ns.cache.invalidate_item(item);
                ns.am.clear_slot(item);
                stats.discarded_old += 1;
            }
            _ => {}
        }
    }

    match cfg.commit_strategy {
        CommitStrategy::Scan => {
            stats.pages_scanned = if cfg.optimized_commit_scan {
                ns.am.allocated_pages() as u64
            } else {
                // Unoptimised: the scan walks every frame of the AM.
                ns.am.geometry().frames() as u64
            };
            stats.duration = t.commit_scan(stats.pages_scanned, ITEMS_PER_PAGE);
        }
        CommitStrategy::GenerationCounters => {
            // The per-item recovery-point counters resolve the state
            // transitions lazily; confirming the recovery point is a
            // single node-counter increment. (The simulator applies the
            // transitions eagerly above — the lazily-decoded states are
            // observationally identical, so only the timing differs.)
            stats.pages_scanned = 0;
            stats.duration = t.commit_item_test;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_mem::{ItemId, NodeId, PageId};

    fn node_with_states(states: &[(u64, ItemState)]) -> NodeState {
        let mut ns = NodeState::ksr1(NodeId::new(0));
        for &(idx, st) in states {
            let item = ItemId::new(idx);
            if !ns.am.has_page(item.page()) {
                ns.am.allocate_page(item.page()).unwrap();
            }
            ns.am.install(item, st, idx, None);
        }
        ns
    }

    #[test]
    fn commit_promotes_and_discards() {
        let mut ns = node_with_states(&[
            (0, ItemState::PreCommit1),
            (1, ItemState::PreCommit2),
            (2, ItemState::InvCk1),
            (3, ItemState::InvCk2),
            (4, ItemState::Shared),
            (5, ItemState::SharedCk1),
        ]);
        let stats = commit_node(&mut ns, &FtConfig::enabled(100.0), &MemTiming::ksr1());
        assert_eq!(stats.promoted_primary, 1);
        assert_eq!(stats.promoted_secondary, 1);
        assert_eq!(stats.discarded_old, 2);
        assert_eq!(ns.am.state(ItemId::new(0)), ItemState::SharedCk1);
        assert_eq!(ns.am.state(ItemId::new(1)), ItemState::SharedCk2);
        assert_eq!(ns.am.state(ItemId::new(2)), ItemState::Invalid);
        assert_eq!(ns.am.state(ItemId::new(3)), ItemState::Invalid);
        // Untouched states survive.
        assert_eq!(ns.am.state(ItemId::new(4)), ItemState::Shared);
        assert_eq!(ns.am.state(ItemId::new(5)), ItemState::SharedCk1);
    }

    #[test]
    fn optimized_scan_charges_allocated_pages_only() {
        let mut ns = node_with_states(&[(0, ItemState::PreCommit1)]);
        let t = MemTiming::ksr1();
        let opt = commit_node(&mut ns, &FtConfig::enabled(100.0), &t);
        assert_eq!(opt.pages_scanned, 1);
        assert_eq!(opt.duration, t.commit_scan(1, ITEMS_PER_PAGE));

        let mut cfg = FtConfig::enabled(100.0);
        cfg.optimized_commit_scan = false;
        let mut ns2 = node_with_states(&[(0, ItemState::PreCommit1)]);
        let full = commit_node(&mut ns2, &cfg, &t);
        assert_eq!(full.pages_scanned, ns2.am.geometry().frames() as u64);
        assert!(full.duration > opt.duration);
    }

    #[test]
    fn generation_counters_nullify_commit_time() {
        let mut ns = node_with_states(&[(0, ItemState::PreCommit1), (1, ItemState::InvCk2)]);
        let mut cfg = FtConfig::enabled(100.0);
        cfg.commit_strategy = crate::config::CommitStrategy::GenerationCounters;
        let stats = commit_node(&mut ns, &cfg, &MemTiming::ksr1());
        assert_eq!(stats.duration, 1, "commit must cost one counter bump");
        // The transitions themselves are unchanged.
        assert_eq!(ns.am.state(ItemId::new(0)), ItemState::SharedCk1);
        assert_eq!(ns.am.state(ItemId::new(1)), ItemState::Invalid);
    }

    #[test]
    fn commit_on_empty_node_is_free() {
        let mut ns = NodeState::ksr1(NodeId::new(1));
        let stats = commit_node(&mut ns, &FtConfig::enabled(5.0), &MemTiming::ksr1());
        assert_eq!(stats.duration, 0);
        assert_eq!(stats.pages_scanned, 0);
        let _ = PageId::new(0);
    }
}
