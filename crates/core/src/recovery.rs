//! Rollback and post-failure reconfiguration.
//!
//! After a failure is detected, "each node scans its local memory and
//! invalidates all current item copies (in state Shared, Exclusive or
//! Master-Shared) as well as Pre-Commit copies. … Inv-CK copies are
//! restored to Shared-CK. … No action is required for Shared-CK copies."
//! For a *permanent* failure, "each Shared-CK copy has to check whether its
//! replica is still alive or not. If not, a new Shared-CK copy has to be
//! created on a safe node" — see [`promote_and_collect_orphans`] (the
//! paper's pointer-chasing formulation) and [`collect_singleton_orphans`]
//! (the pointer-agnostic variant the machine uses, robust to stale
//! partner pointers); either's output feeds
//! [`crate::Engine::begin_reconfig`].
//!
//! The paper does not detail how the localization pointers of a failed home
//! are rebuilt; [`rebuild_homes`] implements the natural mechanism (owners
//! re-register with the possibly-migrated home) as a
//! reproduction-completing extension (DESIGN.md §3).
//!
//! Recovery is **restartable** (DESIGN.md §6): a fault landing while a
//! previous recovery is still in flight re-enters the whole pipeline
//! against the on-node committed state instead of halting. [`audit_copies`]
//! is the per-item copy-accounting audit that decides whether a restart is
//! possible — only a written committed item with zero live copies is
//! certified unrecoverable ([`RecoveryOutcome::UnrecoverableDataLoss`]).

use ftcoma_mem::addr::ITEMS_PER_PAGE;
use ftcoma_mem::{ItemId, ItemState, NodeId};
use ftcoma_net::LogicalRing;
use ftcoma_protocol::{home_of, MemTiming, NodeState};
use ftcoma_sim::Cycles;

/// Final recovery verdict of a whole run.
///
/// The machine starts out `Recovered` (a run without failures trivially
/// satisfies the recovery contract) and degrades monotonically. Recovery
/// itself is *restartable*: a fault striking while a previous recovery is
/// still in flight abandons that recovery, folds the new victim into the
/// failure set and re-enters from the on-node committed state — the
/// paper's single-failure hypothesis (§2) is replaced by per-item copy
/// accounting. Only a *certified* loss (a written committed item with
/// zero live copies left) becomes
/// [`RecoveryOutcome::UnrecoverableDataLoss`]; a post-recovery memory
/// image that contradicts the committed recovery point becomes
/// [`RecoveryOutcome::InvariantViolation`]. Either terminal state halts
/// the machine instead of aborting the process, so harnesses can report
/// the outcome structurally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Every injected failure was recovered from (or none occurred).
    #[default]
    Recovered,
    /// The copy-accounting audit certified that a written committed item
    /// retains zero live copies: every node holding either recovery
    /// replica died before a restarted recovery could re-replicate it.
    /// No reconfiguration can reconstruct the value, so the machine
    /// halts fail-stop.
    UnrecoverableDataLoss {
        /// Simulation time of the fault that destroyed the last copy.
        at: Cycles,
        /// The lowest-numbered item certified lost.
        item: ItemId,
    },
    /// Post-recovery verification found an inconsistent memory image.
    InvariantViolation {
        /// Simulation time at which verification failed.
        at: Cycles,
        /// Human-readable violation reports.
        problems: Vec<String>,
    },
    /// Interconnect faults split the mesh: after exhausting its transport
    /// retries, the machine found both itself and its peer cut off from the
    /// majority of live nodes. No reconfiguration can restore a consistent
    /// memory image across the split, so the machine halts fail-stop.
    PartitionedNetwork {
        /// Simulation time at which the partition was diagnosed.
        at: Cycles,
        /// The node whose transport gave up.
        from: NodeId,
        /// The unreachable peer.
        to: NodeId,
    },
}

impl RecoveryOutcome {
    /// True iff the run never left the recovered state.
    pub fn is_recovered(&self) -> bool {
        matches!(self, RecoveryOutcome::Recovered)
    }

    /// Stable machine-readable tag (`recovered` /
    /// `unrecoverable_data_loss` / `invariant_violation` /
    /// `partitioned_network`).
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::UnrecoverableDataLoss { .. } => "unrecoverable_data_loss",
            RecoveryOutcome::InvariantViolation { .. } => "invariant_violation",
            RecoveryOutcome::PartitionedNetwork { .. } => "partitioned_network",
        }
    }
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryOutcome::Recovered => write!(f, "recovered"),
            RecoveryOutcome::UnrecoverableDataLoss { at, item } => {
                write!(f, "unrecoverable data loss of {item} at cycle {at}")
            }
            RecoveryOutcome::InvariantViolation { at, problems } => {
                write!(f, "invariant violation at cycle {at}:")?;
                for p in problems {
                    write!(f, "\n  {p}")?;
                }
                Ok(())
            }
            RecoveryOutcome::PartitionedNetwork { at, from, to } => {
                write!(
                    f,
                    "network partitioned at cycle {at}: {from} cannot reach {to}"
                )
            }
        }
    }
}

/// Outcome of one node's rollback scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RollbackStats {
    /// Current copies (Shared / Master-Shared / Exclusive) invalidated.
    pub current_invalidated: u64,
    /// Pre-Commit copies of an unfinished establishment invalidated.
    pub precommit_invalidated: u64,
    /// `Inv-CK` copies restored to `Shared-CK`.
    pub restored: u64,
    /// Simulated cycles the scan took.
    pub duration: Cycles,
}

/// Rolls one live node back to the last committed recovery point.
///
/// Besides the AM scan this clears the cache and every piece of protocol
/// metadata (home pointers, directory entries, reservations) — the caller
/// must rebuild the localization pointers afterwards with
/// [`rebuild_homes`].
pub fn rollback_node(ns: &mut NodeState, t: &MemTiming) -> RollbackStats {
    let mut stats = RollbackStats::default();
    ns.cache.invalidate_all();

    let items: Vec<_> = ns.am.iter_present().map(|(i, s)| (i, s.state)).collect();
    for (item, state) in items {
        match state {
            ItemState::Shared | ItemState::MasterShared | ItemState::Exclusive => {
                ns.am.clear_slot(item);
                stats.current_invalidated += 1;
            }
            ItemState::PreCommit1 | ItemState::PreCommit2 => {
                ns.am.clear_slot(item);
                stats.precommit_invalidated += 1;
            }
            ItemState::InvCk1 => {
                ns.am.set_state(item, ItemState::SharedCk1);
                stats.restored += 1;
            }
            ItemState::InvCk2 => {
                ns.am.set_state(item, ItemState::SharedCk2);
                stats.restored += 1;
            }
            ItemState::SharedCk1 | ItemState::SharedCk2 => {}
            ItemState::Invalid => unreachable!("iter_present yields present copies"),
        }
    }

    ns.home.clear();
    ns.dir.clear();
    ns.reserved.clear();
    ns.pending_fill.clear();

    stats.duration = t.commit_scan(ns.am.allocated_pages() as u64, ITEMS_PER_PAGE);
    stats
}

/// Erases a permanently failed node: its memory contents are lost and it
/// leaves the protocol.
pub fn wipe_dead_node(ns: &mut NodeState) {
    ns.alive = false;
    ns.cache.invalidate_all();
    let pages: Vec<_> = ns.am.pages().collect();
    for page in pages {
        let items: Vec<_> = page.items().collect();
        for item in items {
            if ns.am.state(item).is_present() {
                // Bypass the injection guard: the copies are *lost*, which
                // is the point of the failure model.
                if let Some(s) = ns.am.slot_mut(item) {
                    *s = Default::default();
                }
            }
        }
        ns.am.evict_page(page);
    }
    ns.home.clear();
    ns.dir.clear();
    ns.reserved.clear();
    ns.pending_fill.clear();
}

/// After all live nodes rolled back: promotes `Shared-CK2` copies whose
/// primary died to `Shared-CK1`, and returns the items on this node whose
/// recovery sibling lived on `dead` — each needs a fresh `Shared-CK2`
/// replica (fed to [`crate::Engine::begin_reconfig`]).
pub fn promote_and_collect_orphans(ns: &mut NodeState, dead: NodeId) -> Vec<ItemId> {
    let orphans: Vec<ItemId> = ns
        .am
        .items_where(|s| s.state.is_committed_recovery() && s.partner == Some(dead));
    for &item in &orphans {
        let slot = ns.am.slot_mut(item).expect("orphan present");
        debug_assert!(matches!(
            slot.state,
            ItemState::SharedCk1 | ItemState::SharedCk2
        ));
        slot.state = ItemState::SharedCk1; // survivor becomes the primary
        slot.partner = None;
    }
    orphans
}

/// After the rollback and dedup passes of a *permanent* failure: finds
/// every committed recovery copy whose sibling no longer exists on any
/// live node, promotes the survivor to `Shared-CK1` and returns the
/// orphans grouped by surviving host (in node order, each node's items in
/// its AM's deterministic iteration order).
///
/// This deliberately does **not** trust partner pointers, unlike
/// [`promote_and_collect_orphans`]: a copy that had just finished
/// migrating when the failure struck may leave its sibling's pointer
/// aimed at the *old* host (the `PartnerUpdate` message was purged with
/// the rest of the in-flight traffic), so a pointer scan misses the
/// orphan when the fault kills the new host. Counting live copies per
/// item is immune to stale pointers.
pub fn collect_singleton_orphans(nodes: &mut [NodeState]) -> Vec<(NodeId, Vec<ItemId>)> {
    use std::collections::HashMap;
    let mut copies: HashMap<ItemId, u32> = HashMap::new();
    for ns in nodes.iter() {
        if !ns.alive {
            continue;
        }
        for (item, slot) in ns.am.iter_present() {
            if slot.state.is_committed_recovery() {
                *copies.entry(item).or_default() += 1;
            }
        }
    }
    let mut by_node: Vec<(NodeId, Vec<ItemId>)> = Vec::new();
    for ns in nodes.iter_mut() {
        if !ns.alive {
            continue;
        }
        let orphans: Vec<ItemId> = ns
            .am
            .items_where(|s| s.state.is_committed_recovery())
            .into_iter()
            .filter(|item| copies.get(item) == Some(&1))
            .collect();
        for &item in &orphans {
            let slot = ns.am.slot_mut(item).expect("orphan present");
            debug_assert!(matches!(
                slot.state,
                ItemState::SharedCk1 | ItemState::SharedCk2
            ));
            slot.state = ItemState::SharedCk1; // survivor becomes the primary
            slot.partner = None;
        }
        if !orphans.is_empty() {
            by_node.push((ns.id, orphans));
        }
    }
    by_node
}

/// Per-item data-loss certification: the copy-accounting audit behind the
/// restartable-recovery model.
///
/// Counts the live committed recovery copies (`Shared-CK1/2`) of every
/// item and splits the committed set (`(item, committed value)` pairs from
/// the last committed recovery point) into:
///
/// * `lost` — *written* committed items (value ≠ 0) with **zero** live
///   copies. These are certified data loss: the value existed only in the
///   recovery pair and every host of either replica has died, so no
///   reconfiguration can reconstruct it. Sorted ascending, so `lost[0]`
///   is the deterministic representative for reporting.
/// * `droppable` — never-written committed items (value 0) with zero live
///   copies. Their content is the well-known initial value: the machine
///   recreates them on first touch (the same path that serves items
///   annihilated by a pre-first-commit rollback), so losing every copy is
///   survivable. The caller must drop them from its committed-set oracle
///   or post-recovery verification would demand copies of a recreatable
///   item.
///
/// Recovery may restart as long as `lost` is empty — this is the audit
/// that retired the paper's blanket single-failure halt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CopyAudit {
    /// Written committed items with zero live copies (certified loss).
    pub lost: Vec<ItemId>,
    /// Never-written committed items with zero live copies (recreatable).
    pub droppable: Vec<ItemId>,
}

/// Runs the copy-accounting audit of `committed` (the last committed
/// recovery point's `(item, value)` pairs) against the live nodes' memory
/// images. Pointer-agnostic like [`collect_singleton_orphans`]: only copy
/// counts matter, so stale partner pointers cannot hide a loss.
pub fn audit_copies(
    nodes: &[NodeState],
    committed: impl IntoIterator<Item = (ItemId, u64)>,
) -> CopyAudit {
    use std::collections::HashSet;
    let mut present: HashSet<ItemId> = HashSet::new();
    for ns in nodes.iter().filter(|n| n.alive) {
        for (item, slot) in ns.am.iter_present() {
            if slot.state.is_committed_recovery() {
                present.insert(item);
            }
        }
    }
    let mut audit = CopyAudit::default();
    for (item, value) in committed {
        if !present.contains(&item) {
            if value == 0 {
                audit.droppable.push(item);
            } else {
                audit.lost.push(item);
            }
        }
    }
    audit.lost.sort_unstable();
    audit.droppable.sort_unstable();
    audit
}

/// Repairs recovery pairs damaged by in-flight injections at failure time.
///
/// A recovery copy that was mid-move when the failure struck can exist
/// twice after the rollback: the origin had not yet cleared its slot while
/// the destination had already installed the copy (both hold the same
/// committed value, so either is valid). This global pass — part of the
/// stop-the-world recovery, like the scans — keeps exactly one copy per
/// replica index (highest generation, then lowest node id, for
/// determinism), drops the leftovers, and re-points the partners at each
/// other. Returns how many duplicate copies were dropped.
pub fn dedup_recovery_copies(nodes: &mut [NodeState]) -> u64 {
    use std::collections::HashMap;

    // item -> (replica index -> candidate copies as (gen, node)).
    let mut seen: HashMap<ItemId, [Vec<(u64, usize)>; 2]> = HashMap::new();
    for (idx, ns) in nodes.iter().enumerate() {
        if !ns.alive {
            continue;
        }
        for (item, slot) in ns.am.iter_present() {
            if let Some(r) = slot.state.replica_index() {
                if slot.state.is_committed_recovery() {
                    seen.entry(item).or_default()[usize::from(r) - 1].push((slot.ckpt_gen, idx));
                }
            }
        }
    }

    let mut dropped = 0;
    for (item, mut by_replica) in seen {
        let keep: Vec<Option<usize>> = by_replica
            .iter_mut()
            .map(|cands| {
                cands.sort_by_key(|&(gen, node)| (std::cmp::Reverse(gen), node));
                cands.first().map(|&(_, node)| node)
            })
            .collect();
        for (r, cands) in by_replica.iter().enumerate() {
            for &(_, node) in cands.iter().skip(1) {
                nodes[node].cache.invalidate_item(item);
                nodes[node].am.clear_slot(item);
                dropped += 1;
                let _ = r;
            }
        }
        // Re-point the surviving pair at each other.
        if let (Some(a), Some(b)) = (keep[0], keep[1]) {
            let b_id = nodes[b].id;
            let a_id = nodes[a].id;
            nodes[a]
                .am
                .slot_mut(item)
                .expect("survivor present")
                .partner = Some(b_id);
            nodes[b]
                .am
                .slot_mut(item)
                .expect("survivor present")
                .partner = Some(a_id);
        }
    }
    dropped
}

/// Rebuilds every localization pointer from the *current owners* (any
/// owner-state copy), used when home responsibility moves while the
/// machine is quiescent — e.g. when a repaired node rejoins the ring and
/// takes its statically-assigned home range back from its successor.
pub fn rebuild_homes_from_owners(nodes: &mut [NodeState], ring: &LogicalRing) {
    let mut registrations: Vec<(ItemId, NodeId)> = Vec::new();
    for ns in nodes.iter_mut() {
        ns.home.clear();
    }
    for ns in nodes.iter() {
        if !ns.alive {
            continue;
        }
        for (item, slot) in ns.am.iter_present() {
            if slot.state.is_owner() {
                registrations.push((item, ns.id));
            }
        }
    }
    for (item, owner) in registrations {
        let home = home_of(item, ring);
        nodes[home.index()].home.set_owner(item, owner);
    }
}

/// Rebuilds every localization pointer from the surviving `Shared-CK1`
/// copies: each owner re-registers with the item's (possibly migrated)
/// home, and owner directory entries are re-created empty (all plain
/// `Shared` copies were invalidated by the rollback).
pub fn rebuild_homes(nodes: &mut [NodeState], ring: &LogicalRing) {
    let mut registrations: Vec<(ItemId, NodeId)> = Vec::new();
    for ns in nodes.iter_mut() {
        if !ns.alive {
            continue;
        }
        let owned = ns.am.items_where(|s| s.state == ItemState::SharedCk1);
        for &item in &owned {
            ns.dir.create(item, Vec::new());
            registrations.push((item, ns.id));
        }
    }
    for (item, owner) in registrations {
        let home = home_of(item, ring);
        nodes[home.index()].home.set_owner(item, owner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_mem::ItemId;

    fn install(ns: &mut NodeState, idx: u64, st: ItemState, partner: Option<NodeId>) {
        let item = ItemId::new(idx);
        if !ns.am.has_page(item.page()) {
            ns.am.allocate_page(item.page()).unwrap();
        }
        ns.am.install(item, st, idx, partner);
    }

    #[test]
    fn rollback_restores_recovery_point() {
        let mut ns = NodeState::ksr1(NodeId::new(0));
        install(&mut ns, 0, ItemState::Exclusive, None);
        install(&mut ns, 1, ItemState::Shared, None);
        install(&mut ns, 2, ItemState::MasterShared, None);
        install(&mut ns, 3, ItemState::InvCk1, Some(NodeId::new(1)));
        install(&mut ns, 4, ItemState::InvCk2, Some(NodeId::new(1)));
        install(&mut ns, 5, ItemState::SharedCk2, Some(NodeId::new(1)));
        install(&mut ns, 6, ItemState::PreCommit1, None);
        ns.home.set_owner(ItemId::new(0), NodeId::new(0));
        ns.dir.create(ItemId::new(0), vec![]);

        let stats = rollback_node(&mut ns, &MemTiming::ksr1());
        assert_eq!(stats.current_invalidated, 3);
        assert_eq!(stats.precommit_invalidated, 1);
        assert_eq!(stats.restored, 2);
        assert_eq!(ns.am.state(ItemId::new(3)), ItemState::SharedCk1);
        assert_eq!(ns.am.state(ItemId::new(4)), ItemState::SharedCk2);
        assert_eq!(ns.am.state(ItemId::new(5)), ItemState::SharedCk2);
        assert_eq!(ns.am.state(ItemId::new(0)), ItemState::Invalid);
        assert!(ns.home.is_empty());
        assert!(ns.dir.is_empty());
        assert!(stats.duration > 0);
    }

    #[test]
    fn promotion_turns_survivor_into_primary() {
        let dead = NodeId::new(7);
        let mut ns = NodeState::ksr1(NodeId::new(0));
        install(&mut ns, 0, ItemState::SharedCk2, Some(dead)); // primary died
        install(&mut ns, 1, ItemState::SharedCk1, Some(dead)); // secondary died
        install(&mut ns, 2, ItemState::SharedCk1, Some(NodeId::new(2))); // intact

        let orphans = promote_and_collect_orphans(&mut ns, dead);
        assert_eq!(orphans.len(), 2);
        assert_eq!(ns.am.state(ItemId::new(0)), ItemState::SharedCk1);
        assert_eq!(ns.am.state(ItemId::new(1)), ItemState::SharedCk1);
        assert_eq!(ns.am.slot(ItemId::new(0)).unwrap().partner, None);
        assert_eq!(
            ns.am.slot(ItemId::new(2)).unwrap().partner,
            Some(NodeId::new(2))
        );
    }

    #[test]
    fn singleton_scan_finds_orphans_with_stale_partner_pointers() {
        // Pair was (n0, n2); the n2 copy had just migrated to n1 when n1
        // died, and the PartnerUpdate to n0 was purged in flight: n0 still
        // points at n2, which holds nothing. A pointer scan for
        // partner == n1 finds no orphan; the copy count does.
        let mut nodes = vec![
            NodeState::ksr1(NodeId::new(0)),
            NodeState::ksr1(NodeId::new(1)),
            NodeState::ksr1(NodeId::new(2)),
        ];
        install(&mut nodes[0], 0, ItemState::SharedCk2, Some(NodeId::new(2)));
        // An intact pair on (n0, n2) must be left alone.
        install(&mut nodes[0], 1, ItemState::SharedCk1, Some(NodeId::new(2)));
        install(&mut nodes[2], 1, ItemState::SharedCk2, Some(NodeId::new(0)));
        nodes[1].alive = false;

        let orphans = collect_singleton_orphans(&mut nodes);
        assert_eq!(orphans, vec![(NodeId::new(0), vec![ItemId::new(0)])]);
        // Survivor was promoted to primary and unpaired.
        let slot = nodes[0].am.slot(ItemId::new(0)).unwrap();
        assert_eq!(slot.state, ItemState::SharedCk1);
        assert_eq!(slot.partner, None);
        // The intact pair kept its states and pointers.
        assert_eq!(nodes[0].am.state(ItemId::new(1)), ItemState::SharedCk1);
        assert_eq!(nodes[2].am.state(ItemId::new(1)), ItemState::SharedCk2);
    }

    #[test]
    fn copy_audit_certifies_only_written_zero_copy_items() {
        let mut nodes = vec![
            NodeState::ksr1(NodeId::new(0)),
            NodeState::ksr1(NodeId::new(1)),
        ];
        // Item 0: one live copy left — not lost. Item 1: no live copy and a
        // written value — certified loss. Item 2: no live copy but never
        // written — droppable. Item 3: copy only on a dead node — lost.
        install(&mut nodes[0], 0, ItemState::SharedCk1, Some(NodeId::new(1)));
        install(&mut nodes[1], 3, ItemState::SharedCk2, Some(NodeId::new(0)));
        nodes[1].alive = false;
        let committed = [
            (ItemId::new(0), 10),
            (ItemId::new(1), 11),
            (ItemId::new(2), 0),
            (ItemId::new(3), 13),
        ];
        let audit = audit_copies(&nodes, committed);
        assert_eq!(audit.lost, vec![ItemId::new(1), ItemId::new(3)]);
        assert_eq!(audit.droppable, vec![ItemId::new(2)]);
        // Everything present: a clean audit.
        nodes[1].alive = true;
        let clean = audit_copies(&nodes, [(ItemId::new(0), 10), (ItemId::new(3), 13)]);
        assert_eq!(clean, CopyAudit::default());
    }

    #[test]
    fn rebuild_homes_registers_primaries() {
        let ring = LogicalRing::new(2);
        let mut nodes = vec![
            NodeState::ksr1(NodeId::new(0)),
            NodeState::ksr1(NodeId::new(1)),
        ];
        // Item 1 is homed on node 1; its primary recovery copy lives on 0.
        install(&mut nodes[0], 1, ItemState::SharedCk1, Some(NodeId::new(1)));
        install(&mut nodes[1], 1, ItemState::SharedCk2, Some(NodeId::new(0)));
        rebuild_homes(&mut nodes, &ring);
        assert_eq!(nodes[1].home.owner(ItemId::new(1)), Some(NodeId::new(0)));
        assert!(nodes[0].dir.owns(ItemId::new(1)));
        assert!(!nodes[1].dir.owns(ItemId::new(1)));
    }

    #[test]
    fn wipe_dead_node_clears_everything() {
        let mut ns = NodeState::ksr1(NodeId::new(0));
        install(&mut ns, 0, ItemState::MasterShared, None);
        install(&mut ns, 1, ItemState::SharedCk1, Some(NodeId::new(1)));
        wipe_dead_node(&mut ns);
        assert!(!ns.alive);
        assert_eq!(ns.am.allocated_pages(), 0);
        assert_eq!(ns.am.iter_present().count(), 0);
    }
}
