//! The three-layer oracle: what makes a chaos case pass.
//!
//! Layer 1 — *protocol invariants*: the machine's own
//! [`RecoveryOutcome`](ftcoma_core::RecoveryOutcome) (which already folds
//! in the post-run `ftcoma_core::invariants::check` sweep, see
//! `ftcoma_campaign::run_cell`).
//!
//! Layer 2 — *golden replay*: the faulted run's final owner-visible memory
//! image is compared against an unfaulted reference execution of the same
//! seed. Private items must match exactly (their write values are a pure
//! function of the stream position, which rollback replays exactly);
//! shared items must agree on the *set* of items owned — their final
//! values legitimately depend on the cross-node interleaving, which a
//! failure perturbs. Never-written items (value 0) may be dropped by a
//! failure: their content is the well-known initial value, recreated on
//! demand, so only written data is irreplaceable.
//!
//! Layer 3 — *liveness*: every stream reaches its reference quota and the
//! run terminates within a generous multiple of the golden run time.

use std::collections::BTreeMap;

use ftcoma_campaign::CellOutcome;
use ftcoma_core::RecoveryOutcome;

/// The unfaulted reference execution a case is judged against.
#[derive(Debug, Clone)]
pub struct GoldenRef {
    /// Simulated cycles of the unfaulted run (liveness bound input).
    pub total_cycles: u64,
    /// Final owner image (`(item index, value)`, sorted by item).
    pub owner_image: Vec<(u64, u64)>,
    /// First private item index: items at or above it are private and must
    /// replay value-exactly.
    pub private_floor: u64,
    /// References each stream must emit.
    pub quota: u64,
}

impl GoldenRef {
    /// Builds the reference from an unfaulted cell run.
    pub fn from_outcome(outcome: &CellOutcome, private_floor: u64, quota: u64) -> GoldenRef {
        GoldenRef {
            total_cycles: outcome.metrics.total_cycles,
            owner_image: outcome.owner_image.clone(),
            private_floor,
            quota,
        }
    }

    /// The liveness bound: a faulted run pays rollback re-execution,
    /// recovery scans and degraded (MTTR) progress for *every* fault it
    /// absorbs. Scripted scenarios absorb a handful, so the base bound of
    /// `4x golden + 2M cycles` dominates; a continuous soak process
    /// absorbs dozens, so the bound scales with the absorbed count —
    /// anything past it means the machine stopped making progress.
    pub fn cycle_bound(&self, faults_absorbed: u64) -> u64 {
        // Per fault: rollback replays at most ~one checkpoint interval
        // per node (<= golden/2 is generous), plus the reconfiguration
        // window and an MTTR of degraded throughput (~250k covers both
        // at any shipped scale).
        let per_fault = self.total_cycles / 2 + 250_000;
        self.total_cycles.saturating_mul(4) + 2_000_000 + faults_absorbed.saturating_mul(per_fault)
    }
}

/// A case's verdict under the three oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Recovered and passed all three oracle layers.
    Pass,
    /// A *legal* fail-stop outcome, not an oracle failure: either the mesh
    /// split so no component could safely reconfigure
    /// (`partitioned_network`), or the run reported
    /// `unrecoverable_data_loss` *and* the copy-accounting audit certifies
    /// it — some written committed item really retains zero live copies.
    /// An uncertified data-loss claim is an oracle failure: recovery is
    /// restartable, so the machine may only halt when data is provably
    /// gone.
    Unrecoverable,
    /// An oracle failed; the reasons name each divergence.
    Fail(Vec<String>),
}

impl Verdict {
    /// Stable tag for reports (`pass` / `unrecoverable` / `fail`).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Unrecoverable => "unrecoverable",
            Verdict::Fail(_) => "fail",
        }
    }

    /// True for [`Verdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail(_))
    }
}

/// Judges one case outcome against its golden reference.
pub fn judge(outcome: &CellOutcome, golden: &GoldenRef) -> Verdict {
    match &outcome.outcome {
        RecoveryOutcome::PartitionedNetwork { .. } => Verdict::Unrecoverable,
        RecoveryOutcome::UnrecoverableDataLoss { at, item } => {
            if outcome.data_loss_certified {
                Verdict::Unrecoverable
            } else {
                Verdict::Fail(vec![format!(
                    "uncertified data loss: machine claimed {item} unrecoverable at cycle \
                     {at} but the copy audit found no zero-copy committed item"
                )])
            }
        }
        RecoveryOutcome::InvariantViolation { at, problems } => Verdict::Fail(
            problems
                .iter()
                .map(|p| format!("invariant (at cycle {at}): {p}"))
                .collect(),
        ),
        RecoveryOutcome::Recovered => {
            let mut reasons = Vec::new();
            liveness(outcome, golden, &mut reasons);
            golden_replay(outcome, golden, &mut reasons);
            if reasons.is_empty() {
                Verdict::Pass
            } else {
                Verdict::Fail(reasons)
            }
        }
    }
}

fn liveness(outcome: &CellOutcome, golden: &GoldenRef, reasons: &mut Vec<String>) {
    for (i, &p) in outcome.stream_progress.iter().enumerate() {
        if p != golden.quota {
            reasons.push(format!(
                "liveness: stream {i} stopped at {p}/{} references",
                golden.quota
            ));
        }
    }
    let bound = golden.cycle_bound(outcome.metrics.failures);
    if outcome.metrics.total_cycles > bound {
        reasons.push(format!(
            "liveness: run took {} cycles, bound {bound} (golden {})",
            outcome.metrics.total_cycles, golden.total_cycles
        ));
    }
}

fn golden_replay(outcome: &CellOutcome, golden: &GoldenRef, reasons: &mut Vec<String>) {
    const MAX_REPORTED: usize = 8;
    let want: BTreeMap<u64, u64> = golden.owner_image.iter().copied().collect();
    let got: BTreeMap<u64, u64> = outcome.owner_image.iter().copied().collect();
    let mut diffs = 0usize;
    let report = |reasons: &mut Vec<String>, diffs: &mut usize, msg: String| {
        if *diffs < MAX_REPORTED {
            reasons.push(msg);
        }
        *diffs += 1;
    };
    for (&item, &v) in &want {
        match got.get(&item) {
            // A never-written item (value 0) is recreatable on demand: a
            // failure may drop the last cached copy, and post-rollback
            // replay only re-materializes it if some stream touches it
            // again. Written data, by contrast, must never vanish — it is
            // either in the recovery data or re-produced by replay.
            None if v == 0 => {}
            None => report(
                reasons,
                &mut diffs,
                format!("golden-replay: item {item} lost (golden value {v})"),
            ),
            Some(&g) if item >= golden.private_floor && g != v => report(
                reasons,
                &mut diffs,
                format!("golden-replay: private item {item} holds {g}, golden {v}"),
            ),
            Some(_) => {}
        }
    }
    for &item in got.keys() {
        if !want.contains_key(&item) {
            report(
                reasons,
                &mut diffs,
                format!("golden-replay: spurious item {item} not in the golden image"),
            );
        }
    }
    if diffs > MAX_REPORTED {
        reasons.push(format!(
            "golden-replay: {} further divergences suppressed",
            diffs - MAX_REPORTED
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_machine::RunMetrics;

    fn outcome(
        image: Vec<(u64, u64)>,
        progress: Vec<u64>,
        cycles: u64,
        outcome: RecoveryOutcome,
    ) -> CellOutcome {
        CellOutcome {
            cell_id: 0,
            metrics: RunMetrics {
                total_cycles: cycles,
                ..RunMetrics::default()
            },
            links: Vec::new(),
            trace: Vec::new(),
            outcome,
            owner_image: image,
            stream_progress: progress,
            spans: Vec::new(),
            timeseries: Vec::new(),
            data_loss_certified: false,
            wall_ms: 0.0,
        }
    }

    fn golden() -> GoldenRef {
        GoldenRef {
            total_cycles: 10_000,
            owner_image: vec![(1, 11), (2, 22), (5, 0), (100, 77)],
            private_floor: 100, // items >= 100 are private
            quota: 500,
        }
    }

    #[test]
    fn clean_replay_passes() {
        let o = outcome(
            vec![(1, 99), (2, 22), (100, 77)], // shared value drift is fine
            vec![500, 500],
            12_000,
            RecoveryOutcome::Recovered,
        );
        // Item 5 (golden value 0, never written) is absent — a dropped
        // clean copy is legal, so this still passes.
        assert_eq!(judge(&o, &golden()), Verdict::Pass);
    }

    #[test]
    fn divergences_and_stalls_fail() {
        // Private value drift.
        let o = outcome(
            vec![(1, 11), (2, 22), (100, 78)],
            vec![500, 500],
            12_000,
            RecoveryOutcome::Recovered,
        );
        assert!(judge(&o, &golden()).is_fail());
        // Lost item.
        let o = outcome(
            vec![(1, 11), (100, 77)],
            vec![500, 500],
            12_000,
            RecoveryOutcome::Recovered,
        );
        assert!(judge(&o, &golden()).is_fail());
        // Spurious item.
        let o = outcome(
            vec![(1, 11), (2, 22), (3, 1), (100, 77)],
            vec![500, 500],
            12_000,
            RecoveryOutcome::Recovered,
        );
        assert!(judge(&o, &golden()).is_fail());
        // Stream stalled short of quota.
        let o = outcome(
            vec![(1, 11), (2, 22), (100, 77)],
            vec![500, 499],
            12_000,
            RecoveryOutcome::Recovered,
        );
        assert!(judge(&o, &golden()).is_fail());
        // Blown cycle bound.
        let o = outcome(
            vec![(1, 11), (2, 22), (100, 77)],
            vec![500, 500],
            golden().cycle_bound(0) + 1,
            RecoveryOutcome::Recovered,
        );
        assert!(judge(&o, &golden()).is_fail());
    }

    #[test]
    fn cycle_bound_scales_with_absorbed_faults() {
        // A soak run that absorbed 40 faults may legitimately run far
        // past the scripted-scenario bound...
        let mut o = outcome(
            vec![(1, 11), (2, 22), (100, 77)],
            vec![500, 500],
            golden().cycle_bound(0) + 1,
            RecoveryOutcome::Recovered,
        );
        o.metrics.failures = 40;
        assert_eq!(judge(&o, &golden()), Verdict::Pass);
        // ...but the scaled bound still cuts off a stalled machine.
        o.metrics.total_cycles = golden().cycle_bound(40) + 1;
        assert!(judge(&o, &golden()).is_fail());
    }

    #[test]
    fn machine_outcomes_map_to_verdicts() {
        // A data-loss halt is only legal when the copy audit certifies it.
        let mut o = outcome(
            Vec::new(),
            Vec::new(),
            0,
            RecoveryOutcome::UnrecoverableDataLoss {
                at: 5,
                item: ftcoma_mem::ItemId::new(42),
            },
        );
        o.data_loss_certified = true;
        assert_eq!(judge(&o, &golden()), Verdict::Unrecoverable);
        o.data_loss_certified = false;
        let v = judge(&o, &golden());
        assert!(v.is_fail(), "{v:?}");
        if let Verdict::Fail(reasons) = v {
            assert!(reasons[0].contains("uncertified data loss"), "{reasons:?}");
        }
        let o = outcome(
            Vec::new(),
            Vec::new(),
            0,
            RecoveryOutcome::PartitionedNetwork {
                at: 7,
                from: ftcoma_mem::NodeId::new(0),
                to: ftcoma_mem::NodeId::new(3),
            },
        );
        assert_eq!(judge(&o, &golden()), Verdict::Unrecoverable);
        let o = outcome(
            Vec::new(),
            Vec::new(),
            0,
            RecoveryOutcome::InvariantViolation {
                at: 9,
                problems: vec!["two owners".into()],
            },
        );
        let v = judge(&o, &golden());
        assert!(v.is_fail());
        assert_eq!(v.label(), "fail");
    }
}
