//! The fuzzing engine: golden runs → adversarial case generation →
//! parallel execution → oracle judgement → counterexample shrinking.
//!
//! Determinism contract: the report document is a pure function of the
//! [`ChaosConfig`] (host wall-clock time is reported out-of-band in
//! [`ChaosReport::wall_ms_total`]). Case scenarios are sampled
//! from per-seed-group [`DetRng`] streams derived at generation time, the
//! cells run on the campaign worker pool (whose results are
//! order-independent), and shrinking re-runs cells sequentially in case
//! order — so `jobs: 1` and `jobs: N` produce byte-identical reports.

use std::time::Instant;

use ftcoma_campaign::{
    fork_cycle, needs_net, run_cell, run_cell_on, run_cells, Cell, CellOutcome, Scenario,
    ScenarioKind, SnapshotForge,
};
use ftcoma_core::FtConfig;
use ftcoma_machine::{export, MachineConfig};
use ftcoma_mem::addr::ITEMS_PER_PAGE;
use ftcoma_mem::NodeId;
use ftcoma_net::MeshGeometry;
use ftcoma_sim::{derive_seed, DetRng, Json};
use ftcoma_workloads::{presets, SplashConfig};

use crate::artifact::Counterexample;
use crate::oracle::{judge, GoldenRef, Verdict};
use crate::shrink::shrink_scenario;

/// Configuration of one fuzzing run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; machine seeds and case-sampling streams derive from it.
    pub campaign_seed: u64,
    /// Independent seed groups (one golden reference each).
    pub seeds: u64,
    /// Total cases, distributed round-robin across the seed groups.
    pub cases: u64,
    /// Worker threads for the golden and case runs.
    pub jobs: usize,
    /// Workload preset every cell runs.
    pub workload: SplashConfig,
    /// Machine size (≥ 4 for the ECP).
    pub nodes: u16,
    /// Checkpoint frequency — high enough that several establishment
    /// windows land inside each run.
    pub freq_hz: f64,
    /// References per node (warmup is always 0 so sampled injection times
    /// are absolute positions within the golden run).
    pub refs_per_node: u64,
    /// Max re-runs the shrinker may spend per counterexample.
    pub shrink_budget: u32,
    /// Mix interconnect faults (link cuts, router deaths, message-loss
    /// episodes) into the sampled cases. Off by default: the node-fault
    /// sampling streams are untouched when disabled, so existing runs
    /// stay byte-identical.
    pub net_faults: bool,
    /// Mix continuous MTBF/MTTR failure–repair processes (soak cases) into
    /// the sampled grid: the case machine keeps failing, repairing and
    /// re-failing nodes (and links) for its whole run instead of taking
    /// one scripted fault. Off by default with the same RNG discipline as
    /// `net_faults`: disabled soak sampling consumes no draws, so existing
    /// runs stay byte-identical.
    pub soak: bool,
    /// Mix nested-fault chains into the sampled grid: two- and three-fault
    /// sequences with gaps tight enough to land later faults inside open
    /// recovery windows, stressing the restartable-recovery path. Off by
    /// default with the same RNG discipline as `net_faults`/`soak`:
    /// disabled nested sampling consumes no draws, so existing runs stay
    /// byte-identical.
    pub nested: bool,
}

impl ChaosConfig {
    /// Defaults for a fuzzing run: water on 8 nodes at 1000 recovery
    /// points/s (≈ one establishment every 20k cycles, so every run spans
    /// several), 4 seed groups × 200 cases. `FTCOMA_BENCH_QUICK` halves
    /// the run length for CI smoke jobs.
    pub fn new(campaign_seed: u64) -> ChaosConfig {
        let quick = std::env::var_os("FTCOMA_BENCH_QUICK").is_some();
        ChaosConfig {
            campaign_seed,
            seeds: 4,
            cases: 200,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            workload: presets::water(),
            nodes: 8,
            freq_hz: 1_000.0,
            refs_per_node: if quick { 4_000 } else { 8_000 },
            shrink_budget: 24,
            net_faults: false,
            soak: false,
            nested: false,
        }
    }

    /// The machine seed of seed group `group` (its golden reference and
    /// every case in the group share it — a case must replay the golden
    /// execution exactly up to its injection point).
    pub fn machine_seed(&self, group: u64) -> u64 {
        derive_seed(self.campaign_seed, 2 * group)
    }

    /// The scenario-sampling stream of seed group `group` (independent of
    /// the machine seed so adding cases never perturbs the simulations).
    fn case_rng(&self, group: u64) -> DetRng {
        DetRng::seeded(derive_seed(self.campaign_seed, 2 * group + 1))
    }

    /// First private item index: items at or above it belong to exactly
    /// one node's private region and must replay value-exactly.
    pub fn private_floor(&self) -> u64 {
        self.workload.shared_pages * ITEMS_PER_PAGE
    }

    /// Builds the campaign cell for `scenario` in seed group `group`.
    pub fn cell(&self, id: u64, group: u64, scenario: Scenario) -> Cell {
        Cell {
            id,
            group,
            label: format!("chaos/s{group}/{}", scenario.label()),
            cfg: MachineConfig {
                nodes: self.nodes,
                refs_per_node: self.refs_per_node,
                warmup_refs_per_node: 0,
                workload: self.workload.clone(),
                ft: FtConfig::enabled(self.freq_hz),
                seed: self.machine_seed(group),
                verify: true,
                ..MachineConfig::default()
            },
            scenario,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.seeds == 0 || self.cases == 0 {
            return Err("chaos needs at least one seed and one case".into());
        }
        if self.nodes < 4 {
            return Err("the ECP needs at least 4 nodes".into());
        }
        if self.jobs == 0 {
            return Err("jobs must be at least 1".into());
        }
        if self.refs_per_node == 0 {
            return Err("refs_per_node must be positive".into());
        }
        if !self.freq_hz.is_finite() || self.freq_hz <= 0.0 {
            return Err(format!("bad checkpoint frequency {}", self.freq_hz));
        }
        Ok(())
    }
}

/// Samples one adversarial scenario. Buckets sweep the protocol
/// lifecycle: uniform transient/permanent faults (mid-transaction and
/// drain windows fall out of uniformity), faults biased into the
/// two-phase establishment windows around each `k * period`, back-to-back
/// pairs with tight gaps probing the rollback/reconfiguration window, and
/// multi-failure cycles.
/// Floor for sampled horizons: a degenerate golden horizon (tiny runs in
/// quick/test modes) must not collapse every sampling window to a single
/// cycle, or bias every draw to cycle 1. All scripted samplers clamp to
/// the same floor so their draw streams stay aligned across modes.
const MIN_HORIZON: u64 = 8;

fn sample_scenario(rng: &mut DetRng, nodes: u16, horizon: u64, period: u64) -> Scenario {
    let horizon = horizon.max(MIN_HORIZON);
    let full = [(1, horizon)];
    let node = rng.below(u64::from(nodes)) as u16;
    let bucket = rng.below(100);
    let (kind, at, repair_at) = if bucket < 40 {
        let at = rng.in_windows(&full).expect("non-empty window");
        (ScenarioKind::Transient, at, None)
    } else if bucket < 60 {
        let at = rng.in_windows(&full).expect("non-empty window");
        let repair = if rng.chance(0.3) {
            Some(at + rng.range(20_000, 100_000))
        } else {
            None
        };
        (ScenarioKind::Permanent, at, repair)
    } else if bucket < 80 {
        // Inside (or just around) a checkpoint establishment window.
        let windows: Vec<(u64, u64)> = (1..)
            .map(|g| g * period)
            .take_while(|&c| c < horizon)
            .map(|c| {
                (
                    c.saturating_sub(period / 8).max(1),
                    (c + period / 4).min(horizon),
                )
            })
            .collect();
        let at = rng
            .in_windows(&windows)
            .unwrap_or_else(|| rng.in_windows(&full).expect("non-empty window"));
        let kind = if rng.chance(0.5) {
            ScenarioKind::Transient
        } else {
            ScenarioKind::Permanent
        };
        (kind, at, None)
    } else if bucket < 92 {
        // Permanent fault, then a transient one a tight gap later.
        let at = rng.range(1, (horizon * 3 / 4).max(2));
        let gap = 1 + rng.below(2_000);
        let mut second = rng.below(u64::from(nodes) - 1) as u16;
        if second >= node {
            second += 1;
        }
        (
            ScenarioKind::BackToBack {
                gap,
                second_node: second,
            },
            at,
            None,
        )
    } else {
        let at = rng.range(1, (horizon / 2).max(2));
        (
            ScenarioKind::Cycle {
                period: rng.range(5_000, 60_000),
                count: 2 + rng.below(2) as u32,
            },
            at,
            None,
        )
    };
    Scenario {
        kind,
        node,
        at,
        repair_at,
    }
}

/// Samples one interconnect-fault scenario (only drawn when
/// [`ChaosConfig::net_faults`] is on): link cuts between mesh-adjacent
/// pairs, router deaths, and bounded message-loss episodes — all faults
/// the reliable transport and fault-aware routing must mask or escalate
/// cleanly.
fn sample_net_scenario(rng: &mut DetRng, nodes: u16, horizon: u64) -> Scenario {
    let horizon = horizon.max(MIN_HORIZON);
    let node = rng.below(u64::from(nodes)) as u16;
    let at = rng.in_windows(&[(1, horizon)]).expect("non-empty window");
    let bucket = rng.below(100);
    let kind = if bucket < 40 {
        let geo = MeshGeometry::for_nodes(usize::from(nodes));
        let neighbors: Vec<u16> = (0..nodes)
            .filter(|&m| m != node && geo.hops(NodeId::new(node), NodeId::new(m)) == 1)
            .collect();
        let to_node = neighbors[rng.below(neighbors.len() as u64) as usize];
        ScenarioKind::LinkCut { to_node }
    } else if bucket < 70 {
        ScenarioKind::RouterDown
    } else {
        ScenarioKind::MessageLoss {
            rate: 50 + rng.below(450) as u32,
        }
    };
    Scenario {
        kind,
        node,
        at,
        repair_at: None,
    }
}

/// Samples one continuous-process soak scenario (only drawn when
/// [`ChaosConfig::soak`] is on). Means are scaled to the golden run's
/// horizon so several failure/repair cycles — including repair-then-refail
/// sequences — land inside every case. The MTBF floor sits at a third of
/// the horizon on purpose: every fault costs a rollback (lost progress
/// since the last recovery point) plus a reconfiguration, so denser
/// processes inflate the run far past the fault-free horizon without
/// probing anything new.
fn sample_soak_scenario(rng: &mut DetRng, horizon: u64) -> Scenario {
    let horizon = horizon.max(4_096);
    let node_mtbf = rng.range(horizon / 3, horizon);
    let node_mttr = rng.range(horizon / 64, horizon / 16);
    let (link_mtbf, link_mttr) = if rng.chance(0.5) {
        (
            rng.range(horizon / 3, horizon),
            rng.range(horizon / 64, horizon / 16),
        )
    } else {
        (0, 0)
    };
    Scenario {
        kind: ScenarioKind::Continuous {
            node_mtbf: node_mtbf.max(1),
            node_mttr: node_mttr.max(1),
            link_mtbf,
            link_mttr,
        },
        node: 0,
        // Process start offset; 0 means the process samples from cycle 0.
        at: rng.below(horizon / 4),
        repair_at: None,
    }
}

/// Samples one nested-fault chain (only drawn when
/// [`ChaosConfig::nested`] is on): a first fault, a second one a tight
/// gap later, and — half the time — a third fault another tight gap after
/// that. Tight gaps land the later faults inside the detection, rollback,
/// reconfiguration or replay window of the recovery already in flight, so
/// these cases exercise recovery restarts rather than independent
/// episodes. At most one fault in the chain is permanent: scripted kills
/// carry no mesh-connectivity guard, so two permanents could partition
/// the mesh and mask the restart path under test.
fn sample_nested_scenario(rng: &mut DetRng, nodes: u16, horizon: u64) -> Scenario {
    let horizon = horizon.max(MIN_HORIZON);
    let node = rng.below(u64::from(nodes)) as u16;
    let at = rng.range(1, (horizon * 3 / 4).max(2));
    let gap = 1 + rng.below(4_000);
    let mut second = rng.below(u64::from(nodes) - 1) as u16;
    if second >= node {
        second += 1;
    }
    let (gap2, third_node) = if rng.chance(0.5) {
        let g2 = 1 + rng.below(4_000);
        let mut third = rng.below(u64::from(nodes) - 2) as u16;
        for taken in [node.min(second), node.max(second)] {
            if third >= taken {
                third += 1;
            }
        }
        (g2, third)
    } else {
        (0, 0)
    };
    // One permanent fault at most; bit 2 only when the third fault exists.
    let masks: &[u8] = if gap2 > 0 {
        &[0b000, 0b001, 0b010, 0b100]
    } else {
        &[0b000, 0b001, 0b010]
    };
    let permanent_mask = masks[rng.below(masks.len() as u64) as usize];
    Scenario {
        kind: ScenarioKind::Nested {
            gap,
            second_node: second,
            gap2,
            third_node,
            permanent_mask,
        },
        node,
        at,
        repair_at: None,
    }
}

/// What one fuzzing run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The full report document (`"kind": "chaos"`, byte-deterministic).
    pub doc: Json,
    /// Host wall-clock time of the whole run, in milliseconds. Kept out
    /// of `doc` so reports diff cleanly; the CLI writes it to the
    /// `timing` sidecar.
    pub wall_ms_total: f64,
    /// One minimized artifact per oracle failure, in case order.
    pub counterexamples: Vec<Counterexample>,
    /// Cases that recovered and passed all three oracles.
    pub passed: u64,
    /// Cases legally reported unrecoverable: a network partition, or a
    /// data loss certified by the copy-accounting audit.
    pub unrecoverable: u64,
    /// Cases that failed an oracle (== `counterexamples.len()`).
    pub failed: u64,
}

/// Runs the full fuzzing pipeline.
///
/// # Errors
///
/// Returns a message for invalid configurations, or if a *golden* (fault
/// free) run does not recover — that is a harness-level inconsistency no
/// counterexample can describe.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    cfg.validate()?;
    let start = Instant::now();

    // Phase 1: one golden reference per seed group, in parallel.
    let golden_cells: Vec<Cell> = (0..cfg.seeds)
        .map(|k| cfg.cell(k, k, Scenario::none()))
        .collect();
    let golden_outcomes = run_cells(&golden_cells, cfg.jobs);
    for (k, o) in golden_outcomes.iter().enumerate() {
        if !o.outcome.is_recovered() {
            return Err(format!(
                "golden run of seed group {k} is inconsistent: {}",
                o.outcome
            ));
        }
    }
    let goldens: Vec<GoldenRef> = golden_outcomes
        .iter()
        .map(|o| GoldenRef::from_outcome(o, cfg.private_floor(), cfg.refs_per_node))
        .collect();

    // Phase 2: sample the case grid (deterministic per seed group).
    let period = FtConfig::enabled(cfg.freq_hz)
        .ckpt_period_cycles()
        .expect("chaos runs with FT enabled");
    let mut cells: Vec<Cell> = Vec::with_capacity(cfg.cases as usize);
    for k in 0..cfg.seeds {
        let n = cfg.cases / cfg.seeds + u64::from(k < cfg.cases % cfg.seeds);
        let mut rng = cfg.case_rng(k);
        for _ in 0..n {
            let horizon = goldens[k as usize].total_cycles;
            // Short-circuit order matters: a disabled gate consumes no
            // draws, so turning a mode off never perturbs the others.
            let sc = if cfg.nested && rng.chance(0.25) {
                sample_nested_scenario(&mut rng, cfg.nodes, horizon)
            } else if cfg.soak && rng.chance(0.25) {
                sample_soak_scenario(&mut rng, horizon)
            } else if cfg.net_faults && rng.chance(0.5) {
                sample_net_scenario(&mut rng, cfg.nodes, horizon)
            } else {
                sample_scenario(&mut rng, cfg.nodes, horizon, period)
            };
            cells.push(cfg.cell(cells.len() as u64, k, sc));
        }
    }

    // Phase 3: run every case on the worker pool.
    let outcomes = run_cells(&cells, cfg.jobs);

    // Phase 4 + 5: judge in case order; shrink each failure sequentially.
    let (mut passed, mut unrecoverable, mut failed) = (0u64, 0u64, 0u64);
    let mut rows: Vec<Json> = Vec::with_capacity(cells.len());
    let mut counterexamples: Vec<Counterexample> = Vec::new();
    for (cell, outcome) in cells.iter().zip(&outcomes) {
        let golden = &goldens[cell.group as usize];
        let verdict = judge(outcome, golden);
        let mut row = vec![
            ("id".to_string(), Json::from(cell.id)),
            ("seed_group".to_string(), Json::from(cell.group)),
            ("scenario".to_string(), cell.scenario.to_json()),
            ("status".to_string(), Json::from(outcome.outcome.label())),
            ("verdict".to_string(), Json::from(verdict.label())),
        ];
        match verdict {
            Verdict::Pass => passed += 1,
            Verdict::Unrecoverable => unrecoverable += 1,
            Verdict::Fail(reasons) => {
                failed += 1;
                // Fork-aware shrink runner: bisection probes share prefix
                // snapshots (one forge per transport band) instead of
                // re-simulating the unfaulted prefix per probe. The final
                // artifact re-run raises `trace_capacity`, so its config
                // differs from the forge's and it runs straight — exactly
                // as a from-scratch shrinker would have run it.
                let base_cfg = &cell.cfg;
                let mut forges: [Option<SnapshotForge>; 2] = [None, None];
                let cx = minimize_case(cfg, cell, golden, reasons, |c: &Cell| {
                    if c.cfg == *base_cfg {
                        if let Some(at) = fork_cycle(&c.scenario) {
                            let band = usize::from(needs_net(&c.scenario.kind));
                            let forge = forges[band].get_or_insert_with(|| {
                                SnapshotForge::new(c.cfg.clone(), band == 1)
                            });
                            return run_cell_on(c, forge.machine_at(at));
                        }
                    }
                    run_cell(c)
                });
                row.push(("counterexample".to_string(), Json::from(cx.case_id)));
                counterexamples.push(cx);
            }
        }
        rows.push(Json::Obj(row));
    }

    let golden_rows = golden_cells.iter().zip(&golden_outcomes).map(|(c, o)| {
        Json::obj([
            ("seed_group", Json::from(c.group)),
            ("machine_seed", Json::from(format!("0x{:016x}", c.cfg.seed))),
            ("total_cycles", Json::from(o.metrics.total_cycles)),
            ("checkpoints", Json::from(o.metrics.checkpoints)),
            ("owned_items", Json::from(o.owner_image.len())),
        ])
    });
    let doc = Json::obj([
        ("schema_version", Json::from(export::SCHEMA_VERSION)),
        ("kind", Json::from("chaos")),
        (
            "config",
            Json::obj([
                (
                    "campaign_seed",
                    Json::from(format!("0x{:016x}", cfg.campaign_seed)),
                ),
                ("seeds", Json::from(cfg.seeds)),
                ("cases", Json::from(cfg.cases)),
                ("workload", Json::from(cfg.workload.name.as_str())),
                ("nodes", Json::from(u64::from(cfg.nodes))),
                ("freq", Json::from(cfg.freq_hz)),
                ("refs_per_node", Json::from(cfg.refs_per_node)),
                ("shrink_budget", Json::from(u64::from(cfg.shrink_budget))),
                ("net_faults", Json::from(cfg.net_faults)),
                ("soak", Json::from(cfg.soak)),
                ("nested", Json::from(cfg.nested)),
            ]),
        ),
        ("goldens", Json::arr(golden_rows)),
        (
            "oracle",
            Json::obj([
                ("pass", Json::from(passed)),
                ("unrecoverable", Json::from(unrecoverable)),
                ("fail", Json::from(failed)),
            ]),
        ),
        ("cases", Json::arr(rows)),
        (
            "counterexamples",
            Json::arr(counterexamples.iter().map(Counterexample::to_json)),
        ),
    ]);
    Ok(ChaosReport {
        doc,
        wall_ms_total: start.elapsed().as_secs_f64() * 1e3,
        counterexamples,
        passed,
        unrecoverable,
        failed,
    })
}

/// Shrinks one failing case and packages it as a replayable artifact.
/// `runner` abstracts the simulation so the artifact machinery is testable
/// against deliberately broken fakes.
fn minimize_case<F: FnMut(&Cell) -> CellOutcome>(
    cfg: &ChaosConfig,
    case_cell: &Cell,
    golden: &GoldenRef,
    original_reasons: Vec<String>,
    mut runner: F,
) -> Counterexample {
    let (shrunk, runs) = shrink_scenario(
        &case_cell.scenario,
        |cand| {
            let cell = cfg.cell(case_cell.id, case_cell.group, *cand);
            judge(&runner(&cell), golden).is_fail()
        },
        cfg.shrink_budget,
    );
    // Record the shrunk scenario's own reasons (one extra run); the
    // shrinker guarantees it still fails. This final run collects spans
    // so the artifact carries the recovery timeline of the failing case.
    let mut final_cell = cfg.cell(case_cell.id, case_cell.group, shrunk);
    final_cell.cfg.trace_capacity = 100_000;
    let final_outcome = runner(&final_cell);
    let recovery_timeline: Vec<_> = final_outcome
        .spans
        .iter()
        .filter(|s| s.phase.is_recovery())
        .take(64)
        .copied()
        .collect();
    let reasons = match judge(&final_outcome, golden) {
        Verdict::Fail(r) => r,
        _ => original_reasons,
    };
    Counterexample {
        campaign_seed: cfg.campaign_seed,
        seed_group: case_cell.group,
        machine_seed: cfg.machine_seed(case_cell.group),
        workload: cfg.workload.name.clone(),
        nodes: cfg.nodes,
        freq_hz: cfg.freq_hz,
        refs_per_node: cfg.refs_per_node,
        case_id: case_cell.id,
        scenario: shrunk,
        original: case_cell.scenario,
        reasons,
        shrink_runs: runs,
        recovery_timeline,
    }
}

/// Replays a counterexample artifact: rebuilds the golden reference and
/// the faulted cell from the recorded seeds, re-runs both and re-judges
/// with the same oracle the fuzzer used.
///
/// # Errors
///
/// Returns a message for unknown workloads, a machine seed that no longer
/// matches the derivation (stale artifact), or a golden run that does not
/// recover.
pub fn replay(cx: &Counterexample) -> Result<Verdict, String> {
    let workload = presets::all()
        .into_iter()
        .chain(presets::micros())
        .find(|w| w.name.eq_ignore_ascii_case(&cx.workload))
        .ok_or_else(|| format!("unknown workload `{}`", cx.workload))?;
    let cfg = ChaosConfig {
        campaign_seed: cx.campaign_seed,
        seeds: cx.seed_group + 1,
        cases: 1,
        jobs: 1,
        workload,
        nodes: cx.nodes,
        freq_hz: cx.freq_hz,
        refs_per_node: cx.refs_per_node,
        shrink_budget: 0,
        // Only steer case sampling; a replay re-runs the recorded
        // scenario directly.
        net_faults: false,
        soak: false,
        nested: false,
    };
    cfg.validate()?;
    if cfg.machine_seed(cx.seed_group) != cx.machine_seed {
        return Err(format!(
            "stale artifact: seed derivation now gives 0x{:016x}, artifact has 0x{:016x}",
            cfg.machine_seed(cx.seed_group),
            cx.machine_seed
        ));
    }
    let golden_out = run_cell(&cfg.cell(0, cx.seed_group, Scenario::none()));
    if !golden_out.outcome.is_recovered() {
        return Err(format!(
            "golden run is inconsistent: {}",
            golden_out.outcome
        ));
    }
    let golden = GoldenRef::from_outcome(&golden_out, cfg.private_floor(), cfg.refs_per_node);
    let case_out = run_cell(&cfg.cell(cx.case_id, cx.seed_group, cx.scenario));
    Ok(judge(&case_out, &golden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_core::RecoveryOutcome;
    use ftcoma_machine::RunMetrics;

    fn tiny(seed: u64) -> ChaosConfig {
        ChaosConfig {
            campaign_seed: seed,
            seeds: 2,
            cases: 8,
            jobs: 2,
            workload: presets::water(),
            nodes: 8,
            freq_hz: 1_000.0,
            refs_per_node: 1_500,
            shrink_budget: 8,
            net_faults: false,
            soak: false,
            nested: false,
        }
    }

    #[test]
    fn sampled_scenarios_are_in_range() {
        let mut rng = DetRng::seeded(99);
        for _ in 0..500 {
            let sc = sample_scenario(&mut rng, 8, 120_000, 20_000);
            assert!(sc.at >= 1);
            assert!(sc.node < 8);
            assert_ne!(sc.kind, ScenarioKind::None);
            if let ScenarioKind::BackToBack { gap, second_node } = sc.kind {
                assert!(gap >= 1 && second_node < 8 && second_node != sc.node);
            }
        }
    }

    #[test]
    fn net_fault_sampling_is_in_range() {
        let mut rng = DetRng::seeded(3);
        let geo = MeshGeometry::for_nodes(8);
        for _ in 0..200 {
            let sc = sample_net_scenario(&mut rng, 8, 50_000);
            assert!(sc.at >= 1);
            assert!(sc.node < 8);
            assert_eq!(sc.repair_at, None);
            match sc.kind {
                ScenarioKind::LinkCut { to_node } => {
                    assert!(to_node < 8 && to_node != sc.node);
                    assert_eq!(geo.hops(NodeId::new(sc.node), NodeId::new(to_node)), 1);
                }
                ScenarioKind::RouterDown => {}
                ScenarioKind::MessageLoss { rate } => assert!((50..500).contains(&rate)),
                other => panic!("unexpected node-fault kind {other:?}"),
            }
        }
    }

    #[test]
    fn net_fault_fuzzing_is_deterministic_and_violation_free() {
        let cfg1 = ChaosConfig {
            jobs: 1,
            net_faults: true,
            ..tiny(23)
        };
        let cfg4 = ChaosConfig {
            jobs: 4,
            ..cfg1.clone()
        };
        let r1 = run_chaos(&cfg1).unwrap();
        let r4 = run_chaos(&cfg4).unwrap();
        assert_eq!(r1.doc.to_string_pretty(), r4.doc.to_string_pretty());
        assert_eq!(
            r1.failed, 0,
            "net-fault bug or oracle bug: {:#?}",
            r1.counterexamples
        );
        // The mix actually drew interconnect faults, not just node faults.
        let text = r1.doc.to_string_pretty();
        assert!(
            ["link_cut", "router_down", "message_loss"]
                .iter()
                .any(|k| text.contains(k)),
            "no net-fault cases sampled"
        );
    }

    #[test]
    fn nested_sampling_is_in_range() {
        let mut rng = DetRng::seeded(29);
        let mut saw_third = false;
        for _ in 0..300 {
            let sc = sample_nested_scenario(&mut rng, 8, 120_000);
            assert!(sc.at >= 1);
            assert!(sc.node < 8);
            let ScenarioKind::Nested {
                gap,
                second_node,
                gap2,
                third_node,
                permanent_mask,
            } = sc.kind
            else {
                panic!("nested sampler produced {:?}", sc.kind);
            };
            assert!((1..=4_000).contains(&gap));
            assert!(second_node < 8 && second_node != sc.node);
            // At most one permanent kill, and only over faults that exist.
            assert!(permanent_mask.count_ones() <= 1);
            if gap2 > 0 {
                saw_third = true;
                assert!((1..=4_000).contains(&gap2));
                assert!(third_node < 8);
                assert!(third_node != sc.node && third_node != second_node);
            } else {
                assert_eq!(permanent_mask & 0b100, 0);
            }
        }
        assert!(saw_third, "three-fault chains never sampled");
    }

    #[test]
    fn nested_fuzzing_is_deterministic_and_violation_free() {
        let cfg1 = ChaosConfig {
            jobs: 1,
            nested: true,
            cases: 12,
            ..tiny(37)
        };
        let cfg4 = ChaosConfig {
            jobs: 4,
            ..cfg1.clone()
        };
        let r1 = run_chaos(&cfg1).unwrap();
        let r4 = run_chaos(&cfg4).unwrap();
        assert_eq!(r1.doc.to_string_pretty(), r4.doc.to_string_pretty());
        assert_eq!(
            r1.failed, 0,
            "nested-fault bug or oracle bug: {:#?}",
            r1.counterexamples
        );
        // The mix actually drew nested chains (the config key alone would
        // match a bare "nested" substring).
        assert!(
            r1.doc.to_string_pretty().contains("\"kind\": \"nested\""),
            "no nested cases sampled"
        );
    }

    #[test]
    fn soak_sampling_scales_means_to_the_horizon() {
        let mut rng = DetRng::seeded(17);
        for _ in 0..200 {
            let sc = sample_soak_scenario(&mut rng, 120_000);
            assert!(sc.at < 30_000);
            let ScenarioKind::Continuous {
                node_mtbf,
                node_mttr,
                link_mtbf,
                link_mttr,
            } = sc.kind
            else {
                panic!("soak sampler produced {:?}", sc.kind);
            };
            assert!((40_000..=120_000).contains(&node_mtbf));
            assert!((1_875..=7_500).contains(&node_mttr));
            // Either both link means are set or the link half is off.
            assert_eq!(link_mtbf > 0, link_mttr > 0);
        }
    }

    #[test]
    fn soak_fuzzing_is_deterministic_and_violation_free() {
        let cfg1 = ChaosConfig {
            jobs: 1,
            soak: true,
            cases: 12,
            ..tiny(31)
        };
        let cfg4 = ChaosConfig {
            jobs: 4,
            ..cfg1.clone()
        };
        let r1 = run_chaos(&cfg1).unwrap();
        let r4 = run_chaos(&cfg4).unwrap();
        assert_eq!(r1.doc.to_string_pretty(), r4.doc.to_string_pretty());
        assert_eq!(
            r1.failed, 0,
            "soak bug or oracle bug: {:#?}",
            r1.counterexamples
        );
        // The mix actually drew continuous processes.
        assert!(
            r1.doc.to_string_pretty().contains("continuous"),
            "no soak cases sampled"
        );
    }

    /// Satellite regression: degenerate golden horizons (tiny quick-mode
    /// runs) used to collapse the sampling windows — `range(1, 2)` pins
    /// every draw to cycle 1. With the shared [`MIN_HORIZON`] clamp the
    /// samplers stay in range *and* keep spreading their draws.
    #[test]
    fn tiny_horizon_sampling_stays_in_range_and_unbiased() {
        for horizon in [0, 1, 2, 3, 5, 7] {
            let mut rng = DetRng::seeded(0xBAD0 + horizon);
            let mut ats = std::collections::BTreeSet::new();
            for _ in 0..200 {
                let sc = sample_scenario(&mut rng, 8, horizon, 20_000);
                assert!(sc.at >= 1, "horizon {horizon}: at {} below 1", sc.at);
                assert!(sc.at < MIN_HORIZON, "horizon {horizon}: at {}", sc.at);
                assert!(sc.node < 8);
                ats.insert(sc.at);

                let net = sample_net_scenario(&mut rng, 8, horizon);
                assert!(net.at >= 1 && net.at < MIN_HORIZON);

                let nested = sample_nested_scenario(&mut rng, 8, horizon);
                assert!(nested.at >= 1 && nested.at < MIN_HORIZON);
            }
            assert!(
                ats.len() > 1,
                "horizon {horizon}: every scripted draw biased to cycle {:?}",
                ats
            );
        }
    }

    /// End-to-end quick-mode sweep over a tiny golden horizon: short runs
    /// must neither panic in the samplers nor lose jobs-level determinism.
    #[test]
    fn tiny_horizon_sweep_is_deterministic() {
        let cfg1 = ChaosConfig {
            jobs: 1,
            refs_per_node: 120,
            cases: 10,
            net_faults: true,
            nested: true,
            ..tiny(61)
        };
        let cfg4 = ChaosConfig {
            jobs: 4,
            ..cfg1.clone()
        };
        let r1 = run_chaos(&cfg1).unwrap();
        let r4 = run_chaos(&cfg4).unwrap();
        assert_eq!(r1.doc.to_string_pretty(), r4.doc.to_string_pretty());
        assert_eq!(r1.passed + r1.unrecoverable + r1.failed, 10);
    }

    #[test]
    fn case_sampling_is_deterministic() {
        let cfg = tiny(42);
        let mut a = cfg.case_rng(0);
        let mut b = cfg.case_rng(0);
        for _ in 0..50 {
            assert_eq!(
                sample_scenario(&mut a, 8, 100_000, 20_000),
                sample_scenario(&mut b, 8, 100_000, 20_000)
            );
        }
    }

    /// The deliberately-broken-invariant path: a fake runner reports an
    /// invariant violation for every injection at or after a threshold
    /// cycle. The artifact machinery must fire, bisect the injection time
    /// to exactly the threshold, and the artifact must replay (against the
    /// same fake) to the same verdict.
    #[test]
    fn broken_invariant_produces_a_shrunk_replayable_artifact() {
        const THRESHOLD: u64 = 33_000;
        let cfg = ChaosConfig {
            shrink_budget: 32,
            ..tiny(7)
        };
        let golden = GoldenRef {
            total_cycles: 100_000,
            owner_image: Vec::new(),
            private_floor: 0,
            quota: 0,
        };
        let fake = |cell: &Cell| -> CellOutcome {
            let broken = cell.scenario.at >= THRESHOLD;
            CellOutcome {
                cell_id: cell.id,
                metrics: RunMetrics::default(),
                links: Vec::new(),
                trace: Vec::new(),
                outcome: if broken {
                    RecoveryOutcome::InvariantViolation {
                        at: cell.scenario.at,
                        problems: vec!["item 3: two owners".into()],
                    }
                } else {
                    RecoveryOutcome::Recovered
                },
                owner_image: Vec::new(),
                stream_progress: Vec::new(),
                spans: Vec::new(),
                timeseries: Vec::new(),
                data_loss_certified: false,
                wall_ms: 0.0,
            }
        };
        let case = cfg.cell(
            5,
            0,
            Scenario {
                kind: ScenarioKind::Transient,
                node: 1,
                at: 90_000,
                repair_at: None,
            },
        );
        let cx = minimize_case(&cfg, &case, &golden, vec!["invariant: seeded".into()], fake);
        assert_eq!(cx.scenario.at, THRESHOLD, "bisection missed the threshold");
        assert_eq!(cx.original.at, 90_000);
        assert!(cx.reasons.iter().any(|r| r.contains("two owners")));
        // Round-trip through the artifact format and re-judge with the
        // same fake: identical verdict, deterministically.
        let back = Counterexample::parse(&cx.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, cx);
        let v1 = judge(
            &fake(&cfg.cell(back.case_id, back.seed_group, back.scenario)),
            &golden,
        );
        assert!(v1.is_fail());
    }

    #[test]
    fn fuzzing_is_deterministic_across_job_counts() {
        let cfg1 = ChaosConfig {
            jobs: 1,
            ..tiny(11)
        };
        let cfg4 = ChaosConfig {
            jobs: 4,
            ..tiny(11)
        };
        let r1 = run_chaos(&cfg1).unwrap();
        let r4 = run_chaos(&cfg4).unwrap();
        assert_eq!(r1.doc.to_string_pretty(), r4.doc.to_string_pretty());
        assert_eq!(
            r1.failed, 0,
            "protocol bug or oracle bug: {:#?}",
            r1.counterexamples
        );
    }
}
