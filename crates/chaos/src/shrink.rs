//! Counterexample minimization: bisection over the injection cycle plus
//! structural simplification of the scenario kind.
//!
//! The shrinker never assumes failures are monotonic in the injection
//! time — a candidate only replaces the current best if re-running it
//! *still fails* — so the result is always a genuinely failing scenario,
//! merely a simpler/earlier one when the search gets lucky.

use ftcoma_campaign::{Scenario, ScenarioKind};

/// Minimizes a failing scenario under a deterministic `still_fails`
/// predicate, spending at most `budget` predicate evaluations. Returns
/// the smallest failing scenario found and the evaluations spent.
///
/// Strategy, in order:
/// 1. structural: drop the third then second fault of a nested chain,
///    drop the second fault of a back-to-back pair, collapse a failure
///    cycle to its first fault, demote permanent to transient, demote a
///    continuous failure–repair process to one scripted fault (or to its
///    node-only half);
/// 2. bisect the injection cycle `at` downwards;
/// 3. for surviving back-to-back pairs and nested chains, bisect the
///    inter-fault gaps downwards;
/// 4. for surviving message-loss episodes, halve the drop `rate` downwards
///    (a lower rate is a gentler, easier-to-analyse reproduction).
pub fn shrink_scenario<F: FnMut(&Scenario) -> bool>(
    scenario: &Scenario,
    mut still_fails: F,
    budget: u32,
) -> (Scenario, u32) {
    let mut best = *scenario;
    let mut used: u32 = 0;

    // Structural simplifications: each candidate keeps `at` and `node`.
    let simpler: Vec<ScenarioKind> = match best.kind {
        ScenarioKind::BackToBack { .. } => {
            vec![ScenarioKind::Transient, ScenarioKind::Permanent]
        }
        // A nested chain shrinks towards fewer faults: first to its
        // back-to-back prefix (dropping the third fault), then to a single
        // scripted fault.
        ScenarioKind::Nested {
            gap,
            second_node,
            gap2,
            ..
        } => {
            let mut cands = vec![ScenarioKind::Transient, ScenarioKind::Permanent];
            cands.push(ScenarioKind::BackToBack { gap, second_node });
            if gap2 > 0 {
                cands.push(ScenarioKind::Nested {
                    gap,
                    second_node,
                    gap2: 0,
                    third_node: 0,
                    permanent_mask: 0,
                });
            }
            cands
        }
        ScenarioKind::Cycle { .. } => vec![ScenarioKind::Transient],
        ScenarioKind::Permanent => vec![ScenarioKind::Transient],
        // A continuous process shrinks towards a single scripted fault;
        // failing that, towards the node-only half of the process.
        ScenarioKind::Continuous {
            node_mtbf,
            node_mttr,
            link_mtbf,
            ..
        } => {
            let mut cands = vec![ScenarioKind::Transient, ScenarioKind::Permanent];
            if link_mtbf > 0 {
                cands.push(ScenarioKind::Continuous {
                    node_mtbf,
                    node_mttr,
                    link_mtbf: 0,
                    link_mttr: 0,
                });
            }
            cands
        }
        // Interconnect faults have no simpler node-level equivalent: a
        // link cut or router death is already its own minimal shape.
        ScenarioKind::Transient
        | ScenarioKind::None
        | ScenarioKind::LinkCut { .. }
        | ScenarioKind::RouterDown
        | ScenarioKind::MessageLoss { .. } => Vec::new(),
    };
    for kind in simpler {
        let cand = Scenario {
            kind,
            repair_at: None,
            // A continuous process may start at offset 0; a scripted fault
            // needs a positive injection cycle.
            at: if matches!(kind, ScenarioKind::Continuous { .. }) {
                best.at
            } else {
                best.at.max(1)
            },
            ..best
        };
        if attempt(&cand, &mut best, &mut used, budget, &mut still_fails) {
            break; // simplest first: stop at the first that still fails
        }
    }

    // Bisect `at` towards 1. `best.at` is known-failing; candidates below
    // that either fail (new best, search lower) or pass (raise the floor).
    let mut lo: u64 = 0;
    while best.at > lo + 1 && used < budget {
        let mid = lo + (best.at - lo) / 2;
        let cand = Scenario { at: mid, ..best };
        if !attempt(&cand, &mut best, &mut used, budget, &mut still_fails) {
            lo = mid;
        }
    }

    // Bisect a surviving back-to-back gap towards 1 (a tighter gap is the
    // sharper reproduction of a recovery-window hit).
    while let ScenarioKind::BackToBack { gap, second_node } = best.kind {
        if gap <= 1 || used >= budget {
            break;
        }
        let cand = Scenario {
            kind: ScenarioKind::BackToBack {
                gap: gap / 2,
                second_node,
            },
            ..best
        };
        if !attempt(&cand, &mut best, &mut used, budget, &mut still_fails) {
            break;
        }
    }

    // Bisect the gaps of a surviving nested chain towards 1, second gap
    // first (dropping it to 0 would change the shape, so it stops at 1).
    while let ScenarioKind::Nested {
        gap,
        second_node,
        gap2,
        third_node,
        permanent_mask,
    } = best.kind
    {
        if used >= budget || (gap <= 1 && gap2 <= 1) {
            break;
        }
        let cand = Scenario {
            kind: ScenarioKind::Nested {
                gap: if gap2 > 1 { gap } else { gap / 2 },
                second_node,
                gap2: if gap2 > 1 { gap2 / 2 } else { gap2 },
                third_node,
                permanent_mask,
            },
            ..best
        };
        if !attempt(&cand, &mut best, &mut used, budget, &mut still_fails) {
            break;
        }
    }

    // Halve a surviving message-loss rate towards 1 per-mille.
    while let ScenarioKind::MessageLoss { rate } = best.kind {
        if rate <= 1 || used >= budget {
            break;
        }
        let cand = Scenario {
            kind: ScenarioKind::MessageLoss { rate: rate / 2 },
            ..best
        };
        if !attempt(&cand, &mut best, &mut used, budget, &mut still_fails) {
            break;
        }
    }

    (best, used)
}

/// Runs one candidate; adopts it as the new best iff it still fails.
fn attempt<F: FnMut(&Scenario) -> bool>(
    cand: &Scenario,
    best: &mut Scenario,
    used: &mut u32,
    budget: u32,
    still_fails: &mut F,
) -> bool {
    if *used >= budget || *cand == *best {
        return false;
    }
    *used += 1;
    if still_fails(cand) {
        *best = *cand;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient_at(at: u64) -> Scenario {
        Scenario {
            kind: ScenarioKind::Transient,
            node: 1,
            at,
            repair_at: None,
        }
    }

    #[test]
    fn bisection_finds_the_exact_threshold() {
        // Monotonic predicate: fails iff at >= 12_345. Bisection converges
        // to exactly the threshold.
        let (best, used) = shrink_scenario(&transient_at(100_000), |s| s.at >= 12_345, 64);
        assert_eq!(best.at, 12_345);
        assert!(used <= 20, "spent {used} runs");
    }

    #[test]
    fn structural_shrink_prefers_the_simplest_failing_kind() {
        let b2b = Scenario {
            kind: ScenarioKind::BackToBack {
                gap: 1_000,
                second_node: 2,
            },
            node: 1,
            at: 50_000,
            repair_at: None,
        };
        // Everything fails: the shrinker should land on a plain transient.
        let (best, _) = shrink_scenario(&b2b, |_| true, 64);
        assert_eq!(best.kind, ScenarioKind::Transient);
        assert_eq!(best.at, 1);
        // Only back-to-back pairs fail: kind survives, gap shrinks.
        let (best, _) = shrink_scenario(
            &b2b,
            |s| matches!(s.kind, ScenarioKind::BackToBack { .. }),
            64,
        );
        assert!(matches!(best.kind, ScenarioKind::BackToBack { gap: 1, .. }));
    }

    #[test]
    fn nested_chains_drop_faults_then_tighten_gaps() {
        let nested = Scenario {
            kind: ScenarioKind::Nested {
                gap: 2_000,
                second_node: 3,
                gap2: 1_600,
                third_node: 5,
                permanent_mask: 1,
            },
            node: 1,
            at: 50_000,
            repair_at: None,
        };
        // Everything fails: the simplest reproduction is one transient.
        let (best, _) = shrink_scenario(&nested, |_| true, 64);
        assert_eq!(best.kind, ScenarioKind::Transient);
        // Only three-fault chains fail: the kind survives, both gaps
        // bisect down to 1.
        let (best, _) = shrink_scenario(
            &nested,
            |s| matches!(s.kind, ScenarioKind::Nested { gap2, .. } if gap2 > 0),
            128,
        );
        assert!(
            matches!(
                best.kind,
                ScenarioKind::Nested {
                    gap: 1,
                    gap2: 1,
                    ..
                }
            ),
            "{best:?}"
        );
    }

    #[test]
    fn message_loss_rate_halves_while_still_failing() {
        let ml = Scenario {
            kind: ScenarioKind::MessageLoss { rate: 800 },
            node: 1,
            at: 40_000,
            repair_at: None,
        };
        // Fails whenever the rate stays at or above 100 per-mille: the
        // halving loop walks 800 -> 400 -> 200 -> 100 and stops there.
        let (best, _) = shrink_scenario(
            &ml,
            |s| matches!(s.kind, ScenarioKind::MessageLoss { rate } if rate >= 100),
            64,
        );
        assert_eq!(best.kind, ScenarioKind::MessageLoss { rate: 100 });
        assert_eq!(best.at, 1);
    }

    #[test]
    fn continuous_demotes_to_a_scripted_fault_or_its_node_half() {
        let cont = Scenario {
            kind: ScenarioKind::Continuous {
                node_mtbf: 30_000,
                node_mttr: 5_000,
                link_mtbf: 40_000,
                link_mttr: 5_000,
            },
            node: 0,
            at: 0,
            repair_at: None,
        };
        // Everything fails: the simplest reproduction is one transient
        // fault, and the demoted fault gets a positive injection cycle.
        let (best, _) = shrink_scenario(&cont, |_| true, 64);
        assert_eq!(best.kind, ScenarioKind::Transient);
        assert_eq!(best.at, 1);
        // Only continuous processes fail: the link half is dropped, the
        // start offset survives untouched.
        let (best, _) = shrink_scenario(
            &cont,
            |s| matches!(s.kind, ScenarioKind::Continuous { .. }),
            64,
        );
        assert_eq!(
            best.kind,
            ScenarioKind::Continuous {
                node_mtbf: 30_000,
                node_mttr: 5_000,
                link_mtbf: 0,
                link_mttr: 0,
            }
        );
        assert_eq!(best.at, 0);
    }

    #[test]
    fn budget_zero_returns_the_original() {
        let s = transient_at(77);
        let (best, used) = shrink_scenario(&s, |_| true, 0);
        assert_eq!(best, s);
        assert_eq!(used, 0);
    }

    #[test]
    fn non_monotonic_failures_still_end_on_a_failing_scenario() {
        // Fails only on a narrow window — candidates outside it are
        // rejected, so the result must stay inside.
        let pred = |s: &Scenario| (40_000..41_000).contains(&s.at);
        let (best, _) = shrink_scenario(&transient_at(40_500), pred, 64);
        assert!(pred(&best), "shrunk to a passing scenario: {best:?}");
    }
}
