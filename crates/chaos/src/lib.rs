//! Adversarial fault-injection fuzzing for the FT-COMA machine.
//!
//! The paper's central claim is that a COMA can be made fault tolerant
//! with modest extensions to its coherence protocol. The campaign runner
//! already measures the *cost* of that claim; this crate attacks its
//! *correctness*: a seeded fuzzer sweeps failure injections across every
//! phase of the protocol lifecycle — mid-transaction, inside the two-phase
//! checkpoint establishment window, during drain, during
//! rollback/reconfiguration, and in back-to-back pairs — and judges every
//! run with a three-layer oracle ([`oracle`]):
//!
//! 1. protocol invariants after recovery,
//! 2. golden replay against an unfaulted execution of the same seed,
//! 3. liveness (reference quotas met, bounded termination).
//!
//! Failures are shrunk by bisection ([`shrink`]) and written as standalone
//! replayable artifacts ([`artifact`]); `ftcoma chaos --replay` reproduces
//! them byte-identically. Everything derives from one campaign seed, so a
//! whole fuzzing run is itself deterministic across `--jobs` settings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
pub mod oracle;
pub mod shrink;

pub use artifact::Counterexample;
pub use engine::{replay, run_chaos, ChaosConfig, ChaosReport};
pub use oracle::{judge, GoldenRef, Verdict};
pub use shrink::shrink_scenario;
