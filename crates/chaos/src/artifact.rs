//! Counterexample artifacts: everything needed to replay one failing case
//! byte-identically, as a small standalone JSON document.
//!
//! `ftcoma chaos --replay <artifact>` parses the document, rebuilds the
//! golden reference and the faulted cell from the recorded seeds, re-runs
//! both and re-judges — the same code path the fuzzer used, so a
//! counterexample either reproduces exactly or the artifact is stale.

use ftcoma_campaign::Scenario;
use ftcoma_machine::export::{span_json, SCHEMA_VERSION};
use ftcoma_sim::span::{SpanPhase, SpanRecord};
use ftcoma_sim::Json;

/// One minimized failing case, self-contained for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Campaign master seed the fuzzer ran with.
    pub campaign_seed: u64,
    /// Seed group (0-based) this case belonged to.
    pub seed_group: u64,
    /// The machine seed derived for that group (recorded redundantly so an
    /// artifact is replayable even if the derivation scheme evolves).
    pub machine_seed: u64,
    /// Workload preset name.
    pub workload: String,
    /// Machine size.
    pub nodes: u16,
    /// Checkpoint frequency (recovery points per second).
    pub freq_hz: f64,
    /// Measured references per node (warmup is always 0 in chaos runs).
    pub refs_per_node: u64,
    /// Global case id within the fuzzing run.
    pub case_id: u64,
    /// The *shrunk* scenario that still fails.
    pub scenario: Scenario,
    /// The originally sampled scenario the shrinker started from.
    pub original: Scenario,
    /// Oracle reasons recorded for the shrunk scenario.
    pub reasons: Vec<String>,
    /// Predicate evaluations the shrinker spent.
    pub shrink_runs: u32,
    /// Recovery-phase spans (detection, rollback, reconfiguration,
    /// replay) collected from the shrunk case's final traced run, capped
    /// at 64 records. Empty when the failing run saw no recovery at all.
    pub recovery_timeline: Vec<SpanRecord>,
}

impl Counterexample {
    /// Serializes the artifact (order-stable, byte-deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("kind", Json::from("chaos_counterexample")),
            (
                "campaign_seed",
                Json::from(format!("0x{:016x}", self.campaign_seed)),
            ),
            ("seed_group", Json::from(self.seed_group)),
            (
                "machine_seed",
                Json::from(format!("0x{:016x}", self.machine_seed)),
            ),
            ("workload", Json::from(self.workload.as_str())),
            ("nodes", Json::from(u64::from(self.nodes))),
            ("freq", Json::from(self.freq_hz)),
            ("refs_per_node", Json::from(self.refs_per_node)),
            ("case_id", Json::from(self.case_id)),
            ("scenario", self.scenario.to_json()),
            ("original", self.original.to_json()),
            (
                "reasons",
                Json::arr(self.reasons.iter().map(|r| Json::from(r.as_str()))),
            ),
            ("shrink_runs", Json::from(u64::from(self.shrink_runs))),
            (
                "recovery_timeline",
                Json::arr(self.recovery_timeline.iter().map(span_json)),
            ),
        ])
    }

    /// Parses an artifact document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or malformed field.
    pub fn parse(text: &str) -> Result<Counterexample, String> {
        let doc = Json::parse(text).map_err(|e| format!("artifact is not valid JSON: {e}"))?;
        if doc.get("kind").and_then(Json::as_str) != Some("chaos_counterexample") {
            return Err("not a chaos counterexample (missing kind)".into());
        }
        let hex = |key: &str| -> Result<u64, String> {
            let s = doc
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("artifact needs a string `{key}`"))?;
            let digits = s.strip_prefix("0x").unwrap_or(s);
            u64::from_str_radix(digits, 16).map_err(|e| format!("bad `{key}`: {e}"))
        };
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("artifact needs an integer `{key}`"))
        };
        let scenario = |key: &str| -> Result<Scenario, String> {
            Scenario::from_json(
                doc.get(key)
                    .ok_or_else(|| format!("artifact needs a `{key}` scenario"))?,
            )
            .map_err(|e| format!("bad `{key}`: {e}"))
        };
        Ok(Counterexample {
            campaign_seed: hex("campaign_seed")?,
            seed_group: num("seed_group")?,
            machine_seed: hex("machine_seed")?,
            workload: doc
                .get("workload")
                .and_then(Json::as_str)
                .ok_or("artifact needs a string `workload`")?
                .to_string(),
            nodes: u16::try_from(num("nodes")?).map_err(|_| "`nodes` out of range".to_string())?,
            freq_hz: doc
                .get("freq")
                .and_then(Json::as_f64)
                .ok_or("artifact needs a number `freq`")?,
            refs_per_node: num("refs_per_node")?,
            case_id: num("case_id")?,
            scenario: scenario("scenario")?,
            original: scenario("original")?,
            reasons: doc
                .get("reasons")
                .and_then(Json::as_array)
                .map(|xs| {
                    xs.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
            shrink_runs: num("shrink_runs").map(|v| v as u32).unwrap_or(0),
            // Tolerant: pre-v5 artifacts have no timeline; malformed rows
            // are skipped rather than failing the whole parse.
            recovery_timeline: doc
                .get("recovery_timeline")
                .and_then(Json::as_array)
                .map(|xs| xs.iter().filter_map(parse_span).collect())
                .unwrap_or_default(),
        })
    }
}

/// Parses one serialized span row ([`span_json`] format); `None` for
/// malformed rows.
fn parse_span(row: &Json) -> Option<SpanRecord> {
    Some(SpanRecord {
        id: row.get("id").and_then(Json::as_u64)?,
        parent: row.get("parent").and_then(Json::as_u64)?,
        phase: SpanPhase::from_name(row.get("phase").and_then(Json::as_str)?)?,
        node: u16::try_from(row.get("node").and_then(Json::as_u64)?).ok()?,
        start: row.get("start").and_then(Json::as_u64)?,
        end: row.get("end").and_then(Json::as_u64)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftcoma_campaign::ScenarioKind;

    fn sample() -> Counterexample {
        Counterexample {
            campaign_seed: 0xDEAD_BEEF_0000_0001,
            seed_group: 2,
            machine_seed: 0x1234,
            workload: "water".into(),
            nodes: 8,
            freq_hz: 1000.0,
            refs_per_node: 4000,
            case_id: 17,
            scenario: Scenario {
                kind: ScenarioKind::BackToBack {
                    gap: 13,
                    second_node: 3,
                },
                node: 1,
                at: 42_000,
                repair_at: None,
            },
            original: Scenario {
                kind: ScenarioKind::BackToBack {
                    gap: 900,
                    second_node: 3,
                },
                node: 1,
                at: 88_000,
                repair_at: None,
            },
            reasons: vec!["golden-replay: item 7 lost (golden value 9)".into()],
            shrink_runs: 21,
            recovery_timeline: vec![
                SpanRecord {
                    id: 40,
                    parent: 0,
                    phase: SpanPhase::Recovery,
                    node: 1,
                    start: 42_000,
                    end: 44_500,
                },
                SpanRecord {
                    id: 41,
                    parent: 40,
                    phase: SpanPhase::Rollback,
                    node: 1,
                    start: 42_000,
                    end: 42_800,
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let cx = sample();
        let text = cx.to_json().to_string_pretty();
        let back = Counterexample::parse(&text).unwrap();
        assert_eq!(back, cx);
        // Serialization is byte-deterministic.
        assert_eq!(text, back.to_json().to_string_pretty());
    }

    #[test]
    fn pre_v5_artifacts_parse_with_empty_timeline() {
        let mut doc = sample().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "recovery_timeline");
        }
        let back = Counterexample::parse(&doc.to_string_pretty()).unwrap();
        assert!(back.recovery_timeline.is_empty());
        assert_eq!(back.case_id, sample().case_id);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(Counterexample::parse("{}").is_err());
        assert!(Counterexample::parse("not json").is_err());
        let mut doc = sample().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "scenario");
        }
        assert!(Counterexample::parse(&doc.to_string_pretty()).is_err());
    }
}
