//! Deterministic per-message network fault plans.
//!
//! A [`NetFaultPlan`] decides, message by message, whether the network
//! delivers, drops, duplicates or delays a packet. Decisions are a pure
//! function of the plan's seed and the *ordinal* of the message (its
//! position in the send sequence), not of simulated time or of any shared
//! generator state — so a faulted run replays byte-identically at any job
//! count, and two clones of a plan produce identical decision streams.

use ftcoma_sim::{derive_seed, Cycles};

/// Stream constant separating delay-amount draws from the drop/dup/delay
/// classification draw of the same message ordinal.
const DELAY_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// What the fault plan decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The packet is delivered normally.
    Deliver,
    /// The packet vanishes in the network.
    Drop,
    /// The packet is delivered twice (a spurious retransmission).
    Duplicate,
    /// The packet is delivered late by the given number of cycles.
    Delay(Cycles),
}

/// A seeded plan that drops, duplicates or delays individual messages
/// deterministically.
///
/// Rates are integer per-mille (so the plan stays `Eq` and replayable);
/// they are applied in the fixed order drop, duplicate, delay against a
/// single per-message roll. An optional `[start, end)` cycle window limits
/// the plan to a burst: outside it every packet is delivered (the ordinal
/// still advances, keeping decisions independent of when the window
/// opens).
///
/// # Example
///
/// ```
/// use ftcoma_net::{FaultDecision, NetFaultPlan};
///
/// let mut plan = NetFaultPlan::message_loss(7, 1000); // drop everything
/// assert_eq!(plan.decide(0), FaultDecision::Drop);
/// let mut windowed = NetFaultPlan::message_loss(7, 1000).with_window(100, 200);
/// assert_eq!(windowed.decide(0), FaultDecision::Deliver); // before the burst
/// assert_eq!(windowed.decide(150), FaultDecision::Drop); // inside it
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultPlan {
    seed: u64,
    drop_per_mille: u32,
    dup_per_mille: u32,
    delay_per_mille: u32,
    max_delay: Cycles,
    window: Option<(Cycles, Cycles)>,
    sent: u64,
}

impl NetFaultPlan {
    /// A plan that delivers everything (rates default to zero).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay: 0,
            window: None,
            sent: 0,
        }
    }

    /// A plan dropping `per_mille`/1000 of all packets.
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000`.
    pub fn message_loss(seed: u64, per_mille: u32) -> Self {
        assert!(per_mille <= 1000, "rate is per-mille");
        Self {
            drop_per_mille: per_mille,
            ..Self::new(seed)
        }
    }

    /// A plan duplicating `per_mille`/1000 of all packets.
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000`.
    pub fn duplication(seed: u64, per_mille: u32) -> Self {
        assert!(per_mille <= 1000, "rate is per-mille");
        Self {
            dup_per_mille: per_mille,
            ..Self::new(seed)
        }
    }

    /// A plan delaying `per_mille`/1000 of all packets by 1..=`max_delay`
    /// extra cycles.
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000` or `max_delay == 0`.
    pub fn delays(seed: u64, per_mille: u32, max_delay: Cycles) -> Self {
        assert!(per_mille <= 1000, "rate is per-mille");
        assert!(max_delay > 0, "delay plans need a positive max_delay");
        Self {
            delay_per_mille: per_mille,
            max_delay,
            ..Self::new(seed)
        }
    }

    /// Restricts the plan to the cycle window `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn with_window(mut self, start: Cycles, end: Cycles) -> Self {
        assert!(start < end, "fault window must be non-empty");
        self.window = Some((start, end));
        self
    }

    /// Combined fault rate in per-mille (0 = the plan never misbehaves).
    pub fn rate_per_mille(&self) -> u32 {
        self.drop_per_mille + self.dup_per_mille + self.delay_per_mille
    }

    /// Arms an inert (zero-rate) plan as a windowed message-loss episode
    /// *in place*, keeping its seed and send ordinal. A plan that stood by
    /// delivering everything during a shared run prefix then rolls exactly
    /// the dice a freshly-built `message_loss(seed, ..)` plan would have
    /// rolled for the same send sequence — the key to forking a
    /// network-fault case from a snapshot byte-identically.
    ///
    /// # Panics
    ///
    /// Panics if the plan already has a non-zero rate, `per_mille > 1000`,
    /// or the window is empty.
    pub fn arm_message_loss(&mut self, per_mille: u32, start: Cycles, end: Cycles) {
        assert!(self.rate_per_mille() == 0, "plan is already armed");
        assert!(per_mille <= 1000, "rate is per-mille");
        assert!(start < end, "fault window must be non-empty");
        self.drop_per_mille = per_mille;
        self.window = Some((start, end));
    }

    /// Decides the fate of the next packet, sent at time `now`.
    pub fn decide(&mut self, now: Cycles) -> FaultDecision {
        let ordinal = self.sent;
        self.sent += 1;
        if let Some((start, end)) = self.window {
            if now < start || now >= end {
                return FaultDecision::Deliver;
            }
        }
        let roll = (derive_seed(self.seed, ordinal) % 1000) as u32;
        if roll < self.drop_per_mille {
            FaultDecision::Drop
        } else if roll < self.drop_per_mille + self.dup_per_mille {
            FaultDecision::Duplicate
        } else if roll < self.drop_per_mille + self.dup_per_mille + self.delay_per_mille {
            let span = self.max_delay.max(1);
            FaultDecision::Delay(1 + derive_seed(self.seed, ordinal ^ DELAY_STREAM) % span)
        } else {
            FaultDecision::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_produce_identical_decision_streams() {
        let mut a = NetFaultPlan::message_loss(0xDEAD, 300).with_window(0, 1_000_000);
        let mut b = a.clone();
        for t in 0..500 {
            assert_eq!(a.decide(t), b.decide(t));
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut plan = NetFaultPlan::message_loss(42, 500);
        let drops = (0..2000)
            .filter(|&t| plan.decide(t) == FaultDecision::Drop)
            .count();
        assert!(
            (800..1200).contains(&drops),
            "expected ~1000 drops at 500 per-mille, got {drops}"
        );
    }

    #[test]
    fn window_gates_the_burst_without_desyncing_ordinals() {
        let mut windowed = NetFaultPlan::message_loss(9, 1000).with_window(100, 200);
        assert_eq!(windowed.decide(99), FaultDecision::Deliver);
        assert_eq!(windowed.decide(100), FaultDecision::Drop);
        assert_eq!(windowed.decide(199), FaultDecision::Drop);
        assert_eq!(windowed.decide(200), FaultDecision::Deliver);
        // Ordinals advance outside the window too: the third in-window
        // decision equals the third decision of an unwindowed clone.
        let mut gated = NetFaultPlan::message_loss(11, 500).with_window(0, u64::MAX);
        let mut free = NetFaultPlan::message_loss(11, 500);
        for t in 0..64 {
            assert_eq!(gated.decide(t), free.decide(t));
        }
    }

    #[test]
    fn duplicates_and_delays_occur_at_their_rates() {
        let mut plan = NetFaultPlan::duplication(3, 400);
        assert!((0..200).any(|t| plan.decide(t) == FaultDecision::Duplicate));
        let mut plan = NetFaultPlan::delays(3, 400, 50);
        let mut seen_delay = false;
        for t in 0..200 {
            if let FaultDecision::Delay(d) = plan.decide(t) {
                assert!((1..=50).contains(&d));
                seen_delay = true;
            }
        }
        assert!(seen_delay);
    }

    #[test]
    fn arming_a_standby_plan_matches_a_fresh_plan_with_shifted_ordinals() {
        // A standby plan burns 100 ordinals delivering, then arms. From
        // that point it must decide exactly like a fresh message_loss plan
        // whose ordinal counter was advanced by the same 100 sends.
        let mut standby = NetFaultPlan::new(77);
        for t in 0..100 {
            assert_eq!(standby.decide(t), FaultDecision::Deliver);
        }
        standby.arm_message_loss(500, 100, 10_000);
        let mut fresh = NetFaultPlan::message_loss(77, 500).with_window(100, 10_000);
        for t in 0..100 {
            fresh.decide(t); // advance ordinals through the prefix
        }
        for t in 100..1_000 {
            assert_eq!(standby.decide(t), fresh.decide(t));
        }
    }

    #[test]
    #[should_panic(expected = "already armed")]
    fn arming_twice_panics() {
        let mut plan = NetFaultPlan::new(1);
        plan.arm_message_loss(10, 0, 100);
        plan.arm_message_loss(10, 0, 100);
    }

    #[test]
    fn zero_rate_plan_always_delivers() {
        let mut plan = NetFaultPlan::new(1);
        assert_eq!(plan.rate_per_mille(), 0);
        for t in 0..100 {
            assert_eq!(plan.decide(t), FaultDecision::Deliver);
        }
    }
}
