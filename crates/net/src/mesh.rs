//! 2-D mesh with XY routing, two sub-networks and per-link contention.
//!
//! The mesh is a fault domain: links and routers can be failed at runtime
//! ([`Mesh::fail_link`], [`Mesh::fail_router`]), after which routing
//! detours around the damage (XY with a deterministic breadth-first
//! misroute fallback) and destinations with no healthy path are reported
//! as a typed [`RouteError`] instead of a phantom arrival.

use std::collections::{BTreeSet, VecDeque};

use ftcoma_mem::NodeId;
use ftcoma_sim::{Cycles, FxHashMap};

/// Which physical sub-network a message travels on.
///
/// The simulated machine uses two independent sub-networks so replies can
/// never be blocked behind requests (the classic protocol-deadlock
/// avoidance the paper inherits from the KSR1/DASH generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetClass {
    /// Requests and forwarded requests.
    Request,
    /// Replies, data transfers and acknowledgements.
    Reply,
}

impl NetClass {
    /// Stable lowercase name, used by the metrics exporters.
    pub fn name(&self) -> &'static str {
        match self {
            NetClass::Request => "request",
            NetClass::Reply => "reply",
        }
    }
}

/// How link occupancy is modelled under contention.
///
/// Zero-load latency is identical for both models; they differ only in how
/// long a message holds the links of its path when traffic collides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchingModel {
    /// Virtual cut-through approximation: each link is held only for the
    /// message's own serialization time; a blocked worm is assumed to be
    /// buffered at the blocking router. Cheapest and the default.
    #[default]
    VirtualCutThrough,
    /// Wormhole switching: a worm whose header stalls downstream keeps
    /// *holding every upstream link it spans* until its tail drains —
    /// head-of-line blocking propagates backwards, exactly like the
    /// paper's "worm-hole routed synchronous mesh".
    Wormhole,
}

/// Timing parameters of the network and its interfaces.
///
/// Defaults are calibrated against Table 2 of the paper: with the memory
/// timings of `ftcoma-machine`, a remote read miss costs 116 cycles at one
/// hop and 124 at two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Flit width in bytes (32-bit flits in the paper).
    pub flit_bytes: u64,
    /// Per-hop router latency in cycles (covers fall-through plus switching).
    pub router_delay: Cycles,
    /// Network-interface overhead charged once per message at injection.
    pub ni_overhead: Cycles,
    /// Minimum message length in flits (header-only control messages).
    pub header_flits: u64,
    /// Latency of a message a node sends to itself (no network traversal).
    pub local_delay: Cycles,
    /// Link-occupancy model under contention.
    pub switching: SwitchingModel,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            flit_bytes: 4,
            router_delay: 4,
            ni_overhead: 8,
            header_flits: 4,
            local_delay: 1,
            switching: SwitchingModel::default(),
        }
    }
}

impl NetConfig {
    /// The default configuration with true wormhole link holding.
    pub fn wormhole() -> Self {
        Self {
            switching: SwitchingModel::Wormhole,
            ..Self::default()
        }
    }
}

impl NetConfig {
    /// Length in flits of a message carrying `payload_bytes` of data.
    ///
    /// The header is pipelined with the payload, so a message occupies the
    /// wire for `max(header, payload)` flit times; control messages are
    /// header-only.
    pub fn flits(&self, payload_bytes: u64) -> u64 {
        self.header_flits
            .max(payload_bytes.div_ceil(self.flit_bytes))
    }

    /// Zero-load latency of a message over `hops` hops.
    pub fn zero_load_latency(&self, hops: u64, payload_bytes: u64) -> Cycles {
        if hops == 0 {
            self.local_delay
        } else {
            self.ni_overhead + hops * self.router_delay + self.flits(payload_bytes)
        }
    }
}

/// Why a message could not be routed.
///
/// Returned by [`Mesh::send`] when the mesh's fault state leaves no healthy
/// path between two routers — the caller sees a typed error instead of a
/// phantom arrival on dead hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No healthy path exists between the two nodes: an endpoint router
    /// failed, or every route between them is severed.
    Unreachable {
        /// Sending node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unreachable { from, to } => {
                write!(f, "no healthy route from {from} to {to}")
            }
        }
    }
}

/// Shape of the mesh and the node → coordinate mapping.
///
/// # Example
///
/// ```
/// use ftcoma_net::MeshGeometry;
/// use ftcoma_mem::NodeId;
///
/// let g = MeshGeometry::for_nodes(16); // 4x4, as in the paper
/// assert_eq!((g.cols(), g.rows()), (4, 4));
/// assert_eq!(g.hops(NodeId::new(0), NodeId::new(5)), 2); // (0,0) -> (1,1)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshGeometry {
    cols: usize,
    rows: usize,
    nodes: usize,
}

impl MeshGeometry {
    /// A `cols × rows` mesh fully populated with `cols * rows` nodes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be positive");
        Self {
            cols,
            rows,
            nodes: cols * rows,
        }
    }

    /// The most-square mesh holding exactly `n` nodes.
    ///
    /// All machine sizes evaluated in the paper factor into near-square
    /// rectangles (9 = 3×3, 16 = 4×4, 30 = 5×6, 42 = 6×7, 56 = 7×8). For
    /// sizes with no balanced factorisation (e.g. primes), the smallest
    /// near-square grid with at least `n` positions is used and trailing
    /// positions are left empty.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "at least one node required");
        let mut best: Option<(usize, usize)> = None;
        for c in 1..=n {
            if n.is_multiple_of(c) {
                let r = n / c;
                // Prefer the factorisation with the smallest aspect skew.
                let skew = c.abs_diff(r);
                if best.is_none_or(|(bc, br)| skew < bc.abs_diff(br)) {
                    best = Some((c, r));
                }
            }
        }
        let (c, r) = best.expect("n has at least the trivial factorisation");
        // Reject degenerate 1×n strips for non-tiny n: use a near-square
        // grid with empty positions instead.
        if c.min(r) == 1 && n > 3 {
            let side = (n as f64).sqrt().ceil() as usize;
            let rows = n.div_ceil(side);
            Self {
                cols: side,
                rows,
                nodes: n,
            }
        } else {
            Self {
                cols: c.max(r),
                rows: c.min(r),
                nodes: n,
            }
        }
    }

    /// Mesh width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mesh height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        assert!(
            i < self.nodes,
            "node {node} outside mesh of {} nodes",
            self.nodes
        );
        (i % self.cols, i / self.cols)
    }

    /// Manhattan distance between two nodes (XY routing path length).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The XY-routing path from `a` to `b` as a list of directed unit links
    /// `((x, y), (x', y'))`: first all X movement, then all Y movement.
    pub fn path(&self, a: NodeId, b: NodeId) -> Vec<((usize, usize), (usize, usize))> {
        let (mut x, mut y) = self.coords(a);
        let (bx, by) = self.coords(b);
        let mut links = Vec::with_capacity(self.hops(a, b) as usize);
        while x != bx {
            let nx = if bx > x { x + 1 } else { x - 1 };
            links.push(((x, y), (nx, y)));
            x = nx;
        }
        while y != by {
            let ny = if by > y { y + 1 } else { y - 1 };
            links.push(((x, y), (x, ny)));
            y = ny;
        }
        links
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent (including node-local ones).
    pub messages: u64,
    /// Total payload bytes carried.
    pub payload_bytes: u64,
    /// Total cycles messages spent queued waiting for busy links.
    pub contention_cycles: Cycles,
    /// Total link-occupancy cycles (utilisation numerator).
    pub link_busy_cycles: Cycles,
    /// Extra hops (beyond the Manhattan distance) taken by messages
    /// detouring around failed links or routers.
    pub detour_hops: u64,
}

type Link = ((usize, usize), (usize, usize));

/// Per-link accumulated statistics (one directed link on one sub-network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages whose path crossed this link.
    pub messages: u64,
    /// Cycles this link was held by traversing messages.
    pub busy_cycles: Cycles,
    /// Cycles message headers waited for this link to free up.
    pub contention_cycles: Cycles,
}

/// One row of [`Mesh::link_report`]: a directed link, its sub-network and
/// its accumulated statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// Source router coordinates `(x, y)`.
    pub from: (usize, usize),
    /// Destination router coordinates `(x, y)`.
    pub to: (usize, usize),
    /// Which sub-network.
    pub class: NetClass,
    /// Is the link usable — neither it nor its endpoint routers failed?
    pub alive: bool,
    /// Accumulated statistics.
    pub stats: LinkStats,
}

impl LinkReport {
    /// Link utilization over an observation window of `total_cycles`
    /// (busy / total, 0.0 for an empty window).
    pub fn utilization(&self, total_cycles: Cycles) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.stats.busy_cycles as f64 / total_cycles as f64
        }
    }
}

/// The mesh network: computes message arrival times under contention.
///
/// # Example
///
/// ```
/// use ftcoma_net::{Mesh, MeshGeometry, NetClass, NetConfig};
/// use ftcoma_mem::NodeId;
///
/// let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
/// // 1-hop header-only message at zero load: 8 + 4 + 4 = 16 cycles.
/// let arrival = mesh.send(0, NodeId::new(0), NodeId::new(1), NetClass::Request, 0);
/// assert_eq!(arrival, Ok(16));
/// ```
#[derive(Debug, Clone)]
pub struct Mesh {
    geo: MeshGeometry,
    cfg: NetConfig,
    /// Next-free time of each directed link, per sub-network.
    link_free: FxHashMap<(Link, NetClass), Cycles>,
    stats: NetStats,
    /// Per-link breakdown of the aggregate statistics.
    link_stats: FxHashMap<(Link, NetClass), LinkStats>,
    /// Severed links (both directions of a cut are inserted). `BTreeSet`
    /// keeps iteration — and therefore any derived output — deterministic.
    failed_links: BTreeSet<Link>,
    /// Failed routers by coordinate; no message may traverse or terminate
    /// at a failed router.
    failed_routers: BTreeSet<(usize, usize)>,
    /// When set, [`Mesh::send`] records the per-hop occupancy segments of
    /// the last routed message for the span exporter. Pure observation:
    /// arrival times and statistics are identical either way.
    hop_trace: bool,
    /// The last traced message's hops (see [`Mesh::last_hops`]).
    last_hops: Vec<HopSegment>,
}

/// One traversed hop of a traced message: the directed link plus the
/// interval during which the message's header held it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSegment {
    /// Source router coordinates.
    pub from: (usize, usize),
    /// Destination router coordinates.
    pub to: (usize, usize),
    /// Cycle the header claimed the link (after any contention wait).
    pub start: Cycles,
    /// Cycle the message cleared this hop (the next hop's claim, or the
    /// final arrival for the last hop).
    pub end: Cycles,
}

impl Mesh {
    /// Creates an idle, fully healthy mesh.
    pub fn new(geo: MeshGeometry, cfg: NetConfig) -> Self {
        Self {
            geo,
            cfg,
            link_free: FxHashMap::default(),
            stats: NetStats::default(),
            link_stats: FxHashMap::default(),
            failed_links: BTreeSet::new(),
            failed_routers: BTreeSet::new(),
            hop_trace: false,
            last_hops: Vec::new(),
        }
    }

    /// Enables or disables per-hop recording for subsequent sends. Off by
    /// default; enabling it changes no timing and no statistics.
    pub fn set_hop_trace(&mut self, on: bool) {
        self.hop_trace = on;
        if !on {
            self.last_hops.clear();
        }
    }

    /// The hop segments of the most recent [`Mesh::send`] while hop
    /// tracing is on (empty for node-local sends or when tracing is off).
    pub fn last_hops(&self) -> &[HopSegment] {
        &self.last_hops
    }

    /// The mesh geometry.
    pub fn geometry(&self) -> &MeshGeometry {
        &self.geo
    }

    /// The timing configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Severs the bidirectional link between the routers of `a` and `b`;
    /// later traffic detours around it.
    ///
    /// # Panics
    ///
    /// Panics if the two nodes are not mesh-adjacent.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        let ca = self.geo.coords(a);
        let cb = self.geo.coords(b);
        assert_eq!(
            ca.0.abs_diff(cb.0) + ca.1.abs_diff(cb.1),
            1,
            "fail_link needs mesh-adjacent nodes, got {a} at {ca:?} and {b} at {cb:?}"
        );
        self.failed_links.insert((ca, cb));
        self.failed_links.insert((cb, ca));
    }

    /// Restores a severed link between the routers of `a` and `b` (both
    /// directions); later traffic takes it again. Repairing a link that
    /// was never cut is a no-op, so repair schedules may race failures.
    ///
    /// # Panics
    ///
    /// Panics if the two nodes are not mesh-adjacent.
    pub fn repair_link(&mut self, a: NodeId, b: NodeId) {
        let ca = self.geo.coords(a);
        let cb = self.geo.coords(b);
        assert_eq!(
            ca.0.abs_diff(cb.0) + ca.1.abs_diff(cb.1),
            1,
            "repair_link needs mesh-adjacent nodes, got {a} at {ca:?} and {b} at {cb:?}"
        );
        self.failed_links.remove(&(ca, cb));
        self.failed_links.remove(&(cb, ca));
    }

    /// Marks `node`'s router failed: no message may traverse or terminate
    /// at it until [`Mesh::repair_router`].
    pub fn fail_router(&mut self, node: NodeId) {
        self.failed_routers.insert(self.geo.coords(node));
    }

    /// Ties mesh health to a permanent node failure: the dead node's
    /// router dies with it, so post-reconfiguration traffic can no longer
    /// be routed through dead hardware.
    pub fn fail_node(&mut self, node: NodeId) {
        self.fail_router(node);
    }

    /// Restores `node`'s router (a repaired node rejoins the mesh).
    pub fn repair_router(&mut self, node: NodeId) {
        self.failed_routers.remove(&self.geo.coords(node));
    }

    /// Is `node`'s router currently failed?
    pub fn router_failed(&self, node: NodeId) -> bool {
        self.failed_routers.contains(&self.geo.coords(node))
    }

    /// Has neither a link nor a router failed?
    pub fn healthy(&self) -> bool {
        self.failed_links.is_empty() && self.failed_routers.is_empty()
    }

    /// Is there a healthy route from `from` to `to`?
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        from == to || self.route(from, to).is_ok()
    }

    /// May a message hop from router `a` to the adjacent router `b`?
    fn hop_ok(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        !self.failed_routers.contains(&b) && !self.failed_links.contains(&(a, b))
    }

    /// The healthy route from `from` to `to`: the XY path when it is
    /// intact, otherwise the shortest detour over healthy links and
    /// routers (breadth-first misroute with a fixed `+x, -x, +y, -y`
    /// neighbour order, so the chosen detour is deterministic). Returns
    /// the links and the extra hops relative to the Manhattan distance.
    fn route(&self, from: NodeId, to: NodeId) -> Result<(Vec<Link>, u64), RouteError> {
        let xy = self.geo.path(from, to);
        if self.healthy() {
            return Ok((xy, 0));
        }
        let src = self.geo.coords(from);
        let dst = self.geo.coords(to);
        if self.failed_routers.contains(&src) || self.failed_routers.contains(&dst) {
            return Err(RouteError::Unreachable { from, to });
        }
        if xy.iter().all(|&(a, b)| self.hop_ok(a, b)) {
            return Ok((xy, 0));
        }
        let (cols, rows) = (self.geo.cols(), self.geo.rows());
        let idx = |(x, y): (usize, usize)| y * cols + x;
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; cols * rows];
        let mut seen = vec![false; cols * rows];
        let mut queue = VecDeque::new();
        seen[idx(src)] = true;
        queue.push_back(src);
        'bfs: while let Some(at @ (x, y)) = queue.pop_front() {
            let mut neighbours = [None; 4];
            if x + 1 < cols {
                neighbours[0] = Some((x + 1, y));
            }
            if x > 0 {
                neighbours[1] = Some((x - 1, y));
            }
            if y + 1 < rows {
                neighbours[2] = Some((x, y + 1));
            }
            if y > 0 {
                neighbours[3] = Some((x, y - 1));
            }
            for nb in neighbours.into_iter().flatten() {
                if !seen[idx(nb)] && self.hop_ok(at, nb) {
                    seen[idx(nb)] = true;
                    parent[idx(nb)] = Some(at);
                    if nb == dst {
                        break 'bfs;
                    }
                    queue.push_back(nb);
                }
            }
        }
        if !seen[idx(dst)] {
            return Err(RouteError::Unreachable { from, to });
        }
        let mut links = Vec::new();
        let mut cur = dst;
        while cur != src {
            let prev = parent[idx(cur)].expect("reached routers have parents");
            links.push((prev, cur));
            cur = prev;
        }
        links.reverse();
        let detour = links.len() as u64 - self.geo.hops(from, to);
        Ok((links, detour))
    }

    /// Sends a message at time `now`; returns its arrival time at `to`, or
    /// a [`RouteError`] when mesh faults leave no healthy path (in which
    /// case nothing is sent and no statistics change).
    ///
    /// The message reserves every link of its path for its serialization
    /// time on the given sub-network; waiting for busy links is accounted in
    /// [`NetStats::contention_cycles`]. The path is the XY route while it is
    /// healthy, or the shortest deterministic detour otherwise (extra hops
    /// accounted in [`NetStats::detour_hops`]). Node-local messages bypass
    /// the network entirely and arrive after `local_delay`.
    pub fn send(
        &mut self,
        now: Cycles,
        from: NodeId,
        to: NodeId,
        class: NetClass,
        payload_bytes: u64,
    ) -> Result<Cycles, RouteError> {
        if self.hop_trace {
            self.last_hops.clear();
        }
        if from == to {
            self.stats.messages += 1;
            self.stats.payload_bytes += payload_bytes;
            return Ok(now + self.cfg.local_delay);
        }
        let (path, detour) = self.route(from, to)?;
        self.stats.messages += 1;
        self.stats.payload_bytes += payload_bytes;
        self.stats.detour_hops += detour;
        let flits = self.cfg.flits(payload_bytes);
        // Forward pass: when does the header claim each link?
        let mut starts = Vec::with_capacity(path.len());
        let mut head = now + self.cfg.ni_overhead;
        for &link in &path {
            let free = self.link_free.get(&(link, class)).copied().unwrap_or(0);
            let start = head.max(free);
            self.stats.contention_cycles += start - head;
            let per = self.link_stats.entry((link, class)).or_default();
            per.messages += 1;
            per.contention_cycles += start - head;
            starts.push(start);
            head = start + self.cfg.router_delay;
        }
        let arrival = head + flits;
        if self.hop_trace {
            for (i, (&(a, b), &start)) in path.iter().zip(&starts).enumerate() {
                let end = starts.get(i + 1).copied().unwrap_or(arrival);
                self.last_hops.push(HopSegment {
                    from: a,
                    to: b,
                    start,
                    end,
                });
            }
        }
        match self.cfg.switching {
            SwitchingModel::VirtualCutThrough => {
                // Each link is held for the serialization time only.
                for (&link, &start) in path.iter().zip(&starts) {
                    self.link_free.insert((link, class), start + flits);
                    self.stats.link_busy_cycles += flits;
                    self.link_stats
                        .entry((link, class))
                        .or_default()
                        .busy_cycles += flits;
                }
            }
            SwitchingModel::Wormhole => {
                // Backward pass: a stalled header keeps the worm stretched
                // over its upstream links; link i is released only when the
                // tail clears it, which cannot precede the downstream
                // claim. The tail clears the last link `flits` after its
                // claim.
                let mut release = *starts.last().expect("non-empty path") + flits;
                for (i, &link) in path.iter().enumerate().rev() {
                    if i < path.len() - 1 {
                        // Held from our claim until the tail drains into
                        // the next link (which it can enter only once that
                        // link was claimed).
                        release = (starts[i + 1] + flits).max(starts[i] + flits);
                    }
                    self.link_free.insert((link, class), release);
                    self.stats.link_busy_cycles += release - starts[i];
                    self.link_stats
                        .entry((link, class))
                        .or_default()
                        .busy_cycles += release - starts[i];
                }
            }
        }
        Ok(arrival)
    }

    /// Arrival time a message *would* have at zero load (no reservation,
    /// assuming a healthy XY path).
    pub fn probe_latency(&self, from: NodeId, to: NodeId, payload_bytes: u64) -> Cycles {
        self.cfg
            .zero_load_latency(self.geo.hops(from, to), payload_bytes)
    }

    /// Per-link breakdown of the traffic seen so far, sorted by
    /// `(from, to, class)` so the report order is deterministic. Links that
    /// never carried a message are omitted.
    pub fn link_report(&self) -> Vec<LinkReport> {
        let mut rows: Vec<LinkReport> = self
            .link_stats
            .iter()
            .map(|(&((from, to), class), &stats)| LinkReport {
                from,
                to,
                class,
                alive: !self.failed_links.contains(&(from, to))
                    && !self.failed_routers.contains(&from)
                    && !self.failed_routers.contains(&to),
                stats,
            })
            .collect();
        rows.sort_by_key(|r| (r.from, r.to, r.class));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn geometry_for_paper_sizes() {
        for (nodes, dims) in [
            (9, (3, 3)),
            (16, (4, 4)),
            (30, (6, 5)),
            (42, (7, 6)),
            (56, (8, 7)),
        ] {
            let g = MeshGeometry::for_nodes(nodes);
            assert_eq!((g.cols(), g.rows()), dims, "for {nodes} nodes");
        }
    }

    #[test]
    fn geometry_prime_fallback() {
        let g = MeshGeometry::for_nodes(13);
        assert!(g.cols() * g.rows() >= 13);
        assert!(g.cols().abs_diff(g.rows()) <= 1);
        // All 13 nodes must have valid coordinates.
        for i in 0..13 {
            let _ = g.coords(n(i));
        }
    }

    #[test]
    fn path_length_matches_hops() {
        let g = MeshGeometry::for_nodes(16);
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(g.path(n(a), n(b)).len() as u64, g.hops(n(a), n(b)));
            }
        }
    }

    #[test]
    fn zero_load_latency_formula() {
        let cfg = NetConfig::default();
        // 1 hop, header-only: 8 + 4 + 4.
        assert_eq!(cfg.zero_load_latency(1, 0), 16);
        // 2 hops, 128-byte item: 8 + 8 + 32.
        assert_eq!(cfg.zero_load_latency(2, 128), 48);
        // Each extra hop adds exactly router_delay.
        assert_eq!(
            cfg.zero_load_latency(3, 128) - cfg.zero_load_latency(2, 128),
            4
        );
    }

    #[test]
    fn send_matches_zero_load_when_idle() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        let t = mesh.send(100, n(0), n(2), NetClass::Reply, 128).unwrap();
        assert_eq!(t, 100 + mesh.probe_latency(n(0), n(2), 128));
        assert_eq!(mesh.stats().contention_cycles, 0);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        // Two 128-byte messages over the same link at the same instant.
        let t1 = mesh.send(0, n(0), n(1), NetClass::Reply, 128).unwrap();
        let t2 = mesh.send(0, n(0), n(1), NetClass::Reply, 128).unwrap();
        assert_eq!(t1, 44); // 8 + 4 + 32
                            // Second message waits 32 flit-cycles for the link.
        assert_eq!(t2, t1 + 32);
        assert_eq!(mesh.stats().contention_cycles, 32);
    }

    #[test]
    fn subnetworks_do_not_interfere() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        let t1 = mesh.send(0, n(0), n(1), NetClass::Request, 128).unwrap();
        let t2 = mesh.send(0, n(0), n(1), NetClass::Reply, 128).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn local_messages_bypass_network() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        assert_eq!(mesh.send(10, n(3), n(3), NetClass::Request, 128), Ok(11));
        assert_eq!(mesh.stats().link_busy_cycles, 0);
    }

    #[test]
    fn flit_count_has_header_floor() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.flits(0), 4);
        assert_eq!(cfg.flits(3), 4);
        assert_eq!(cfg.flits(128), 32);
        assert_eq!(cfg.flits(129), 33);
    }

    #[test]
    fn wormhole_zero_load_latency_matches_vct() {
        for (a, b, bytes) in [(0u16, 3u16, 0u64), (0, 15, 128), (5, 6, 128)] {
            // Fresh meshes: at zero load the models are identical.
            let mut vct = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
            let mut wh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::wormhole());
            assert_eq!(
                vct.send(0, n(a), n(b), NetClass::Reply, bytes).unwrap(),
                wh.send(0, n(a), n(b), NetClass::Reply, bytes).unwrap(),
            );
        }
    }

    #[test]
    fn wormhole_holds_upstream_links_when_blocked() {
        // Saturate link (2,0)->(3,0); then send a long worm 0->3 whose head
        // blocks there. Under wormhole switching the worm keeps holding
        // (0,0)->(1,0), delaying an unrelated 0->1 message; under VCT the
        // blocked worm releases its upstream links.
        let setup = |cfg: NetConfig| {
            let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), cfg);
            mesh.send(0, n(2), n(3), NetClass::Reply, 1024).unwrap(); // busy last link
            mesh.send(0, n(0), n(3), NetClass::Reply, 1024).unwrap(); // the blocked worm
            mesh.send(1, n(0), n(1), NetClass::Reply, 0).unwrap() // the bystander
        };
        let vct = setup(NetConfig::default());
        let wh = setup(NetConfig::wormhole());
        assert!(
            wh > vct,
            "wormhole HOL blocking must delay the bystander ({wh} vs {vct})"
        );
    }

    #[test]
    fn wormhole_busy_accounting_exceeds_serialization_under_blocking() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::wormhole());
        mesh.send(0, n(2), n(3), NetClass::Reply, 2048).unwrap();
        mesh.send(0, n(0), n(3), NetClass::Reply, 2048).unwrap();
        // 2048B = 512 flits; two messages over 1 and 3 links respectively
        // would occupy 4 * 512 link-cycles without blocking; the stalled
        // worm holds its upstream links longer.
        assert!(mesh.stats().link_busy_cycles > 4 * 512);
    }

    #[test]
    fn link_report_matches_aggregate_stats() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.send(0, n(0), n(1), NetClass::Reply, 128).unwrap();
        mesh.send(0, n(0), n(1), NetClass::Reply, 128).unwrap(); // contends on (0,0)->(1,0)
        mesh.send(0, n(0), n(1), NetClass::Request, 0).unwrap();
        mesh.send(5, n(3), n(3), NetClass::Request, 64).unwrap(); // local: no links

        let report = mesh.link_report();
        // One link on each sub-network, sorted Request before Reply.
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].from, (0, 0));
        assert_eq!(report[0].to, (1, 0));
        assert_eq!(report[0].class, NetClass::Request);
        assert_eq!(report[1].class, NetClass::Reply);
        assert_eq!(report[1].stats.messages, 2);

        // Per-link rows sum back to the aggregate counters.
        let busy: Cycles = report.iter().map(|r| r.stats.busy_cycles).sum();
        let cont: Cycles = report.iter().map(|r| r.stats.contention_cycles).sum();
        assert_eq!(busy, mesh.stats().link_busy_cycles);
        assert_eq!(cont, mesh.stats().contention_cycles);
        assert!(report[1].utilization(1000) > 0.0);
        assert_eq!(report[1].utilization(0), 0.0);
    }

    #[test]
    fn hop_trace_records_contiguous_segments_without_changing_timing() {
        let mut plain = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        let mut traced = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        traced.set_hop_trace(true);
        // Two-hop message: (0,0) -> (1,0) -> (2,0).
        let a = plain.send(100, n(0), n(2), NetClass::Request, 128).unwrap();
        let b = traced
            .send(100, n(0), n(2), NetClass::Request, 128)
            .unwrap();
        assert_eq!(a, b, "hop tracing must not perturb arrival times");
        assert_eq!(plain.stats(), traced.stats());

        let hops = traced.last_hops().to_vec();
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].from, (0, 0));
        assert_eq!(hops[1].to, (2, 0));
        // Segments are contiguous and end at the arrival time.
        assert_eq!(hops[0].end, hops[1].start);
        assert_eq!(hops[1].end, b);
        assert_eq!(hops[0].start, 100 + NetConfig::default().ni_overhead);

        // Local sends and disabled tracing leave no hops behind.
        traced.send(200, n(5), n(5), NetClass::Request, 0).unwrap();
        assert!(traced.last_hops().is_empty());
        traced.set_hop_trace(false);
        traced.send(300, n(0), n(2), NetClass::Request, 0).unwrap();
        assert!(traced.last_hops().is_empty());
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        let t1 = mesh.send(0, n(0), n(1), NetClass::Reply, 128).unwrap();
        let t2 = mesh.send(0, n(14), n(15), NetClass::Reply, 128).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(mesh.stats().contention_cycles, 0);
    }

    // Regression for the phantom-arrival bug: before the mesh knew about
    // failed hardware, XY routing happily traversed a permanently failed
    // node's router and a send *to* a dead node returned a normal arrival.
    #[test]
    fn send_to_failed_node_is_a_route_error_not_a_phantom_arrival() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.fail_node(n(5));
        assert!(mesh.router_failed(n(5)));
        assert_eq!(
            mesh.send(0, n(0), n(5), NetClass::Request, 0),
            Err(RouteError::Unreachable {
                from: n(0),
                to: n(5),
            })
        );
        // A refused message is not accounted as traffic.
        assert_eq!(mesh.stats().messages, 0);
        assert!(!mesh.reachable(n(0), n(5)));
    }

    // Regression pinning the post-failure route: node 1 at (1,0) dies; the
    // XY path 0 -> 2 ran straight through its router and must now detour
    // via row 1 — (0,0) (0,1) (1,1) (2,1) (2,0) — two extra hops.
    #[test]
    fn traffic_detours_around_a_permanently_failed_node() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.fail_node(n(1));
        let t = mesh.send(0, n(0), n(2), NetClass::Request, 0).unwrap();
        // 4-hop detour at zero load: 8 + 4*4 + 4 = 28 cycles.
        assert_eq!(t, 28);
        assert_eq!(mesh.stats().detour_hops, 2);
        // The survivors still reach each other.
        assert!(mesh.reachable(n(0), n(2)));
        assert!(mesh.reachable(n(2), n(0)));
    }

    #[test]
    fn repairing_a_router_restores_the_xy_route() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.fail_router(n(1));
        assert!(mesh.send(0, n(0), n(1), NetClass::Request, 0).is_err());
        mesh.repair_router(n(1));
        assert!(mesh.healthy());
        assert_eq!(mesh.send(0, n(0), n(2), NetClass::Request, 0), Ok(20));
        assert_eq!(mesh.stats().detour_hops, 0);
    }

    #[test]
    fn repairing_a_cut_link_restores_the_direct_route() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.fail_link(n(0), n(1));
        // Detoured while cut: 3 hops instead of 1.
        assert_eq!(mesh.send(0, n(0), n(1), NetClass::Request, 0), Ok(24));
        mesh.repair_link(n(0), n(1));
        assert!(mesh.healthy());
        // Direct again — and both directions were restored.
        assert_eq!(mesh.send(100, n(0), n(1), NetClass::Request, 0), Ok(116));
        assert_eq!(mesh.send(200, n(1), n(0), NetClass::Request, 0), Ok(216));
        // Repairing an intact link is a no-op, so schedules may race.
        mesh.repair_link(n(0), n(1));
        assert!(mesh.healthy());
    }

    #[test]
    fn severed_corner_is_unreachable() {
        // 2x2 mesh: cutting both of node 0's links isolates it entirely.
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(4), NetConfig::default());
        mesh.fail_link(n(0), n(1));
        mesh.fail_link(n(0), n(2));
        assert!(!mesh.reachable(n(0), n(3)));
        assert!(mesh.send(0, n(3), n(0), NetClass::Reply, 0).is_err());
        // The other three nodes still form a connected component.
        assert!(mesh.reachable(n(1), n(2)));
        // A node always reaches itself (local delivery needs no router).
        assert!(mesh.reachable(n(0), n(0)));
    }

    #[test]
    fn cut_link_detours_but_stays_connected() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.fail_link(n(0), n(1));
        // Both directions of the cut are severed; the grid stays connected.
        let t = mesh.send(0, n(0), n(1), NetClass::Request, 0).unwrap();
        // Shortest healthy path is 3 hops: (0,0) (0,1) (1,1) (1,0).
        assert_eq!(t, 8 + 3 * 4 + 4);
        assert_eq!(mesh.stats().detour_hops, 2);
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert!(mesh.reachable(n(a), n(b)), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn link_report_flags_failed_links_and_routers() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        mesh.send(0, n(0), n(1), NetClass::Request, 0).unwrap(); // (0,0)->(1,0)
        mesh.send(0, n(4), n(5), NetClass::Request, 0).unwrap(); // (0,1)->(1,1)
        mesh.send(0, n(8), n(9), NetClass::Request, 0).unwrap(); // (0,2)->(1,2)
        mesh.fail_link(n(0), n(1));
        mesh.fail_router(n(4));
        let report = mesh.link_report();
        assert_eq!(report.len(), 3);
        assert!(!report[0].alive, "cut link must report dead");
        assert!(
            !report[1].alive,
            "link out of a failed router must report dead"
        );
        assert!(report[2].alive);
    }

    // Satellite: wormhole switching under contention *and* a failed link —
    // detoured worms still exhibit head-of-line blocking on their (longer)
    // path, and blocking accounting still exceeds pure serialization.
    #[test]
    fn wormhole_contention_with_a_failed_link() {
        let mut mesh = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::wormhole());
        mesh.fail_link(n(2), n(3)); // severs (2,0)<->(3,0)
                                    // Saturate the detour's final link (3,1)->(3,0) with a long worm.
        let t_block = mesh.send(0, n(7), n(3), NetClass::Reply, 2048).unwrap();
        // 0 -> 3 detours (2,0) (2,1) (3,1) (3,0) and queues behind it.
        let t = mesh.send(0, n(0), n(3), NetClass::Reply, 2048).unwrap();
        assert!(t > t_block, "detoured worm must queue behind the blocker");
        assert_eq!(mesh.stats().detour_hops, 2);
        assert!(mesh.stats().contention_cycles > 0);
        // 2048B = 512 flits over 1 + 5 links: blocking must hold links
        // beyond the 6 * 512 serialization cycles.
        assert!(mesh.stats().link_busy_cycles > 6 * 512);
        // The detour is identical under VCT (routing is switching-agnostic)
        // but the wormhole worm holds its upstream links while stalled.
        let mut vct = Mesh::new(MeshGeometry::for_nodes(16), NetConfig::default());
        vct.fail_link(n(2), n(3));
        vct.send(0, n(7), n(3), NetClass::Reply, 2048).unwrap();
        vct.send(0, n(0), n(3), NetClass::Reply, 2048).unwrap();
        assert_eq!(vct.stats().detour_hops, mesh.stats().detour_hops);
        assert!(mesh.stats().link_busy_cycles > vct.stats().link_busy_cycles);
    }
}
