//! Interconnect abstraction: mesh or bus.

use ftcoma_mem::NodeId;
use ftcoma_sim::Cycles;

use crate::bus::{Bus, BusConfig};
use crate::mesh::{
    HopSegment, LinkReport, Mesh, MeshGeometry, NetClass, NetConfig, NetStats, RouteError,
};

/// Which interconnect to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricConfig {
    /// The paper's 2-D wormhole mesh.
    Mesh(NetConfig),
    /// A split-transaction shared bus (snooping-style fabric).
    Bus(BusConfig),
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::Mesh(NetConfig::default())
    }
}

/// A constructed interconnect.
///
/// # Example
///
/// ```
/// use ftcoma_net::{Fabric, FabricConfig, NetClass};
/// use ftcoma_mem::NodeId;
///
/// let mut f = Fabric::new(FabricConfig::default(), 16);
/// let arrival = f.send(0, NodeId::new(0), NodeId::new(1), NetClass::Request, 0);
/// assert_eq!(arrival, Ok(16)); // mesh zero-load latency at 1 hop
/// ```
#[derive(Debug, Clone)]
pub enum Fabric {
    /// A mesh instance.
    Mesh(Mesh),
    /// A bus instance.
    Bus(Bus),
}

impl Fabric {
    /// Builds the configured interconnect for `nodes` nodes.
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        match cfg {
            FabricConfig::Mesh(net) => Fabric::Mesh(Mesh::new(MeshGeometry::for_nodes(nodes), net)),
            FabricConfig::Bus(bus) => Fabric::Bus(Bus::new(bus)),
        }
    }

    /// Sends a message; returns its arrival time (see the concrete types),
    /// or a [`RouteError`] when mesh faults leave no healthy path. A bus is
    /// a single shared fault-free medium and never fails a send.
    pub fn send(
        &mut self,
        now: Cycles,
        from: NodeId,
        to: NodeId,
        class: NetClass,
        payload_bytes: u64,
    ) -> Result<Cycles, RouteError> {
        match self {
            Fabric::Mesh(m) => m.send(now, from, to, class, payload_bytes),
            Fabric::Bus(b) => Ok(b.send(now, from, to, class, payload_bytes)),
        }
    }

    /// Ties fabric health to a permanent node failure (mesh: the node's
    /// router dies with it; bus: no-op).
    pub fn fail_node(&mut self, node: NodeId) {
        if let Fabric::Mesh(m) = self {
            m.fail_node(node);
        }
    }

    /// Severs a mesh link between two adjacent nodes (bus: no-op).
    ///
    /// # Panics
    ///
    /// Panics if the fabric is a mesh and the nodes are not mesh-adjacent.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        if let Fabric::Mesh(m) = self {
            m.fail_link(a, b);
        }
    }

    /// Fails a mesh router (bus: no-op).
    pub fn fail_router(&mut self, node: NodeId) {
        if let Fabric::Mesh(m) = self {
            m.fail_router(node);
        }
    }

    /// Restores a repaired node's router (bus: no-op).
    pub fn repair_node(&mut self, node: NodeId) {
        if let Fabric::Mesh(m) = self {
            m.repair_router(node);
        }
    }

    /// Restores a severed mesh link between two adjacent nodes (bus:
    /// no-op). Repairing an intact link is a no-op on the mesh too.
    ///
    /// # Panics
    ///
    /// Panics if the fabric is a mesh and the nodes are not mesh-adjacent.
    pub fn repair_link(&mut self, a: NodeId, b: NodeId) {
        if let Fabric::Mesh(m) = self {
            m.repair_link(a, b);
        }
    }

    /// Is there a healthy route from `from` to `to`? A bus always connects
    /// all nodes.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        match self {
            Fabric::Mesh(m) => m.reachable(from, to),
            Fabric::Bus(_) => true,
        }
    }

    /// Has no link or router failed?
    pub fn healthy(&self) -> bool {
        match self {
            Fabric::Mesh(m) => m.healthy(),
            Fabric::Bus(_) => true,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        match self {
            Fabric::Mesh(m) => m.stats(),
            Fabric::Bus(b) => b.stats(),
        }
    }

    /// Per-link traffic breakdown. A bus has no point-to-point links, so it
    /// reports an empty list; callers should fall back to the aggregate
    /// [`NetStats`].
    pub fn link_report(&self) -> Vec<LinkReport> {
        match self {
            Fabric::Mesh(m) => m.link_report(),
            Fabric::Bus(_) => Vec::new(),
        }
    }

    /// Enables per-hop recording for the span exporter (mesh only; a bus
    /// has no hops). Pure observation — timing and statistics are
    /// unchanged.
    pub fn set_hop_trace(&mut self, on: bool) {
        if let Fabric::Mesh(m) = self {
            m.set_hop_trace(on);
        }
    }

    /// Hop segments of the most recent send while hop tracing is on
    /// (always empty for a bus).
    pub fn last_hops(&self) -> &[HopSegment] {
        match self {
            Fabric::Mesh(m) => m.last_hops(),
            Fabric::Bus(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_kinds() {
        let mut mesh = Fabric::new(FabricConfig::default(), 9);
        let mut bus = Fabric::new(FabricConfig::Bus(BusConfig::default()), 9);
        let a = mesh
            .send(0, NodeId::new(0), NodeId::new(8), NetClass::Reply, 128)
            .unwrap();
        let b = bus
            .send(0, NodeId::new(0), NodeId::new(8), NetClass::Reply, 128)
            .unwrap();
        assert!(a > 0 && b > 0);
        assert_eq!(mesh.stats().messages, 1);
        assert_eq!(bus.stats().messages, 1);
    }

    #[test]
    fn mesh_faults_pass_through_while_a_bus_stays_fault_free() {
        let mut mesh = Fabric::new(FabricConfig::default(), 16);
        mesh.fail_node(NodeId::new(1));
        assert!(!mesh.healthy());
        assert!(!mesh.reachable(NodeId::new(0), NodeId::new(1)));
        assert!(mesh
            .send(0, NodeId::new(0), NodeId::new(1), NetClass::Request, 0)
            .is_err());
        mesh.repair_node(NodeId::new(1));
        assert!(mesh.healthy());

        let mut bus = Fabric::new(FabricConfig::Bus(BusConfig::default()), 4);
        bus.fail_node(NodeId::new(1));
        bus.fail_router(NodeId::new(1));
        assert!(bus.healthy());
        assert!(bus.reachable(NodeId::new(0), NodeId::new(1)));
        assert!(bus
            .send(0, NodeId::new(0), NodeId::new(1), NetClass::Request, 0)
            .is_ok());
    }
}
