//! Interconnect abstraction: mesh or bus.

use ftcoma_mem::NodeId;
use ftcoma_sim::Cycles;

use crate::bus::{Bus, BusConfig};
use crate::mesh::{LinkReport, Mesh, MeshGeometry, NetClass, NetConfig, NetStats};

/// Which interconnect to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricConfig {
    /// The paper's 2-D wormhole mesh.
    Mesh(NetConfig),
    /// A split-transaction shared bus (snooping-style fabric).
    Bus(BusConfig),
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::Mesh(NetConfig::default())
    }
}

/// A constructed interconnect.
///
/// # Example
///
/// ```
/// use ftcoma_net::{Fabric, FabricConfig, NetClass};
/// use ftcoma_mem::NodeId;
///
/// let mut f = Fabric::new(FabricConfig::default(), 16);
/// let arrival = f.send(0, NodeId::new(0), NodeId::new(1), NetClass::Request, 0);
/// assert_eq!(arrival, 16); // mesh zero-load latency at 1 hop
/// ```
#[derive(Debug)]
pub enum Fabric {
    /// A mesh instance.
    Mesh(Mesh),
    /// A bus instance.
    Bus(Bus),
}

impl Fabric {
    /// Builds the configured interconnect for `nodes` nodes.
    pub fn new(cfg: FabricConfig, nodes: usize) -> Self {
        match cfg {
            FabricConfig::Mesh(net) => Fabric::Mesh(Mesh::new(MeshGeometry::for_nodes(nodes), net)),
            FabricConfig::Bus(bus) => Fabric::Bus(Bus::new(bus)),
        }
    }

    /// Sends a message; returns its arrival time (see the concrete types).
    pub fn send(
        &mut self,
        now: Cycles,
        from: NodeId,
        to: NodeId,
        class: NetClass,
        payload_bytes: u64,
    ) -> Cycles {
        match self {
            Fabric::Mesh(m) => m.send(now, from, to, class, payload_bytes),
            Fabric::Bus(b) => b.send(now, from, to, class, payload_bytes),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        match self {
            Fabric::Mesh(m) => m.stats(),
            Fabric::Bus(b) => b.stats(),
        }
    }

    /// Per-link traffic breakdown. A bus has no point-to-point links, so it
    /// reports an empty list; callers should fall back to the aggregate
    /// [`NetStats`].
    pub fn link_report(&self) -> Vec<LinkReport> {
        match self {
            Fabric::Mesh(m) => m.link_report(),
            Fabric::Bus(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_kinds() {
        let mut mesh = Fabric::new(FabricConfig::default(), 9);
        let mut bus = Fabric::new(FabricConfig::Bus(BusConfig::default()), 9);
        let a = mesh.send(0, NodeId::new(0), NodeId::new(8), NetClass::Reply, 128);
        let b = bus.send(0, NodeId::new(0), NodeId::new(8), NetClass::Reply, 128);
        assert!(a > 0 && b > 0);
        assert_eq!(mesh.stats().messages, 1);
        assert_eq!(bus.stats().messages, 1);
    }
}
