//! The logical ring used by the injection mechanism.
//!
//! "In order to easily find a place for an injected line, a logical ring is
//! mapped onto the physical interconnection network. … If the injection
//! cannot be accepted, the node forwards the injection to the next node on
//! the logical ring. … This logical ring must be reconfigured in the event
//! of a failure."

use ftcoma_mem::NodeId;

/// A logical ring over the machine's nodes, skipping failed ones.
///
/// # Example
///
/// ```
/// use ftcoma_net::LogicalRing;
/// use ftcoma_mem::NodeId;
///
/// let mut ring = LogicalRing::new(4);
/// assert_eq!(ring.successor(NodeId::new(3)), Some(NodeId::new(0)));
/// ring.mark_dead(NodeId::new(0));
/// assert_eq!(ring.successor(NodeId::new(3)), Some(NodeId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct LogicalRing {
    alive: Vec<bool>,
}

impl LogicalRing {
    /// Creates a ring over nodes `0..n`, all alive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ring requires at least one node");
        Self {
            alive: vec![true; n],
        }
    }

    /// Number of ring positions (alive or dead).
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Always `false`: a ring has at least one position by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Is `node` currently alive?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Reconfigures the ring around a failed node.
    pub fn mark_dead(&mut self, node: NodeId) {
        self.alive[node.index()] = false;
    }

    /// Restores a repaired node to the ring.
    pub fn mark_alive(&mut self, node: NodeId) {
        self.alive[node.index()] = true;
    }

    /// Number of live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Iterates over the live nodes in index order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId::new(i as u16))
    }

    /// The next live node after `node` on the ring, or `None` if `node` is
    /// the only live node (or none are live).
    pub fn successor(&self, node: NodeId) -> Option<NodeId> {
        let n = self.alive.len();
        let start = node.index();
        for step in 1..=n {
            let cand = (start + step) % n;
            if cand == start {
                break;
            }
            if self.alive[cand] {
                return Some(NodeId::new(cand as u16));
            }
        }
        None
    }

    /// Walks the ring starting after `origin`, yielding up to
    /// `alive_count()` candidate hosts, never including `origin` itself.
    ///
    /// This is the full traversal an injection may need before the
    /// guarantee "an injected copy will always find a place" kicks in.
    pub fn walk_from(&self, origin: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.alive.len();
        let start = origin.index();
        (1..n).filter_map(move |step| {
            let cand = (start + step) % n;
            if self.alive[cand] {
                Some(NodeId::new(cand as u16))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn successor_wraps() {
        let ring = LogicalRing::new(3);
        assert_eq!(ring.successor(n(0)), Some(n(1)));
        assert_eq!(ring.successor(n(2)), Some(n(0)));
    }

    #[test]
    fn successor_skips_dead() {
        let mut ring = LogicalRing::new(4);
        ring.mark_dead(n(1));
        ring.mark_dead(n(2));
        assert_eq!(ring.successor(n(0)), Some(n(3)));
        assert_eq!(ring.alive_count(), 2);
    }

    #[test]
    fn lone_survivor_has_no_successor() {
        let mut ring = LogicalRing::new(3);
        ring.mark_dead(n(0));
        ring.mark_dead(n(2));
        assert_eq!(ring.successor(n(1)), None);
    }

    #[test]
    fn walk_visits_each_live_node_once_excluding_origin() {
        let mut ring = LogicalRing::new(5);
        ring.mark_dead(n(2));
        let visited: Vec<_> = ring.walk_from(n(3)).collect();
        assert_eq!(visited, vec![n(4), n(0), n(1)]);
    }

    #[test]
    fn mark_alive_restores() {
        let mut ring = LogicalRing::new(2);
        ring.mark_dead(n(1));
        assert_eq!(ring.successor(n(0)), None);
        ring.mark_alive(n(1));
        assert_eq!(ring.successor(n(0)), Some(n(1)));
        assert!(ring.is_alive(n(1)));
    }

    // Reconfiguration edge case: two *adjacent* failed nodes, placed at the
    // wraparound point so the successor scan must skip both and wrap.
    #[test]
    fn two_adjacent_dead_nodes_wrap_around() {
        let mut ring = LogicalRing::new(5);
        ring.mark_dead(n(3));
        ring.mark_dead(n(4));
        assert_eq!(ring.successor(n(2)), Some(n(0)));
        // Successors *of* the dead pair are still well-defined (the heir
        // lookup during reconfiguration asks exactly this).
        assert_eq!(ring.successor(n(3)), Some(n(0)));
        assert_eq!(ring.successor(n(4)), Some(n(0)));
        assert_eq!(ring.alive_count(), 3);
        let visited: Vec<_> = ring.walk_from(n(2)).collect();
        assert_eq!(visited, vec![n(0), n(1)]);
    }

    // Reconfiguration edge case: failure of node 0 — the ring "head" every
    // wraparound lands on — alone and then together with its neighbour.
    #[test]
    fn head_failure_reconfigures_the_wraparound() {
        let mut ring = LogicalRing::new(4);
        ring.mark_dead(n(0));
        assert_eq!(ring.successor(n(3)), Some(n(1)));
        assert_eq!(ring.successor(n(0)), Some(n(1)));
        ring.mark_dead(n(1)); // adjacent to the dead head
        assert_eq!(ring.successor(n(3)), Some(n(2)));
        assert_eq!(ring.successor(n(2)), Some(n(3)));
        assert_eq!(ring.alive_count(), 2);
        let visited: Vec<_> = ring.walk_from(n(2)).collect();
        assert_eq!(visited, vec![n(3)]);
        // Repairing the head restores the original wraparound.
        ring.mark_alive(n(0));
        assert_eq!(ring.successor(n(3)), Some(n(0)));
    }

    #[test]
    fn alive_nodes_in_order() {
        let mut ring = LogicalRing::new(4);
        ring.mark_dead(n(0));
        let v: Vec<_> = ring.alive_nodes().collect();
        assert_eq!(v, vec![n(1), n(2), n(3)]);
    }
}
