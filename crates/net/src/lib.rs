//! Interconnection-network model for the ft-coma simulator.
//!
//! The paper's machine connects nodes "through a worm-hole routed synchronous
//! mesh using a flit size of 32 bits. The network is made of two
//! sub-networks, one used for requests, the other used for replies. The
//! network fall-through time is one cycle (50 ns) resulting in a transfer
//! rate of 76 Mbytes/s between two nodes."
//!
//! [`mesh::Mesh`] models a 2-D mesh with XY dimension-order routing and two
//! independent sub-networks ([`NetClass`]). Contention is modelled per link:
//! a message reserves each link on its path for its serialization time, so
//! concurrent traffic queues exactly where it collides. Within a message,
//! switching is pipelined (virtual-cut-through approximation of wormhole —
//! see DESIGN.md §4): zero-load latency is
//! `ni_overhead + hops × router_delay + flits`.
//!
//! The default [`mesh::NetConfig`] is calibrated so a remote read miss costs
//! 116 cycles at one hop and 124 cycles at two hops, matching Table 2 of the
//! paper (the calibration test lives in `ftcoma-machine`).
//!
//! [`ring::LogicalRing`] implements the logical ring "mapped onto the
//! physical interconnection network" that the injection mechanism walks to
//! find a victim AM, including its reconfiguration when a node fails.
//!
//! The mesh is also a fault domain (see docs/NETWORK.md): links and routers
//! can fail at runtime, routing detours around the damage, unreachable
//! destinations surface as [`mesh::RouteError`], and a seeded
//! [`fault::NetFaultPlan`] deterministically drops, duplicates or delays
//! individual messages for the transport layer above to absorb.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod fabric;
pub mod fault;
pub mod mesh;
pub mod ring;

pub use bus::{Bus, BusConfig};
pub use fabric::{Fabric, FabricConfig};
pub use fault::{FaultDecision, NetFaultPlan};
pub use mesh::{
    HopSegment, LinkReport, LinkStats, Mesh, MeshGeometry, NetClass, NetConfig, NetStats,
    RouteError, SwitchingModel,
};
pub use ring::LogicalRing;
