//! A split-transaction shared-bus interconnect.
//!
//! The paper notes the ECP "can also be implemented with snooping
//! coherence protocols" — i.e. on bus-based COMAs (their earlier
//! Supercomputing'94 work). This model provides the corresponding fabric:
//! a single shared medium all messages arbitrate for, with the same
//! network-interface and serialization parameters as the mesh. It exists
//! to *contrast* with the mesh: a bus saturates with node count where the
//! mesh's aggregate bandwidth grows, which is exactly why the paper
//! targets scalable interconnects.

use ftcoma_mem::NodeId;
use ftcoma_sim::Cycles;

use crate::mesh::{NetClass, NetStats};

/// Timing parameters of the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Flit width in bytes (serialization rate, as on the mesh).
    pub flit_bytes: u64,
    /// Bus arbitration time per transaction.
    pub arbitration: Cycles,
    /// End-to-end propagation once granted.
    pub propagation: Cycles,
    /// Network-interface overhead per message.
    pub ni_overhead: Cycles,
    /// Minimum message length in flits.
    pub header_flits: u64,
    /// Latency of a node-local message.
    pub local_delay: Cycles,
    /// Independent request/reply busses (`true`, split like the mesh's
    /// sub-networks) or one medium for everything.
    pub split_classes: bool,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            flit_bytes: 4,
            arbitration: 2,
            propagation: 6,
            ni_overhead: 8,
            header_flits: 4,
            local_delay: 1,
            split_classes: true,
        }
    }
}

impl BusConfig {
    /// Message length in flits.
    pub fn flits(&self, payload_bytes: u64) -> u64 {
        self.header_flits
            .max(payload_bytes.div_ceil(self.flit_bytes))
    }

    /// Zero-load latency of a remote message.
    pub fn zero_load_latency(&self, payload_bytes: u64) -> Cycles {
        self.ni_overhead + self.arbitration + self.flits(payload_bytes) + self.propagation
    }
}

/// The shared bus: computes arrival times under arbitration.
///
/// # Example
///
/// ```
/// use ftcoma_net::bus::{Bus, BusConfig};
/// use ftcoma_net::NetClass;
/// use ftcoma_mem::NodeId;
///
/// let mut bus = Bus::new(BusConfig::default());
/// let a = bus.send(0, NodeId::new(0), NodeId::new(1), NetClass::Request, 0);
/// let b = bus.send(0, NodeId::new(2), NodeId::new(3), NetClass::Request, 0);
/// assert!(b > a, "the second transaction waits for the bus");
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    cfg: BusConfig,
    free: [Cycles; 2],
    stats: NetStats,
}

impl Bus {
    /// Creates an idle bus.
    pub fn new(cfg: BusConfig) -> Self {
        Self {
            cfg,
            free: [0; 2],
            stats: NetStats::default(),
        }
    }

    /// The timing configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn lane(&self, class: NetClass) -> usize {
        if self.cfg.split_classes && class == NetClass::Reply {
            1
        } else {
            0
        }
    }

    /// Sends a message at `now`; returns its arrival time at `to`.
    ///
    /// The bus is held for arbitration + serialization; every concurrent
    /// transaction on the same lane queues behind it.
    pub fn send(
        &mut self,
        now: Cycles,
        from: NodeId,
        to: NodeId,
        class: NetClass,
        payload_bytes: u64,
    ) -> Cycles {
        self.stats.messages += 1;
        self.stats.payload_bytes += payload_bytes;
        if from == to {
            return now + self.cfg.local_delay;
        }
        let lane = self.lane(class);
        let ready = now + self.cfg.ni_overhead;
        let start = ready.max(self.free[lane]);
        self.stats.contention_cycles += start - ready;
        let hold = self.cfg.arbitration + self.cfg.flits(payload_bytes);
        self.free[lane] = start + hold;
        self.stats.link_busy_cycles += hold;
        start + hold + self.cfg.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn zero_load_latency_formula() {
        let cfg = BusConfig::default();
        // 8 + 2 + 4 + 6 for a header-only message.
        assert_eq!(cfg.zero_load_latency(0), 20);
        let mut bus = Bus::new(cfg);
        assert_eq!(bus.send(0, n(0), n(5), NetClass::Request, 0), 20);
    }

    #[test]
    fn transactions_serialize_on_the_medium() {
        let mut bus = Bus::new(BusConfig::default());
        let first = bus.send(0, n(0), n(1), NetClass::Reply, 128);
        let second = bus.send(0, n(2), n(3), NetClass::Reply, 128);
        // Second holds off for the first's arbitration + 32 flits.
        assert_eq!(second - first, 2 + 32);
        assert_eq!(bus.stats().contention_cycles, 34);
    }

    #[test]
    fn split_classes_do_not_interfere() {
        let mut bus = Bus::new(BusConfig::default());
        let a = bus.send(0, n(0), n(1), NetClass::Request, 128);
        let b = bus.send(0, n(2), n(3), NetClass::Reply, 128);
        assert_eq!(a, b);

        let mut single = Bus::new(BusConfig {
            split_classes: false,
            ..Default::default()
        });
        let a = single.send(0, n(0), n(1), NetClass::Request, 128);
        let b = single.send(0, n(2), n(3), NetClass::Reply, 128);
        assert!(b > a);
    }

    #[test]
    fn local_messages_bypass_the_bus() {
        let mut bus = Bus::new(BusConfig::default());
        assert_eq!(bus.send(7, n(3), n(3), NetClass::Request, 128), 8);
        assert_eq!(bus.stats().link_busy_cycles, 0);
    }
}
