//! Minimal flag parsing for the `ftcoma` binary (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Second-level action (only the `trace` command takes one, e.g.
    /// `ftcoma trace summarize`); `None` everywhere else.
    pub subcommand: Option<String>,
    flags: HashMap<String, String>,
}

/// A command-line error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Parsed {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Rejects missing subcommands, flags without values, repeated flags
    /// and stray positional arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, ArgError> {
        let mut it = args.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a subcommand, got flag {command}"
            )));
        }
        let mut flags = HashMap::new();
        let mut subcommand = None;
        let mut first = true;
        while let Some(a) = it.next() {
            // `trace` takes a second-level action word; every other
            // command rejects stray positionals.
            if first && command == "trace" && !a.starts_with('-') {
                subcommand = Some(a);
                first = false;
                continue;
            }
            first = false;
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("unexpected positional argument {a}")))?;
            if key.is_empty() {
                return Err(ArgError("empty flag name".into()));
            }
            let value = if matches!(
                key,
                "no-ft" | "verify" | "wormhole" | "json" | "net-faults" | "soak" | "nested"
            ) {
                "true".to_string() // boolean flags take no value
            } else {
                it.next()
                    .ok_or_else(|| ArgError(format!("flag --{key} needs a value")))?
            };
            if flags.insert(key.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{key} given twice")));
            }
        }
        Ok(Parsed {
            command,
            subcommand,
            flags,
        })
    }

    /// String flag with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Integer flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: bad integer {v}"))),
        }
    }

    /// Float flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: bad number {v}"))),
        }
    }

    /// Boolean (valueless) flag.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Comma-separated float list with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if any element does not parse.
    pub fn f64_list_or(&self, key: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
        match self.flags.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{key}: bad number {x}")))
                })
                .collect(),
        }
    }

    /// Names of flags the command did not consume (typo guard).
    pub fn assert_only(&self, known: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !known.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{k} for `{}`",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Result<Parsed, ArgError> {
        Parsed::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = p("run --workload mp3d --nodes 16 --no-ft").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.str_or("workload", "water"), "mp3d");
        assert_eq!(a.u64_or("nodes", 9).unwrap(), 16);
        assert!(a.has("no-ft"));
        assert_eq!(a.u64_or("refs", 1000).unwrap(), 1000);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(p("").is_err());
        assert!(p("--run").is_err());
        assert!(p("run --nodes").is_err());
        assert!(p("run stray").is_err());
        assert!(p("run --nodes 4 --nodes 5").is_err());
        assert!(p("run --nodes four").unwrap().u64_or("nodes", 1).is_err());
    }

    #[test]
    fn float_lists() {
        let a = p("sweep --freqs 400,100,5").unwrap();
        assert_eq!(
            a.f64_list_or("freqs", &[1.0]).unwrap(),
            vec![400.0, 100.0, 5.0]
        );
        let b = p("sweep").unwrap();
        assert_eq!(b.f64_list_or("freqs", &[1.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn trace_takes_an_action_word() {
        let a = p("trace summarize --spans out.jsonl --top 5").unwrap();
        assert_eq!(a.command, "trace");
        assert_eq!(a.subcommand.as_deref(), Some("summarize"));
        assert_eq!(a.str_or("spans", ""), "out.jsonl");
        // Only `trace` accepts a positional action; other commands don't.
        assert!(p("run stray").is_err());
        assert_eq!(p("trace --spans x").unwrap().subcommand, None);
    }

    #[test]
    fn unknown_flag_guard() {
        let a = p("run --bogus 3").unwrap();
        assert!(a.assert_only(&["nodes"]).is_err());
        assert!(a.assert_only(&["bogus"]).is_ok());
    }
}
