//! `ftcoma` — command-line front end for the ft-coma simulator.
//!
//! ```text
//! ftcoma run      --workload mp3d --nodes 16 --refs 60000 [--freq 100 | --no-ft]
//! ftcoma compare  --workload mp3d --nodes 16 --freq 100        # std vs ECP
//! ftcoma sweep    --workload water --freqs 400,200,100,50,5    # Fig 3 style
//! ftcoma failure  --workload water --kind permanent --node 3 --at 20000 [--repair-at 80000]
//! ftcoma campaign --spec grid.json --jobs 8 --out report.json  # parallel grid
//! ftcoma latency                                               # Table 2 probe
//! ftcoma help
//! ```

mod args;

use std::process::ExitCode;
use std::time::Instant;

use args::{ArgError, Parsed};
use ftcoma_campaign::{
    report, run_cell, run_cells, CampaignSpec, Cell, Lengths, Scenario, ScenarioKind,
};
use ftcoma_core::FtConfig;
use ftcoma_machine::{export, probe, tracelog::TraceEvent, Machine, MachineConfig, RunMetrics};
use ftcoma_net::LinkReport;
use ftcoma_sim::Clock;
use ftcoma_workloads::{presets, SplashConfig};

fn main() -> ExitCode {
    let parsed = match Parsed::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\nrun `ftcoma help` for usage");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\nrun `ftcoma help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(p: &Parsed) -> Result<(), ArgError> {
    match p.command.as_str() {
        "run" => cmd_run(p),
        "compare" => cmd_compare(p),
        "sweep" => cmd_sweep(p),
        "failure" => cmd_failure(p),
        "campaign" => cmd_campaign(p),
        "latency" => cmd_latency(p),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(ArgError(format!("unknown subcommand `{other}`"))),
    }
}

const HELP: &str = "\
ftcoma — fault-tolerant COMA simulator (Morin et al., ISCA 1996)

USAGE
  ftcoma run      --workload W [--nodes N] [--refs R] [--warmup U]
                  [--freq RP_PER_S | --no-ft] [--seed S] [--verify]
                  [--json] [--metrics-out FILE] [--trace-out FILE]
                  [--trace-jsonl FILE] [--trace-capacity N]
  ftcoma compare  --workload W [--nodes N] [--refs R] [--warmup U] [--freq F]
  ftcoma sweep    --workload W [--nodes N] [--freqs F1,F2,...] [--jobs J]
  ftcoma failure  --workload W --kind transient|permanent [--node K]
                  [--at CYCLES] [--repair-at CYCLES]
  ftcoma campaign --spec FILE [--jobs J] [--json] [--out FILE] [--cell ID]
  ftcoma latency
  ftcoma help

CAMPAIGNS
  A campaign spec (see docs/CAMPAIGNS.md) expands workloads x node counts
  x checkpoint frequencies x failure scenarios into independent cells, run
  on J worker threads. Per-cell seeds are derived from the campaign seed
  at expansion time, so the aggregated JSON report is byte-identical
  (modulo wall_ms* fields) at any --jobs level. --cell replays one cell.

OBSERVABILITY (run and failure)
  --json              print the run metrics as versioned JSON on stdout
  --metrics-out FILE  also write that JSON document to FILE
  --trace-out FILE    write a Chrome trace-event file (Perfetto-viewable)
  --trace-jsonl FILE  write the protocol trace as JSON Lines
  --trace-capacity N  retain the last N trace events (default 1000000
                      when a trace output is requested, else 0)

WORKLOADS
  barnes, cholesky, mp3d, water (paper's Table 3), plus micro-benchmarks
  uniform, hotspot, prodcons.
";

fn workload(p: &Parsed) -> Result<SplashConfig, ArgError> {
    let name = p.str_or("workload", "water");
    let all: Vec<SplashConfig> = presets::all()
        .into_iter()
        .chain(presets::micros())
        .collect();
    all.into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(&name))
        .ok_or_else(|| ArgError(format!("unknown workload `{name}`")))
}

fn machine_config(p: &Parsed) -> Result<MachineConfig, ArgError> {
    let ft = if p.has("no-ft") {
        FtConfig::disabled()
    } else {
        FtConfig::enabled(p.f64_or("freq", 100.0)?)
    };
    let net = if p.has("wormhole") {
        ftcoma_net_config_wormhole()
    } else {
        Default::default()
    };
    let default_trace_capacity = if p.has("trace-out") || p.has("trace-jsonl") {
        1_000_000
    } else {
        0
    };
    Ok(MachineConfig {
        nodes: p.u64_or("nodes", 16)? as u16,
        refs_per_node: p.u64_or("refs", 60_000)?,
        warmup_refs_per_node: p.u64_or("warmup", 30_000)?,
        workload: workload(p)?,
        ft,
        net,
        seed: p.u64_or("seed", 0xF7C0_3A11)?,
        verify: p.has("verify"),
        trace_capacity: p.u64_or("trace-capacity", default_trace_capacity)? as usize,
        ..MachineConfig::default()
    })
}

/// Handles the structured-output flags shared by `run` and `failure`.
/// Returns `true` when `--json` consumed stdout (suppress the text report).
fn export_outputs(
    p: &Parsed,
    metrics: &RunMetrics,
    links: &[LinkReport],
    trace: &[TraceEvent],
) -> Result<bool, ArgError> {
    let write = |path: &str, contents: &str| {
        std::fs::write(path, contents).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
    };
    let wants_doc = p.has("json") || p.has("metrics-out");
    let doc = if wants_doc {
        Some(export::metrics_json(metrics, links))
    } else {
        None
    };
    if let Some(doc) = &doc {
        if p.has("metrics-out") {
            let mut text = doc.to_string_pretty();
            text.push('\n');
            write(&p.str_or("metrics-out", ""), &text)?;
        }
    }
    if p.has("trace-out") {
        let chrome = export::chrome_trace(trace, Clock::ksr1().hz());
        let mut text = chrome.to_string_compact();
        text.push('\n');
        write(&p.str_or("trace-out", ""), &text)?;
    }
    if p.has("trace-jsonl") {
        write(&p.str_or("trace-jsonl", ""), &export::trace_jsonl(trace))?;
    }
    if p.has("json") {
        println!("{}", doc.expect("built above").to_string_pretty());
        return Ok(true);
    }
    Ok(false)
}

fn ftcoma_net_config_wormhole() -> ftcoma_net::NetConfig {
    ftcoma_net::NetConfig::wormhole()
}

fn print_metrics(m: &RunMetrics) {
    println!("cycles           {:>14}", m.total_cycles);
    println!("instructions     {:>14}", m.instructions);
    println!("references       {:>14}", m.refs);
    println!("read miss rate   {:>13.2}%", m.read_miss_rate() * 100.0);
    println!("write miss rate  {:>13.2}%", m.write_miss_rate() * 100.0);
    if m.checkpoints > 0 {
        println!("recovery points  {:>14}", m.checkpoints);
        println!("T_create         {:>14}", m.t_create);
        println!("T_commit         {:>14}", m.t_commit);
        println!(
            "replication      {:>11.1} MB/s per node",
            m.replication_throughput_bps(20e6) / 1e6
        );
        println!(
            "injections/10k   {:>14.1}",
            m.per_10k_refs(m.injections_total())
        );
    }
    if m.failures > 0 {
        println!("failures         {:>14}", m.failures);
        println!("repairs          {:>14}", m.repairs);
        println!("T_recovery       {:>14}", m.t_recovery);
    }
    println!("pages allocated  {:>14}", m.pages_allocated);
    let s = m.access_latency.summary();
    println!(
        "access latency   mean {:.1}cy, p50<={:.0}, p90<={:.0}, p99<={:.0}, max {}",
        s.mean, s.p50, s.p90, s.p99, s.max,
    );
}

const RUN_FLAGS: &[&str] = &[
    "workload",
    "nodes",
    "refs",
    "warmup",
    "freq",
    "no-ft",
    "seed",
    "verify",
    "wormhole",
    "json",
    "metrics-out",
    "trace-out",
    "trace-jsonl",
    "trace-capacity",
];

fn cmd_run(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(RUN_FLAGS)?;
    let cfg = machine_config(p)?;
    let quiet = p.has("json"); // keep stdout pure JSON
    if !quiet {
        println!(
            "running {} on {} nodes ({})",
            cfg.workload.name,
            cfg.nodes,
            if cfg.ft.mode.is_enabled() {
                format!("ECP, {} rp/s", cfg.ft.ckpt_rate_hz)
            } else {
                "standard protocol".into()
            }
        );
    }
    let machine = Machine::new(cfg);
    if !quiet {
        println!("capacity check: {}", machine.capacity_report());
    }
    let mut machine = machine;
    let metrics = machine.run();
    machine.assert_invariants();
    if !export_outputs(p, &metrics, &machine.link_report(), &machine.trace())? {
        print_metrics(&metrics);
    }
    Ok(())
}

fn cmd_compare(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(RUN_FLAGS)?;
    let ft_cfg = machine_config(p)?;
    let std_cfg = MachineConfig {
        ft: FtConfig::disabled(),
        ..ft_cfg.clone()
    };
    let std_m = Machine::new(std_cfg).run();
    let ft_m = Machine::new(ft_cfg.clone()).run();
    let t_std = std_m.total_cycles as f64;
    let poll = ft_m.total_cycles as f64 - t_std - ft_m.t_create as f64 - ft_m.t_commit as f64;
    println!(
        "{} on {} nodes at {} rp/s:",
        ft_cfg.workload.name, ft_cfg.nodes, ft_cfg.ft.ckpt_rate_hz
    );
    println!("standard    {:>12} cycles", std_m.total_cycles);
    println!("ECP         {:>12} cycles", ft_m.total_cycles);
    println!(
        "overhead    {:>11.1}%",
        (ft_m.total_cycles as f64 / t_std - 1.0) * 100.0
    );
    println!(
        "  create    {:>11.1}%",
        ft_m.t_create as f64 / t_std * 100.0
    );
    println!(
        "  commit    {:>11.1}%",
        ft_m.t_commit as f64 / t_std * 100.0
    );
    println!("  pollution {:>11.1}%", poll / t_std * 100.0);
    Ok(())
}

/// `--jobs` with a per-core default, shared by `sweep` and `campaign`.
fn jobs_flag(p: &Parsed) -> Result<usize, ArgError> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    let jobs = p.u64_or("jobs", default)?;
    if jobs == 0 {
        return Err(ArgError("--jobs must be at least 1".into()));
    }
    Ok(jobs as usize)
}

fn cmd_sweep(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&[
        "workload", "nodes", "freqs", "refs", "warmup", "seed", "jobs",
    ])?;
    let freqs = p.f64_list_or("freqs", &[400.0, 200.0, 100.0, 50.0])?;
    // One base configuration for the whole sweep; the campaign engine runs
    // the standard-protocol baseline once and every frequency against it.
    let base = machine_config(p)?;
    let spec = CampaignSpec {
        name: "sweep".into(),
        seed: base.seed,
        workloads: vec![base.workload.clone()],
        nodes: vec![base.nodes],
        freqs,
        lengths: Lengths::Fixed {
            refs: base.refs_per_node,
            warmup: base.warmup_refs_per_node,
        },
        baseline: true,
        scenarios: vec![Scenario::none()],
    };
    spec.validate().map_err(|e| ArgError(e.0))?;
    let cells = spec.expand();
    let outcomes = run_cells(&cells, jobs_flag(p)?);
    let std_m = &outcomes[0].metrics;
    let t_std = std_m.total_cycles as f64;
    println!(
        "baseline (standard protocol): {} cycles over {} refs",
        std_m.total_cycles, std_m.refs
    );
    println!(
        "{:>8}  {:>9}  {:>8}  {:>8}  {:>9}",
        "rp/s", "overhead", "create", "commit", "pollution"
    );
    for (cell, outcome) in cells.iter().zip(&outcomes).skip(1) {
        let ft_m = &outcome.metrics;
        let poll = ft_m.total_cycles as f64 - t_std - ft_m.t_create as f64 - ft_m.t_commit as f64;
        println!(
            "{:>8}  {:>8.1}%  {:>7.1}%  {:>7.1}%  {:>8.1}%",
            cell.cfg.ft.ckpt_rate_hz,
            (ft_m.total_cycles as f64 / t_std - 1.0) * 100.0,
            ft_m.t_create as f64 / t_std * 100.0,
            ft_m.t_commit as f64 / t_std * 100.0,
            poll / t_std * 100.0,
        );
    }
    Ok(())
}

fn cmd_failure(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&[
        "workload",
        "nodes",
        "refs",
        "warmup",
        "freq",
        "seed",
        "kind",
        "node",
        "at",
        "repair-at",
        "json",
        "metrics-out",
        "trace-out",
        "trace-jsonl",
        "trace-capacity",
    ])?;
    let mut cfg = machine_config(p)?;
    cfg.verify = true;
    let kind = match p.str_or("kind", "transient").as_str() {
        "transient" => ScenarioKind::Transient,
        "permanent" => ScenarioKind::Permanent,
        other => {
            return Err(ArgError(format!(
                "--kind must be transient|permanent, got {other}"
            )))
        }
    };
    let repair_at = match p.u64_or("repair-at", u64::MAX)? {
        u64::MAX => None,
        at => Some(at),
    };
    if repair_at.is_some() && kind != ScenarioKind::Permanent {
        return Err(ArgError(
            "--repair-at only applies to permanent failures".into(),
        ));
    }
    let scenario = Scenario {
        kind,
        node: p.u64_or("node", 1)? as u16,
        at: p.u64_or("at", 20_000)?,
        repair_at,
    };
    // A failure run is a single campaign cell with an explicit seed.
    let cell = Cell {
        id: 0,
        group: 0,
        label: format!(
            "{}/{}",
            cfg.workload.name.to_ascii_lowercase(),
            scenario.label()
        ),
        cfg,
        scenario,
    };
    let outcome = run_cell(&cell);
    if !export_outputs(p, &outcome.metrics, &outcome.links, &outcome.trace)? {
        println!(
            "{kind:?} failure of node {} at cycle {}: recovered and verified",
            scenario.node, scenario.at
        );
        print_metrics(&outcome.metrics);
    }
    Ok(())
}

const CAMPAIGN_FLAGS: &[&str] = &["spec", "jobs", "json", "out", "cell"];

fn cmd_campaign(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(CAMPAIGN_FLAGS)?;
    if !p.has("spec") {
        return Err(ArgError("campaign needs --spec FILE".into()));
    }
    let path = p.str_or("spec", "");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ArgError(format!("cannot read spec {path}: {e}")))?;
    let spec = CampaignSpec::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let cells = spec.expand();

    // Single-cell replay: same expansion, same derived seed, one run.
    if p.has("cell") {
        let id = p.u64_or("cell", 0)?;
        let cell = cells
            .iter()
            .find(|c| c.id == id)
            .ok_or_else(|| ArgError(format!("no cell {id}: the spec has {}", cells.len())))?;
        let outcome = run_cell(cell);
        if p.has("json") {
            println!(
                "{}",
                report::cell_json(cell, &outcome, None).to_string_pretty()
            );
        } else {
            println!("cell {id} ({})", cell.label);
            print_metrics(&outcome.metrics);
        }
        return Ok(());
    }

    let jobs = jobs_flag(p)?;
    let quiet = p.has("json");
    if !quiet {
        println!(
            "campaign `{}`: {} cells on {} worker thread{}",
            spec.name,
            cells.len(),
            jobs,
            if jobs == 1 { "" } else { "s" }
        );
    }
    let start = Instant::now();
    let outcomes = run_cells(&cells, jobs);
    let wall_ms_total = start.elapsed().as_secs_f64() * 1e3;
    let doc = report::campaign_json(&spec, &cells, &outcomes, wall_ms_total);
    if p.has("out") {
        let out = p.str_or("out", "");
        std::fs::write(&out, doc.to_string_pretty())
            .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
        if !quiet {
            println!("wrote {out}");
        }
    }
    if quiet {
        println!("{}", doc.to_string_pretty());
        return Ok(());
    }

    // Text summary: one row per cell, overhead for ECP cells whose group
    // has a baseline.
    println!(
        "{:>4}  {:<34} {:>12} {:>6} {:>5} {:>9}",
        "id", "label", "cycles", "ckpts", "fail", "overhead"
    );
    for (cell, outcome) in cells.iter().zip(&outcomes) {
        let m = &outcome.metrics;
        let overhead = cells
            .iter()
            .zip(&outcomes)
            .find(|(c, _)| c.group == cell.group && !c.is_ft())
            .filter(|_| cell.is_ft())
            .map(|(_, base)| {
                let t_std = base.metrics.total_cycles as f64;
                format!("{:>8.1}%", (m.total_cycles as f64 / t_std - 1.0) * 100.0)
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>4}  {:<34} {:>12} {:>6} {:>5} {:>9}",
            cell.id, cell.label, m.total_cycles, m.checkpoints, m.failures, overhead
        );
    }
    println!(
        "{} cells in {:.1} s ({} job{})",
        cells.len(),
        wall_ms_total / 1e3,
        jobs,
        if jobs == 1 { "" } else { "s" }
    );
    Ok(())
}

fn cmd_latency(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&[])?;
    let t = probe::read_miss_latencies();
    println!("read miss latencies (paper Table 2):");
    println!("  cache            {:>4} cycles", t.cache);
    println!("  local AM         {:>4} cycles", t.local_am);
    println!("  remote AM, 1 hop {:>4} cycles", t.remote_1hop);
    println!("  remote AM, 2 hop {:>4} cycles", t.remote_2hop);
    Ok(())
}
