//! `ftcoma` — command-line front end for the ft-coma simulator.
//!
//! ```text
//! ftcoma run      --workload mp3d --nodes 16 --refs 60000 [--freq 100 | --no-ft]
//! ftcoma compare  --workload mp3d --nodes 16 --freq 100        # std vs ECP
//! ftcoma sweep    --workload water --freqs 400,200,100,50,5    # Fig 3 style
//! ftcoma failure  --workload water --kind permanent --node 3 --at 20000 [--repair-at 80000]
//! ftcoma campaign --spec grid.json --jobs 8 --out report.json  # parallel grid
//! ftcoma chaos    --seeds 4 --cases 200 --jobs 4 --out chaos.json
//! ftcoma chaos    --replay chaos-counterexample-17.json        # reproduce
//! ftcoma trace summarize --spans spans.jsonl --top 10          # slowest txns
//! ftcoma latency                                               # Table 2 probe
//! ftcoma help
//! ```

mod args;

use std::process::ExitCode;
use std::time::Instant;

use args::{ArgError, Parsed};
use ftcoma_campaign::{
    report, run_cell, run_cells, CampaignSpec, Cell, Lengths, Scenario, ScenarioKind,
};
use ftcoma_chaos::{ChaosConfig, Counterexample, Verdict};
use ftcoma_core::{FtConfig, RecoveryOutcome};
use ftcoma_machine::TsSample;
use ftcoma_machine::{
    export, probe, tracelog::TraceEvent, FailureKind, Machine, MachineConfig, RetryPolicy,
    RunMetrics,
};
use ftcoma_mem::NodeId;
use ftcoma_net::LinkReport;
use ftcoma_sim::span::{SpanPhase, SpanRecord};
use ftcoma_sim::{Clock, Json};
use ftcoma_workloads::{presets, SplashConfig};

fn main() -> ExitCode {
    let parsed = match Parsed::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\nrun `ftcoma help` for usage");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\nrun `ftcoma help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(p: &Parsed) -> Result<(), ArgError> {
    match p.command.as_str() {
        "run" => cmd_run(p),
        "compare" => cmd_compare(p),
        "sweep" => cmd_sweep(p),
        "failure" => cmd_failure(p),
        "campaign" => cmd_campaign(p),
        "chaos" => cmd_chaos(p),
        "trace" => cmd_trace(p),
        "latency" => cmd_latency(p),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(ArgError(format!("unknown subcommand `{other}`"))),
    }
}

const HELP: &str = "\
ftcoma — fault-tolerant COMA simulator (Morin et al., ISCA 1996)

USAGE
  ftcoma run      --workload W [--nodes N] [--refs R] [--warmup U]
                  [--freq RP_PER_S | --no-ft] [--seed S] [--verify]
                  [--fail-at CYCLES [--fail-kind transient|permanent]
                  [--fail-node K]]
                  [--rto-base C] [--rto-cap C] [--max-retries N]
                  [--json] [--metrics-out FILE] [--trace-out FILE]
                  [--trace-jsonl FILE] [--trace-capacity N]
                  [--spans-out FILE] [--timeseries-out FILE]
                  [--timeseries-every CYCLES]
  ftcoma compare  --workload W [--nodes N] [--refs R] [--warmup U] [--freq F]
  ftcoma sweep    --workload W [--nodes N] [--freqs F1,F2,...] [--jobs J]
  ftcoma failure  --workload W --kind transient|permanent|continuous
                  [--node K] [--at CYCLES] [--repair-at CYCLES]
                  [--node-mtbf C --node-mttr C] [--link-mtbf C --link-mttr C]
  ftcoma campaign --spec FILE [--jobs J] [--json] [--out FILE] [--cell ID]
  ftcoma chaos    [--seeds G] [--cases N] [--jobs J] [--seed S]
                  [--workload W] [--nodes K] [--freq F] [--refs R]
                  [--net-faults] [--soak] [--nested] [--out FILE] [--json]
  ftcoma chaos    --replay ARTIFACT.json
  ftcoma trace summarize --spans FILE [--top K]
  ftcoma latency
  ftcoma help

CAMPAIGNS
  A campaign spec (see docs/CAMPAIGNS.md) expands workloads x node counts
  x checkpoint frequencies x failure scenarios into independent cells, run
  on J worker threads. Per-cell seeds are derived from the campaign seed
  at expansion time, so the aggregated JSON report is byte-identical at
  any --jobs level (wall-clock timings go to a separate <out>.timing.json
  sidecar). --cell replays one cell. A `continuous` scenario installs a
  seeded MTBF/MTTR failure-repair process instead of scripted faults; the
  report's availability section carries the availability-vs-time curve
  and steady-state MTTR (see docs/CAMPAIGNS.md).

CHAOS (see docs/CHAOS.md)
  A seeded fuzzer sweeps failure injections across the whole protocol
  lifecycle (mid-transaction, checkpoint establishment, drain, recovery,
  back-to-back pairs) and judges every case with a three-layer oracle:
  post-recovery invariants, golden replay against an unfaulted run of the
  same seed, and liveness bounds. Failing cases are shrunk by bisection
  and written as standalone counterexample artifacts; --replay re-runs
  one artifact byte-identically (exit 0 iff it still reproduces).
  --net-faults mixes interconnect faults into the sampled cases: link
  cuts, router deaths and message-loss episodes, which the fault-aware
  routing and reliable transport must mask or escalate cleanly (see
  docs/NETWORK.md).
  --soak mixes continuous MTBF/MTTR failure-repair processes into the
  sampled cases: the case machine keeps failing, repairing and re-failing
  nodes (and links) for its whole run, probing long-horizon availability
  instead of one scripted fault.
  --nested mixes nested-fault chains into the sampled cases: two- and
  three-fault sequences with gaps tight enough to land later faults
  inside open recovery windows, forcing recovery to abandon and restart.
  A case may only end unrecoverable if the copy-accounting audit
  certifies a committed item with zero live copies.
  Reports are byte-identical across --jobs; wall-clock time goes to the
  <out>.timing.json sidecar. Counterexample artifacts carry the failing
  case's recovery span timeline.
  FTCOMA_BENCH_QUICK=1 halves the per-case run length for CI smoke.

OBSERVABILITY (run and failure; see docs/OBSERVABILITY.md)
  --json                   print the run metrics as versioned JSON on stdout
  --metrics-out FILE       also write that JSON document to FILE
  --trace-out FILE         write a Chrome trace-event file (Perfetto-viewable;
                           includes causal spans and flow arrows)
  --trace-jsonl FILE       write the protocol trace as JSON Lines
  --trace-capacity N       retain the last N trace events and causal spans
                           (default 1000000 when a trace or span output is
                           requested, else 0)
  --spans-out FILE         write the causal span records as JSON Lines
  --timeseries-out FILE    write epoch-sampled time-series rows as JSON Lines
  --timeseries-every N     sample every N cycles (default 10000 when
                           --timeseries-out is given, else off)
  ftcoma trace summarize --spans FILE [--top K]
                           print the K slowest transactions with their
                           per-phase decomposition (default 10)

WORKLOADS
  barnes, cholesky, mp3d, water (paper's Table 3), plus micro-benchmarks
  uniform, hotspot, prodcons.
";

fn workload(p: &Parsed) -> Result<SplashConfig, ArgError> {
    let name = p.str_or("workload", "water");
    let all: Vec<SplashConfig> = presets::all()
        .into_iter()
        .chain(presets::micros())
        .collect();
    all.into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(&name))
        .ok_or_else(|| ArgError(format!("unknown workload `{name}`")))
}

fn machine_config(p: &Parsed) -> Result<MachineConfig, ArgError> {
    let ft = if p.has("no-ft") {
        FtConfig::disabled()
    } else {
        FtConfig::enabled(p.f64_or("freq", 100.0)?)
    };
    let net = if p.has("wormhole") {
        ftcoma_net_config_wormhole()
    } else {
        Default::default()
    };
    let default_trace_capacity = if p.has("trace-out") || p.has("trace-jsonl") || p.has("spans-out")
    {
        1_000_000
    } else {
        0
    };
    let default_ts_every = if p.has("timeseries-out") { 10_000 } else { 0 };
    // Reliable-transport retry policy. The defaults reproduce the
    // historical constants, so runs that leave these flags alone are
    // byte-identical to builds that predate them.
    let retry = {
        let d = RetryPolicy::default();
        let retry = RetryPolicy {
            rto_base: p.u64_or("rto-base", d.rto_base)?,
            rto_cap: p.u64_or("rto-cap", d.rto_cap)?,
            max_retries: p.u64_or("max-retries", u64::from(d.max_retries))? as u32,
        };
        retry.validate().map_err(ArgError)?;
        retry
    };
    Ok(MachineConfig {
        nodes: p.u64_or("nodes", 16)? as u16,
        refs_per_node: p.u64_or("refs", 60_000)?,
        warmup_refs_per_node: p.u64_or("warmup", 30_000)?,
        workload: workload(p)?,
        ft,
        net,
        seed: p.u64_or("seed", 0xF7C0_3A11)?,
        verify: p.has("verify"),
        retry,
        trace_capacity: p.u64_or("trace-capacity", default_trace_capacity)? as usize,
        timeseries_every: p.u64_or("timeseries-every", default_ts_every)?,
        ..MachineConfig::default()
    })
}

/// Handles the structured-output flags shared by `run` and `failure`.
/// Returns `true` when `--json` consumed stdout (suppress the text report).
fn export_outputs(
    p: &Parsed,
    metrics: &RunMetrics,
    links: &[LinkReport],
    trace: &[TraceEvent],
    spans: &[SpanRecord],
    timeseries: &[TsSample],
    outcome: &RecoveryOutcome,
) -> Result<bool, ArgError> {
    let write = |path: &str, contents: &str| {
        std::fs::write(path, contents).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
    };
    let wants_doc = p.has("json") || p.has("metrics-out");
    let doc = if wants_doc {
        let mut d = export::metrics_json(metrics, links);
        match &mut d {
            Json::Obj(pairs) => pairs.push(("outcome".into(), export::outcome_json(outcome))),
            _ => {
                return Err(ArgError(
                    "malformed metrics document: top level must be a JSON object".into(),
                ))
            }
        }
        Some(d)
    } else {
        None
    };
    if let Some(doc) = &doc {
        if p.has("metrics-out") {
            let mut text = doc.to_string_pretty();
            text.push('\n');
            write(&p.str_or("metrics-out", ""), &text)?;
        }
    }
    if p.has("trace-out") {
        let chrome = export::chrome_trace_with_spans(trace, spans, Clock::ksr1().hz());
        let mut text = chrome.to_string_compact();
        text.push('\n');
        write(&p.str_or("trace-out", ""), &text)?;
    }
    if p.has("trace-jsonl") {
        write(&p.str_or("trace-jsonl", ""), &export::trace_jsonl(trace))?;
    }
    if p.has("spans-out") {
        write(&p.str_or("spans-out", ""), &export::spans_jsonl(spans))?;
    }
    if p.has("timeseries-out") {
        write(
            &p.str_or("timeseries-out", ""),
            &export::timeseries_jsonl(timeseries),
        )?;
    }
    if p.has("json") {
        let doc = doc.ok_or_else(|| {
            ArgError("internal: --json was requested but no document was built".into())
        })?;
        println!("{}", doc.to_string_pretty());
        return Ok(true);
    }
    Ok(false)
}

fn ftcoma_net_config_wormhole() -> ftcoma_net::NetConfig {
    ftcoma_net::NetConfig::wormhole()
}

fn print_metrics(m: &RunMetrics) {
    println!("cycles           {:>14}", m.total_cycles);
    println!("instructions     {:>14}", m.instructions);
    println!("references       {:>14}", m.refs);
    println!("read miss rate   {:>13.2}%", m.read_miss_rate() * 100.0);
    println!("write miss rate  {:>13.2}%", m.write_miss_rate() * 100.0);
    if m.checkpoints > 0 {
        println!("recovery points  {:>14}", m.checkpoints);
        println!("T_create         {:>14}", m.t_create);
        println!("T_commit         {:>14}", m.t_commit);
        println!(
            "replication      {:>11.1} MB/s per node",
            m.replication_throughput_bps(20e6) / 1e6
        );
        println!(
            "injections/10k   {:>14.1}",
            m.per_10k_refs(m.injections_total())
        );
    }
    if m.failures > 0 {
        println!("failures         {:>14}", m.failures);
        println!("repairs          {:>14}", m.repairs);
        println!("T_recovery       {:>14}", m.t_recovery);
    }
    println!("pages allocated  {:>14}", m.pages_allocated);
    let s = m.access_latency.summary();
    println!(
        "access latency   mean {:.1}cy, p50<={:.0}, p90<={:.0}, p99<={:.0}, max {}",
        s.mean, s.p50, s.p90, s.p99, s.max,
    );
}

const RUN_FLAGS: &[&str] = &[
    "workload",
    "nodes",
    "refs",
    "warmup",
    "freq",
    "no-ft",
    "seed",
    "verify",
    "wormhole",
    "fail-at",
    "fail-kind",
    "fail-node",
    "rto-base",
    "rto-cap",
    "max-retries",
    "json",
    "metrics-out",
    "trace-out",
    "trace-jsonl",
    "trace-capacity",
    "spans-out",
    "timeseries-out",
    "timeseries-every",
];

/// The `--fail-at/--fail-kind/--fail-node` injection triple of `run`.
fn injection_flags(p: &Parsed) -> Result<Option<(u64, u16, FailureKind)>, ArgError> {
    if !p.has("fail-at") {
        if p.has("fail-kind") || p.has("fail-node") {
            return Err(ArgError(
                "--fail-kind/--fail-node need --fail-at CYCLES".into(),
            ));
        }
        return Ok(None);
    }
    let kind = match p.str_or("fail-kind", "transient").as_str() {
        "transient" => FailureKind::Transient,
        "permanent" => FailureKind::Permanent,
        other => {
            return Err(ArgError(format!(
                "--fail-kind must be transient|permanent, got {other}"
            )))
        }
    };
    Ok(Some((
        p.u64_or("fail-at", 0)?,
        p.u64_or("fail-node", 1)? as u16,
        kind,
    )))
}

/// Folds the post-run invariant sweep into the machine's own outcome.
fn final_outcome(machine: &Machine, metrics: &RunMetrics) -> RecoveryOutcome {
    let outcome = machine.outcome().clone();
    if outcome.is_recovered() {
        let problems = machine.check_invariants();
        if !problems.is_empty() {
            return RecoveryOutcome::InvariantViolation {
                at: metrics.total_cycles,
                problems,
            };
        }
    }
    outcome
}

/// Error mapping shared by every command that surfaces a [`RecoveryOutcome`]:
/// an invariant violation is a simulator-correctness failure and must fail
/// the process; an unrecoverable second fault is a *reported* legal outcome.
fn fail_on_violation(outcome: &RecoveryOutcome) -> Result<(), ArgError> {
    if let RecoveryOutcome::InvariantViolation { at, problems } = outcome {
        return Err(ArgError(format!(
            "invariant violation at cycle {at}: {}",
            problems.join("; ")
        )));
    }
    Ok(())
}

fn cmd_run(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(RUN_FLAGS)?;
    let inject = injection_flags(p)?;
    let mut cfg = machine_config(p)?;
    if let Some((at, node, _)) = inject {
        if u64::from(node) >= u64::from(cfg.nodes) {
            return Err(ArgError(format!(
                "--fail-node {node} out of range for {} nodes",
                cfg.nodes
            )));
        }
        if !cfg.ft.mode.is_enabled() {
            return Err(ArgError("--fail-at needs the ECP (drop --no-ft)".into()));
        }
        if at == 0 {
            return Err(ArgError("--fail-at must be a positive cycle".into()));
        }
        cfg.verify = true; // an injected run is always checked
    }
    let quiet = p.has("json"); // keep stdout pure JSON
    if !quiet {
        println!(
            "running {} on {} nodes ({})",
            cfg.workload.name,
            cfg.nodes,
            if cfg.ft.mode.is_enabled() {
                format!("ECP, {} rp/s", cfg.ft.ckpt_rate_hz)
            } else {
                "standard protocol".into()
            }
        );
    }
    let mut machine = Machine::new(cfg);
    if !quiet {
        println!("capacity check: {}", machine.capacity_report());
    }
    if let Some((at, node, kind)) = inject {
        machine.schedule_failure(at, NodeId::new(node), kind);
    }
    let metrics = machine.run();
    let outcome = final_outcome(&machine, &metrics);
    if !export_outputs(
        p,
        &metrics,
        &machine.link_report(),
        &machine.trace(),
        &machine.spans(),
        machine.timeseries(),
        &outcome,
    )? {
        print_metrics(&metrics);
        if inject.is_some() || !outcome.is_recovered() {
            println!("outcome          {outcome}");
        }
    }
    fail_on_violation(&outcome)
}

fn cmd_compare(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(RUN_FLAGS)?;
    let ft_cfg = machine_config(p)?;
    let std_cfg = MachineConfig {
        ft: FtConfig::disabled(),
        ..ft_cfg.clone()
    };
    let std_m = Machine::new(std_cfg).run();
    let ft_m = Machine::new(ft_cfg.clone()).run();
    let t_std = std_m.total_cycles as f64;
    let poll = ft_m.total_cycles as f64 - t_std - ft_m.t_create as f64 - ft_m.t_commit as f64;
    println!(
        "{} on {} nodes at {} rp/s:",
        ft_cfg.workload.name, ft_cfg.nodes, ft_cfg.ft.ckpt_rate_hz
    );
    println!("standard    {:>12} cycles", std_m.total_cycles);
    println!("ECP         {:>12} cycles", ft_m.total_cycles);
    println!(
        "overhead    {:>11.1}%",
        (ft_m.total_cycles as f64 / t_std - 1.0) * 100.0
    );
    println!(
        "  create    {:>11.1}%",
        ft_m.t_create as f64 / t_std * 100.0
    );
    println!(
        "  commit    {:>11.1}%",
        ft_m.t_commit as f64 / t_std * 100.0
    );
    println!("  pollution {:>11.1}%", poll / t_std * 100.0);
    Ok(())
}

/// `--jobs` with a per-core default, shared by `sweep` and `campaign`.
fn jobs_flag(p: &Parsed) -> Result<usize, ArgError> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    let jobs = p.u64_or("jobs", default)?;
    if jobs == 0 {
        return Err(ArgError("--jobs must be at least 1".into()));
    }
    Ok(jobs as usize)
}

fn cmd_sweep(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&[
        "workload", "nodes", "freqs", "refs", "warmup", "seed", "jobs",
    ])?;
    let freqs = p.f64_list_or("freqs", &[400.0, 200.0, 100.0, 50.0])?;
    // One base configuration for the whole sweep; the campaign engine runs
    // the standard-protocol baseline once and every frequency against it.
    let base = machine_config(p)?;
    let spec = CampaignSpec {
        name: "sweep".into(),
        seed: base.seed,
        workloads: vec![base.workload.clone()],
        nodes: vec![base.nodes],
        freqs,
        lengths: Lengths::Fixed {
            refs: base.refs_per_node,
            warmup: base.warmup_refs_per_node,
        },
        baseline: true,
        scenarios: vec![Scenario::none()],
    };
    spec.validate().map_err(|e| ArgError(e.0))?;
    let cells = spec.expand();
    let outcomes = run_cells(&cells, jobs_flag(p)?);
    let std_m = &outcomes[0].metrics;
    let t_std = std_m.total_cycles as f64;
    println!(
        "baseline (standard protocol): {} cycles over {} refs",
        std_m.total_cycles, std_m.refs
    );
    println!(
        "{:>8}  {:>9}  {:>8}  {:>8}  {:>9}",
        "rp/s", "overhead", "create", "commit", "pollution"
    );
    for (cell, outcome) in cells.iter().zip(&outcomes).skip(1) {
        let ft_m = &outcome.metrics;
        let poll = ft_m.total_cycles as f64 - t_std - ft_m.t_create as f64 - ft_m.t_commit as f64;
        println!(
            "{:>8}  {:>8.1}%  {:>7.1}%  {:>7.1}%  {:>8.1}%",
            cell.cfg.ft.ckpt_rate_hz,
            (ft_m.total_cycles as f64 / t_std - 1.0) * 100.0,
            ft_m.t_create as f64 / t_std * 100.0,
            ft_m.t_commit as f64 / t_std * 100.0,
            poll / t_std * 100.0,
        );
    }
    Ok(())
}

fn cmd_failure(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&[
        "workload",
        "nodes",
        "refs",
        "warmup",
        "freq",
        "seed",
        "kind",
        "node",
        "at",
        "repair-at",
        "node-mtbf",
        "node-mttr",
        "link-mtbf",
        "link-mttr",
        "rto-base",
        "rto-cap",
        "max-retries",
        "json",
        "metrics-out",
        "trace-out",
        "trace-jsonl",
        "trace-capacity",
        "spans-out",
        "timeseries-out",
        "timeseries-every",
    ])?;
    let mut cfg = machine_config(p)?;
    cfg.verify = true;
    let kind = match p.str_or("kind", "transient").as_str() {
        "transient" => ScenarioKind::Transient,
        "permanent" => ScenarioKind::Permanent,
        "continuous" => {
            let kind = ScenarioKind::Continuous {
                node_mtbf: p.u64_or("node-mtbf", 0)?,
                node_mttr: p.u64_or("node-mttr", 0)?,
                link_mtbf: p.u64_or("link-mtbf", 0)?,
                link_mttr: p.u64_or("link-mttr", 0)?,
            };
            if let ScenarioKind::Continuous {
                node_mtbf,
                node_mttr,
                link_mtbf,
                link_mttr,
            } = kind
            {
                if node_mtbf == 0 && link_mtbf == 0 {
                    return Err(ArgError(
                        "--kind continuous needs --node-mtbf and/or --link-mtbf".into(),
                    ));
                }
                if node_mtbf > 0 && node_mttr == 0 {
                    return Err(ArgError("--node-mtbf needs a positive --node-mttr".into()));
                }
                if link_mtbf > 0 && link_mttr == 0 {
                    return Err(ArgError("--link-mtbf needs a positive --link-mttr".into()));
                }
            }
            kind
        }
        other => {
            return Err(ArgError(format!(
                "--kind must be transient|permanent|continuous, got {other}"
            )))
        }
    };
    if !matches!(kind, ScenarioKind::Continuous { .. })
        && ["node-mtbf", "node-mttr", "link-mtbf", "link-mttr"]
            .iter()
            .any(|k| p.has(k))
    {
        return Err(ArgError(
            "--node-mtbf/--node-mttr/--link-mtbf/--link-mttr need --kind continuous".into(),
        ));
    }
    let repair_at = match p.u64_or("repair-at", u64::MAX)? {
        u64::MAX => None,
        at => Some(at),
    };
    if repair_at.is_some() && kind != ScenarioKind::Permanent {
        return Err(ArgError(
            "--repair-at only applies to permanent failures".into(),
        ));
    }
    let scenario = Scenario {
        kind,
        node: p.u64_or("node", 1)? as u16,
        // For a continuous process `at` is the start offset (0 = sample
        // from the beginning); for scripted faults it is the fault cycle.
        at: p.u64_or(
            "at",
            if matches!(kind, ScenarioKind::Continuous { .. }) {
                0
            } else {
                20_000
            },
        )?,
        repair_at,
    };
    if let Some(r) = repair_at {
        if r <= scenario.at {
            return Err(ArgError(format!(
                "--repair-at ({r}) must come strictly after the failure at {}",
                scenario.at
            )));
        }
    }
    // A failure run is a single campaign cell with an explicit seed.
    let cell = Cell {
        id: 0,
        group: 0,
        label: format!(
            "{}/{}",
            cfg.workload.name.to_ascii_lowercase(),
            scenario.label()
        ),
        cfg,
        scenario,
    };
    let outcome = run_cell(&cell);
    if !export_outputs(
        p,
        &outcome.metrics,
        &outcome.links,
        &outcome.trace,
        &outcome.spans,
        &outcome.timeseries,
        &outcome.outcome,
    )? {
        match &outcome.outcome {
            RecoveryOutcome::Recovered => {
                println!("scenario `{}`: recovered and verified", scenario.label());
            }
            other => println!("scenario `{}`: {other}", scenario.label()),
        }
        if let ScenarioKind::Continuous { .. } = kind {
            println!("faults survived  {:>14}", outcome.metrics.faults_survived);
            println!(
                "steady MTTR      {:>11.0} cy",
                outcome.metrics.steady_mttr_cycles()
            );
        }
        print_metrics(&outcome.metrics);
    }
    fail_on_violation(&outcome.outcome)
}

const CAMPAIGN_FLAGS: &[&str] = &["spec", "jobs", "json", "out", "cell"];

fn cmd_campaign(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(CAMPAIGN_FLAGS)?;
    if !p.has("spec") {
        return Err(ArgError("campaign needs --spec FILE".into()));
    }
    let path = p.str_or("spec", "");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| ArgError(format!("cannot read spec {path}: {e}")))?;
    let spec = CampaignSpec::parse(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let cells = spec.expand();

    // Single-cell replay: same expansion, same derived seed, one run.
    if p.has("cell") {
        let id = p.u64_or("cell", 0)?;
        let cell = cells
            .iter()
            .find(|c| c.id == id)
            .ok_or_else(|| ArgError(format!("no cell {id}: the spec has {}", cells.len())))?;
        let outcome = run_cell(cell);
        if p.has("json") {
            println!(
                "{}",
                report::cell_json(cell, &outcome, None).to_string_pretty()
            );
        } else {
            println!("cell {id} ({})", cell.label);
            print_metrics(&outcome.metrics);
            if !outcome.outcome.is_recovered() {
                println!("outcome          {}", outcome.outcome);
            }
        }
        return fail_on_violation(&outcome.outcome);
    }

    let jobs = jobs_flag(p)?;
    let quiet = p.has("json");
    if !quiet {
        println!(
            "campaign `{}`: {} cells on {} worker thread{}",
            spec.name,
            cells.len(),
            jobs,
            if jobs == 1 { "" } else { "s" }
        );
    }
    let start = Instant::now();
    let outcomes = run_cells(&cells, jobs);
    let wall_ms_total = start.elapsed().as_secs_f64() * 1e3;
    // The report is always written/printed first — a violation must not
    // suppress the evidence describing it.
    let violations: Vec<String> = cells
        .iter()
        .zip(&outcomes)
        .filter_map(|(c, o)| match &o.outcome {
            RecoveryOutcome::InvariantViolation { at, problems } => Some(format!(
                "cell {} ({}): invariant violation at cycle {at}: {}",
                c.id,
                c.label,
                problems.join("; ")
            )),
            _ => None,
        })
        .collect();
    let finish = |violations: Vec<String>| -> Result<(), ArgError> {
        for v in &violations {
            eprintln!("error: {v}");
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ArgError(format!(
                "{} cell(s) ended with invariant violations",
                violations.len()
            )))
        }
    };
    let doc = report::campaign_json(&spec, &cells, &outcomes);
    if p.has("out") {
        let out = p.str_or("out", "");
        std::fs::write(&out, doc.to_string_pretty())
            .map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
        // Wall-clock timings go to a sidecar so the report diffs cleanly.
        let timing_path = timing_sidecar_path(&out);
        let timing = report::timing_json(&outcomes, wall_ms_total);
        std::fs::write(&timing_path, timing.to_string_pretty())
            .map_err(|e| ArgError(format!("cannot write {timing_path}: {e}")))?;
        if !quiet {
            println!("wrote {out} (+ {timing_path})");
        }
    }
    if quiet {
        println!("{}", doc.to_string_pretty());
        return finish(violations);
    }

    // Text summary: one row per cell, overhead for ECP cells whose group
    // has a baseline.
    println!(
        "{:>4}  {:<34} {:>12} {:>6} {:>5} {:>9}",
        "id", "label", "cycles", "ckpts", "fail", "overhead"
    );
    for (cell, outcome) in cells.iter().zip(&outcomes) {
        let m = &outcome.metrics;
        let overhead = cells
            .iter()
            .zip(&outcomes)
            .find(|(c, _)| c.group == cell.group && !c.is_ft())
            .filter(|_| cell.is_ft())
            .map(|(_, base)| {
                let t_std = base.metrics.total_cycles as f64;
                format!("{:>8.1}%", (m.total_cycles as f64 / t_std - 1.0) * 100.0)
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>4}  {:<34} {:>12} {:>6} {:>5} {:>9}",
            cell.id, cell.label, m.total_cycles, m.checkpoints, m.failures, overhead
        );
    }
    println!(
        "{} cells in {:.1} s ({} job{})",
        cells.len(),
        wall_ms_total / 1e3,
        jobs,
        if jobs == 1 { "" } else { "s" }
    );
    finish(violations)
}

const CHAOS_FLAGS: &[&str] = &[
    "seeds",
    "cases",
    "jobs",
    "seed",
    "workload",
    "nodes",
    "freq",
    "refs",
    "out",
    "json",
    "replay",
    "net-faults",
    "soak",
    "nested",
];

/// Where the wall-clock sidecar of `--out report.json` lands:
/// `report.timing.json`.
fn timing_sidecar_path(out: &str) -> String {
    format!("{}.timing.json", out.strip_suffix(".json").unwrap_or(out))
}

/// Where a counterexample artifact lands: next to `--out` when given
/// (`report.json` → `report-counterexample-<id>.json`), else the cwd.
fn artifact_path(out: Option<&str>, case_id: u64) -> String {
    match out {
        Some(out) => format!(
            "{}-counterexample-{case_id}.json",
            out.strip_suffix(".json").unwrap_or(out)
        ),
        None => format!("chaos-counterexample-{case_id}.json"),
    }
}

fn cmd_chaos(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(CHAOS_FLAGS)?;
    if p.has("replay") {
        return cmd_chaos_replay(p);
    }
    let mut cfg = ChaosConfig::new(p.u64_or("seed", 0xC4A0_5EED)?);
    cfg.seeds = p.u64_or("seeds", cfg.seeds)?;
    cfg.cases = p.u64_or("cases", cfg.cases)?;
    cfg.jobs = jobs_flag(p)?;
    if p.has("workload") {
        cfg.workload = workload(p)?;
    }
    cfg.nodes = p.u64_or("nodes", u64::from(cfg.nodes))? as u16;
    cfg.freq_hz = p.f64_or("freq", cfg.freq_hz)?;
    cfg.refs_per_node = p.u64_or("refs", cfg.refs_per_node)?;
    cfg.net_faults = p.has("net-faults");
    cfg.soak = p.has("soak");
    cfg.nested = p.has("nested");
    let quiet = p.has("json");
    if !quiet {
        println!(
            "chaos: {} cases over {} seed groups ({} on {} nodes, {} rp/s, {} refs/node, {} job{})",
            cfg.cases,
            cfg.seeds,
            cfg.workload.name,
            cfg.nodes,
            cfg.freq_hz,
            cfg.refs_per_node,
            cfg.jobs,
            if cfg.jobs == 1 { "" } else { "s" }
        );
    }
    let report = ftcoma_chaos::run_chaos(&cfg).map_err(ArgError)?;
    let out = p.has("out").then(|| p.str_or("out", ""));
    // Artifacts and report first; the exit code must never suppress them.
    for cx in &report.counterexamples {
        let path = artifact_path(out.as_deref(), cx.case_id);
        let mut text = cx.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        eprintln!(
            "counterexample: case {} shrunk to `{}` in {} runs -> {path}",
            cx.case_id,
            cx.scenario.label(),
            cx.shrink_runs
        );
        for r in &cx.reasons {
            eprintln!("  {r}");
        }
    }
    if let Some(out) = &out {
        let mut text = report.doc.to_string_pretty();
        text.push('\n');
        std::fs::write(out, text).map_err(|e| ArgError(format!("cannot write {out}: {e}")))?;
        let timing_path = timing_sidecar_path(out);
        let timing = Json::obj([(
            "timing",
            Json::obj([("wall_ms_total", Json::from(report.wall_ms_total))]),
        )]);
        std::fs::write(&timing_path, timing.to_string_pretty())
            .map_err(|e| ArgError(format!("cannot write {timing_path}: {e}")))?;
        if !quiet {
            println!("wrote {out} (+ {timing_path})");
        }
    }
    if quiet {
        println!("{}", report.doc.to_string_pretty());
    } else {
        println!(
            "verdicts: {} pass, {} unrecoverable (certified halts), {} fail",
            report.passed, report.unrecoverable, report.failed
        );
    }
    if report.failed > 0 {
        return Err(ArgError(format!(
            "{} case(s) failed the oracle (see counterexample artifacts)",
            report.failed
        )));
    }
    Ok(())
}

/// `ftcoma chaos --replay ARTIFACT`: exit 0 iff the counterexample still
/// reproduces (a fixed bug makes the replay *fail* with the new verdict).
fn cmd_chaos_replay(p: &Parsed) -> Result<(), ArgError> {
    let path = p.str_or("replay", "");
    let text =
        std::fs::read_to_string(&path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let cx = Counterexample::parse(&text).map_err(ArgError)?;
    println!(
        "replaying case {} of campaign seed 0x{:016x}: {} on {} nodes, scenario `{}`",
        cx.case_id,
        cx.campaign_seed,
        cx.workload,
        cx.nodes,
        cx.scenario.label()
    );
    match ftcoma_chaos::replay(&cx).map_err(ArgError)? {
        Verdict::Fail(reasons) => {
            println!("reproduced: the scenario still fails the oracle");
            for r in &reasons {
                println!("  {r}");
            }
            Ok(())
        }
        v => Err(ArgError(format!(
            "counterexample did not reproduce (verdict now `{}`)",
            v.label()
        ))),
    }
}

/// `ftcoma trace summarize --spans FILE [--top K]`: reads a spans JSONL
/// file (the `--spans-out` format) and prints the K slowest root spans —
/// transactions and recoveries — each decomposed into its child phases.
fn cmd_trace(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&["spans", "top"])?;
    match p.subcommand.as_deref() {
        Some("summarize") => {}
        Some(other) => {
            return Err(ArgError(format!(
                "unknown trace action `{other}` (try `summarize`)"
            )))
        }
        None => {
            return Err(ArgError(
                "trace needs an action: `ftcoma trace summarize --spans FILE`".into(),
            ))
        }
    }
    if !p.has("spans") {
        return Err(ArgError("trace summarize needs --spans FILE".into()));
    }
    let path = p.str_or("spans", "");
    let text =
        std::fs::read_to_string(&path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let spans = parse_spans_jsonl(&text)?;
    print_span_summary(&spans, p.u64_or("top", 10)? as usize);
    Ok(())
}

/// Parses a spans JSONL file: the meta header line is skipped, every
/// other line must be one span row as written by `--spans-out`.
fn parse_spans_jsonl(text: &str) -> Result<Vec<SpanRecord>, ArgError> {
    let mut spans = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = Json::parse(line).map_err(|e| ArgError(format!("line {}: {e}", ln + 1)))?;
        if row.get("type").is_some() {
            continue; // meta header
        }
        let parsed = (|| {
            Some(SpanRecord {
                id: row.get("id").and_then(Json::as_u64)?,
                parent: row.get("parent").and_then(Json::as_u64)?,
                phase: SpanPhase::from_name(row.get("phase").and_then(Json::as_str)?)?,
                node: u16::try_from(row.get("node").and_then(Json::as_u64)?).ok()?,
                start: row.get("start").and_then(Json::as_u64)?,
                end: row.get("end").and_then(Json::as_u64)?,
            })
        })();
        spans.push(parsed.ok_or_else(|| ArgError(format!("line {}: malformed span row", ln + 1)))?);
    }
    Ok(spans)
}

/// Prints the `top` slowest roots with their per-phase decomposition.
fn print_span_summary(spans: &[SpanRecord], top: usize) {
    let mut roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent == 0).collect();
    // Slowest first; id breaks ties so the listing is deterministic.
    roots.sort_by(|a, b| b.duration().cmp(&a.duration()).then(a.id.cmp(&b.id)));
    println!(
        "{} spans, {} roots; top {} by duration:",
        spans.len(),
        roots.len(),
        roots.len().min(top)
    );
    for (rank, root) in roots.iter().take(top).enumerate() {
        println!(
            "#{:<3} {:<12} node {:<3} start {:>10}  {:>8} cycles",
            rank + 1,
            root.phase.name(),
            root.node,
            root.start,
            root.duration()
        );
        // (phase name, summed duration, child count), largest share first.
        let mut by_phase: Vec<(&'static str, u64, u64)> = Vec::new();
        for s in spans.iter().filter(|s| s.parent == root.id) {
            match by_phase.iter_mut().find(|(n, _, _)| *n == s.phase.name()) {
                Some(e) => {
                    e.1 += s.duration();
                    e.2 += 1;
                }
                None => by_phase.push((s.phase.name(), s.duration(), 1)),
            }
        }
        by_phase.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let total = root.duration().max(1) as f64;
        for (name, dur, count) in &by_phase {
            println!(
                "      {:<16} {:>8} cycles ({:>5.1}%, {} span{})",
                name,
                dur,
                *dur as f64 / total * 100.0,
                count,
                if *count == 1 { "" } else { "s" }
            );
        }
    }
}

fn cmd_latency(p: &Parsed) -> Result<(), ArgError> {
    p.assert_only(&[])?;
    let t = probe::read_miss_latencies();
    println!("read miss latencies (paper Table 2):");
    println!("  cache            {:>4} cycles", t.cache);
    println!("  local AM         {:>4} cycles", t.local_am);
    println!("  remote AM, 1 hop {:>4} cycles", t.remote_1hop);
    println!("  remote AM, 2 hop {:>4} cycles", t.remote_2hop);
    Ok(())
}
